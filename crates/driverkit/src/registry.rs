//! Driver namespaces: side-by-side loaded driver versions with one active
//! namespace for new connections — the classloader-isolation analog
//! (§3.1.1: the bootloader "has the ability to load multiple
//! implementations of drivers and to switch from one implementation to
//! another, so that new connect calls can use a more recent driver
//! version").

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use drivolution_core::{DriverId, DriverImage, Lease};

use crate::api::Driver;
use crate::error::{DkError, DkResult};

/// Identifier of a loaded driver namespace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NamespaceId(pub u64);

impl fmt::Display for NamespaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ns#{}", self.0)
    }
}

/// A loaded driver with its image, lease, and lifecycle flags.
#[derive(Clone)]
pub struct Namespace {
    /// Namespace id.
    pub id: NamespaceId,
    /// The live driver object.
    pub driver: Arc<dyn Driver>,
    /// The image it was interpreted from.
    pub image: DriverImage,
    /// The driver-table id it was served under.
    pub driver_id: DriverId,
    /// The governing lease.
    pub lease: Lease,
    /// Options the server attached to the offer (Table 2
    /// `driver_options`), merged into connect properties.
    pub options: Vec<(String, String)>,
    /// Retired namespaces serve no new connections.
    pub retired: bool,
}

impl fmt::Debug for Namespace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Namespace")
            .field("id", &self.id)
            .field("driver", &self.image.name)
            .field("version", &self.image.version)
            .field("retired", &self.retired)
            .finish()
    }
}

/// Registry of loaded driver namespaces.
#[derive(Debug, Default)]
pub struct DriverRegistry {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    next: u64,
    spaces: Vec<Namespace>,
    active: Option<NamespaceId>,
}

impl fmt::Debug for Inner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inner")
            .field("loaded", &self.spaces.len())
            .field("active", &self.active)
            .finish()
    }
}

impl DriverRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        DriverRegistry::default()
    }

    /// Loads a driver into a fresh namespace (not yet active).
    pub fn load(
        &self,
        driver: Arc<dyn Driver>,
        image: DriverImage,
        driver_id: DriverId,
        lease: Lease,
        options: Vec<(String, String)>,
    ) -> NamespaceId {
        let mut inner = self.inner.lock();
        inner.next += 1;
        let id = NamespaceId(inner.next);
        inner.spaces.push(Namespace {
            id,
            driver,
            image,
            driver_id,
            lease,
            options,
            retired: false,
        });
        id
    }

    /// Makes `id` the namespace serving new connections, retiring the
    /// previously active one.
    ///
    /// # Errors
    ///
    /// [`DkError::Closed`] for unknown or retired namespaces.
    pub fn activate(&self, id: NamespaceId) -> DkResult<()> {
        let mut inner = self.inner.lock();
        let Some(ns) = inner.spaces.iter().find(|n| n.id == id) else {
            return Err(DkError::Closed(format!("unknown namespace {id}")));
        };
        if ns.retired {
            return Err(DkError::Closed(format!("namespace {id} is retired")));
        }
        if let Some(prev) = inner.active {
            if prev != id {
                if let Some(p) = inner.spaces.iter_mut().find(|n| n.id == prev) {
                    p.retired = true;
                }
            }
        }
        inner.active = Some(id);
        Ok(())
    }

    /// The namespace currently serving new connections.
    pub fn active(&self) -> Option<Namespace> {
        let inner = self.inner.lock();
        let id = inner.active?;
        inner.spaces.iter().find(|n| n.id == id).cloned()
    }

    /// Looks up a namespace.
    pub fn get(&self, id: NamespaceId) -> Option<Namespace> {
        self.inner
            .lock()
            .spaces
            .iter()
            .find(|n| n.id == id)
            .cloned()
    }

    /// Replaces the lease of a namespace (after a RENEW offer).
    ///
    /// # Errors
    ///
    /// [`DkError::Closed`] for unknown namespaces.
    pub fn set_lease(&self, id: NamespaceId, lease: Lease) -> DkResult<()> {
        let mut inner = self.inner.lock();
        match inner.spaces.iter_mut().find(|n| n.id == id) {
            Some(ns) => {
                ns.lease = lease;
                Ok(())
            }
            None => Err(DkError::Closed(format!("unknown namespace {id}"))),
        }
    }

    /// Marks a namespace retired (no new connections) without unloading.
    pub fn retire(&self, id: NamespaceId) {
        let mut inner = self.inner.lock();
        if inner.active == Some(id) {
            inner.active = None;
        }
        if let Some(ns) = inner.spaces.iter_mut().find(|n| n.id == id) {
            ns.retired = true;
        }
    }

    /// Unloads a retired namespace (the `unload_old_driver` step of
    /// Table 4).
    ///
    /// # Errors
    ///
    /// [`DkError::Closed`] when the namespace is still active.
    pub fn unload(&self, id: NamespaceId) -> DkResult<()> {
        let mut inner = self.inner.lock();
        if inner.active == Some(id) {
            return Err(DkError::Closed(format!(
                "cannot unload active namespace {id}"
            )));
        }
        inner.spaces.retain(|n| n.id != id);
        Ok(())
    }

    /// Ids of all loaded namespaces, oldest first.
    pub fn loaded(&self) -> Vec<NamespaceId> {
        self.inner.lock().spaces.iter().map(|n| n.id).collect()
    }

    /// Number of loaded namespaces.
    pub fn len(&self) -> usize {
        self.inner.lock().spaces.len()
    }

    /// Whether no driver is loaded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().spaces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ConnectProps, Connection};
    use crate::url::DbUrl;
    use drivolution_core::{DriverVersion, ExpirationPolicy, RenewPolicy};

    struct FakeDriver(&'static str);
    impl Driver for FakeDriver {
        fn name(&self) -> &str {
            self.0
        }
        fn version(&self) -> DriverVersion {
            DriverVersion::new(1, 0, 0)
        }
        fn connect(&self, _url: &DbUrl, _props: &ConnectProps) -> DkResult<Box<dyn Connection>> {
            Err(DkError::Unsupported("fake".into()))
        }
    }

    fn lease() -> Lease {
        Lease::grant(
            DriverId(1),
            0,
            1_000,
            RenewPolicy::Renew,
            ExpirationPolicy::AfterClose,
        )
        .unwrap()
    }

    fn image(name: &str) -> DriverImage {
        DriverImage::new(name, DriverVersion::new(1, 0, 0), 1)
    }

    #[test]
    fn load_activate_switch_retire_unload() {
        let reg = DriverRegistry::new();
        assert!(reg.is_empty());
        let a = reg.load(
            Arc::new(FakeDriver("a")),
            image("a"),
            DriverId(1),
            lease(),
            Vec::new(),
        );
        let b = reg.load(
            Arc::new(FakeDriver("b")),
            image("b"),
            DriverId(2),
            lease(),
            Vec::new(),
        );
        assert_eq!(reg.len(), 2);
        assert!(reg.active().is_none());

        reg.activate(a).unwrap();
        assert_eq!(reg.active().unwrap().id, a);

        // Switching retires the old namespace.
        reg.activate(b).unwrap();
        assert_eq!(reg.active().unwrap().id, b);
        assert!(reg.get(a).unwrap().retired);
        // Retired namespaces cannot be re-activated.
        assert!(reg.activate(a).is_err());

        // Active namespaces cannot be unloaded; retired ones can.
        assert!(reg.unload(b).is_err());
        reg.unload(a).unwrap();
        assert_eq!(reg.loaded(), vec![b]);
    }

    #[test]
    fn retire_active_clears_active() {
        let reg = DriverRegistry::new();
        let a = reg.load(
            Arc::new(FakeDriver("a")),
            image("a"),
            DriverId(1),
            lease(),
            Vec::new(),
        );
        reg.activate(a).unwrap();
        reg.retire(a);
        assert!(reg.active().is_none());
        reg.unload(a).unwrap();
        assert!(reg.is_empty());
    }

    #[test]
    fn set_lease_updates() {
        let reg = DriverRegistry::new();
        let a = reg.load(
            Arc::new(FakeDriver("a")),
            image("a"),
            DriverId(1),
            lease(),
            Vec::new(),
        );
        let newer = Lease::grant(
            DriverId(1),
            500,
            2_000,
            RenewPolicy::Upgrade,
            ExpirationPolicy::Immediate,
        )
        .unwrap();
        reg.set_lease(a, newer.clone()).unwrap();
        assert_eq!(reg.get(a).unwrap().lease, newer);
        assert!(reg.set_lease(NamespaceId(99), newer).is_err());
    }

    #[test]
    fn unknown_namespace_operations_error() {
        let reg = DriverRegistry::new();
        assert!(reg.activate(NamespaceId(1)).is_err());
        assert!(reg.get(NamespaceId(1)).is_none());
        reg.retire(NamespaceId(1)); // no-op
        reg.unload(NamespaceId(1)).unwrap(); // no-op removal
    }
}
