//! Statically linked "legacy" drivers — the conventional distribution
//! model the paper improves on (Application 3 in Figure 1 keeps using one
//! of these; the external Drivolution server of §4.1.3 queries its legacy
//! database through one).

use std::sync::Arc;

use netsim::{Addr, Network};

use drivolution_core::{DriverImage, DriverVersion};

use crate::api::Driver;
use crate::error::DkResult;
use crate::interpreted::InterpretedDriver;

/// The image a legacy driver is built from: fixed at "compile time",
/// never downloaded, never upgraded without redeploying the application.
pub fn legacy_image(db_protocol: u16) -> DriverImage {
    DriverImage::new(
        format!("legacy-rdbc-v{db_protocol}"),
        DriverVersion::new(db_protocol as i32, 0, 0),
        db_protocol,
    )
}

/// Builds a statically linked driver speaking the given database protocol
/// version.
///
/// # Errors
///
/// Never in practice (the legacy image is always direct-flavor); the
/// `Result` mirrors [`InterpretedDriver::new`].
pub fn legacy_driver(net: &Network, local: &Addr, db_protocol: u16) -> DkResult<Arc<dyn Driver>> {
    Ok(Arc::new(InterpretedDriver::new(
        legacy_image(db_protocol),
        net.clone(),
        local.clone(),
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ConnectProps;
    use crate::url::DbUrl;
    use minidb::wire::DbServer;
    use minidb::MiniDb;

    #[test]
    fn legacy_driver_connects_like_any_other() {
        let net = Network::new();
        let db = Arc::new(MiniDb::new("legacydb"));
        net.bind_arc(Addr::new("db", 5432), Arc::new(DbServer::new(db)))
            .unwrap();
        let d = legacy_driver(&net, &Addr::new("app", 1), 1).unwrap();
        assert_eq!(d.name(), "legacy-rdbc-v1");
        let mut c = d
            .connect(
                &DbUrl::direct(Addr::new("db", 5432), "legacydb"),
                &ConnectProps::user("admin", "admin"),
            )
            .unwrap();
        c.execute("SELECT 1").unwrap();
    }

    #[test]
    fn legacy_image_is_deterministic() {
        assert_eq!(legacy_image(2), legacy_image(2));
        assert_eq!(legacy_image(2).db_protocol, 2);
    }
}
