//! Acceptance tests against the real workspace: the check passes on
//! the current tree, and injecting each class of violation into the
//! scanned sources (in memory — the tree itself is never modified)
//! makes it fail with the right rule.

use std::path::{Path, PathBuf};

use drvlint::{collect_workspace, run_passes, Finding, ScannedFile, BASELINE_FILE, PROTO_FILE};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/drvlint sits two levels below the workspace root")
        .to_path_buf()
}

fn scanned_tree() -> (Vec<ScannedFile>, String) {
    let root = repo_root();
    let files = collect_workspace(&root).expect("scan workspace");
    let baseline =
        std::fs::read_to_string(root.join(BASELINE_FILE)).expect("read drvlint-baseline.toml");
    (files, baseline)
}

/// Re-scans one file after applying `edit` to its raw source, leaving
/// every other file untouched.
fn with_edit(
    files: &[ScannedFile],
    rel_path: &str,
    edit: impl Fn(&str) -> String,
) -> Vec<ScannedFile> {
    let mut edited = false;
    let out: Vec<ScannedFile> = files
        .iter()
        .map(|f| {
            if f.rel_path == rel_path {
                edited = true;
                let src = f.raw_lines.join("\n");
                let new_src = edit(&src);
                assert_ne!(src, new_src, "edit to {rel_path} was a no-op");
                ScannedFile::new(&f.crate_dir, &f.rel_path, &new_src)
            } else {
                f.clone()
            }
        })
        .collect();
    assert!(edited, "{rel_path} not found in the scanned tree");
    out
}

fn rules_of(findings: &[Finding]) -> Vec<(&str, &str)> {
    findings
        .iter()
        .map(|f| (f.rule.as_str(), f.file.as_str()))
        .collect()
}

#[test]
fn current_tree_is_clean() {
    let (files, baseline) = scanned_tree();
    let report = run_passes(&files, &baseline).expect("run passes");
    assert!(
        report.is_clean(),
        "drvlint must pass on the committed tree:\n{:#?}",
        report.findings
    );
}

#[test]
fn fresh_wallclock_read_in_netsim_fails() {
    let (files, baseline) = scanned_tree();
    let files = with_edit(&files, "crates/netsim/src/net.rs", |src| {
        format!(
            "{src}\nfn injected_probe() -> u64 {{\n    \
             let t0 = std::time::Instant::now();\n    \
             t0.elapsed().as_millis() as u64\n}}\n"
        )
    });
    let report = run_passes(&files, &baseline).expect("run passes");
    let hits = rules_of(&report.findings);
    assert!(
        hits.contains(&("wallclock", "crates/netsim/src/net.rs")),
        "expected a wallclock finding in net.rs, got {hits:?}"
    );
}

#[test]
fn frame_tag_without_decode_arm_fails() {
    let (files, baseline) = scanned_tree();
    let files = with_edit(&files, PROTO_FILE, |src| {
        // Drop the decode arm for one real tag; encode keeps writing it.
        src.replace("TAG_ACTIVATION_ACK => Ok(DrvMsg::ActivationAck),", "")
    });
    let report = run_passes(&files, &baseline).expect("run passes");
    let undecoded: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "tag-undecoded")
        .collect();
    assert_eq!(undecoded.len(), 1, "{:#?}", report.findings);
    assert!(undecoded[0].message.contains("TAG_ACTIVATION_ACK"));
}

#[test]
fn unwrap_count_above_baseline_fails() {
    let (files, baseline) = scanned_tree();
    let files = with_edit(&files, "crates/core/src/chunk.rs", |src| {
        format!("{src}\nfn injected_unwrap(v: Option<u8>) -> u8 {{\n    v.unwrap()\n}}\n")
    });
    let report = run_passes(&files, &baseline).expect("run passes");
    let ratchet: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "panic-ratchet")
        .collect();
    assert_eq!(ratchet.len(), 1, "{:#?}", report.findings);
    assert!(
        ratchet[0].message.contains("unwrap count rose"),
        "{}",
        ratchet[0].message
    );
}

#[test]
fn allow_without_reason_fails() {
    let (files, baseline) = scanned_tree();
    let files = with_edit(&files, "crates/netsim/src/net.rs", |src| {
        format!("{src}\n// drvlint: allow(wallclock)\n")
    });
    let report = run_passes(&files, &baseline).expect("run passes");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "bad-allow" && f.message.contains("justification")),
        "{:#?}",
        report.findings
    );
}

#[test]
fn allow_naming_unknown_rule_fails() {
    let (files, baseline) = scanned_tree();
    let files = with_edit(&files, "crates/netsim/src/net.rs", |src| {
        format!("{src}\n// drvlint: allow(no-such-rule) — because reasons\n")
    });
    let report = run_passes(&files, &baseline).expect("run passes");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "bad-allow" && f.message.contains("no-such-rule")),
        "{:#?}",
        report.findings
    );
}
