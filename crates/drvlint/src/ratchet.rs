//! Panic-path ratchet.
//!
//! Counts `unwrap()` / `expect()` / panic-family macros / slice-index
//! sites per crate in non-test code and compares them against the
//! checked-in `drvlint-baseline.toml`. A count that *rises* fails the
//! build; a count that falls is reported so the baseline can be
//! lowered (`cargo run -p drvlint -- update-baseline`). The baseline
//! only ever goes down: raising it means adding a new panic path, and
//! that has to be visible in review as a baseline diff.

use std::collections::BTreeMap;

use crate::scan::{Finding, ScannedFile};

/// Panic-site counts for one crate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// `.unwrap()` calls.
    pub unwrap: u64,
    /// `.expect(...)` calls.
    pub expect: u64,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` sites.
    pub panic: u64,
    /// Indexing expressions (`x[i]`, `&buf[a..b]`) — each can panic on
    /// a bad bound.
    pub index: u64,
}

impl Counts {
    fn get(&self, key: &str) -> u64 {
        match key {
            "unwrap" => self.unwrap,
            "expect" => self.expect,
            "panic" => self.panic,
            "index" => self.index,
            _ => 0,
        }
    }
}

/// Category keys, in baseline order.
pub const CATEGORIES: &[&str] = &["unwrap", "expect", "panic", "index"];

/// Crates the ratchet skips: the ratchet covers non-test, non-bench
/// code, and `bench` is bench harness code end to end.
const EXEMPT_CRATES: &[&str] = &["bench"];

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn count_token(line: &str, token: &str) -> u64 {
    // Tokens starting with an identifier character (`panic!`) need a
    // word boundary before them so `debug_panic!` never counts; tokens
    // starting with `.` sit right after a receiver by construction.
    let boundary = token
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    let mut n = 0;
    let mut from = 0;
    while let Some(at) = line[from..].find(token) {
        let abs = from + at;
        if !boundary || abs == 0 || !is_ident(line.as_bytes()[abs - 1] as char) {
            n += 1;
        }
        from = abs + token.len();
    }
    n
}

/// Indexing sites: a `[` directly preceded by an identifier character,
/// `)` or `]` is an index (or slice) expression. Attribute brackets
/// (`#[...]`), array literals and types never match.
fn count_index_sites(line: &str) -> u64 {
    let bytes = line.as_bytes();
    let mut n = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if is_ident(prev) || prev == ')' || prev == ']' {
            n += 1;
        }
    }
    n
}

/// Counts panic sites per crate over non-test lines.
pub fn count(files: &[ScannedFile]) -> BTreeMap<String, Counts> {
    let mut by_crate: BTreeMap<String, Counts> = BTreeMap::new();
    for file in files {
        if EXEMPT_CRATES.contains(&file.crate_dir.as_str()) {
            continue;
        }
        let c = by_crate.entry(file.crate_dir.clone()).or_default();
        for (idx, line) in file.masked_lines.iter().enumerate() {
            if file.in_test[idx] {
                continue;
            }
            c.unwrap += count_token(line, ".unwrap()");
            c.expect += count_token(line, ".expect(");
            c.panic += count_token(line, "panic!")
                + count_token(line, "unreachable!")
                + count_token(line, "todo!")
                + count_token(line, "unimplemented!");
            c.index += count_index_sites(line);
        }
    }
    by_crate
}

/// Parses the baseline TOML (a `[crate]` section per crate, `key = n`
/// entries). Hand-rolled: the build environment has no crates.io, and
/// the format is four integers per section.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, Counts>, String> {
    let mut out = BTreeMap::new();
    let mut section: Option<String> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim().to_string();
            out.entry(name.clone()).or_insert_with(Counts::default);
            section = Some(name);
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("baseline line {}: expected `key = n`", lineno + 1));
        };
        let Some(section) = section.as_ref() else {
            return Err(format!(
                "baseline line {}: entry outside a [crate] section",
                lineno + 1
            ));
        };
        let v: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("baseline line {}: bad count {}", lineno + 1, value.trim()))?;
        let c = out
            .get_mut(section)
            .ok_or_else(|| format!("baseline line {}: unknown section", lineno + 1))?;
        match key.trim() {
            "unwrap" => c.unwrap = v,
            "expect" => c.expect = v,
            "panic" => c.panic = v,
            "index" => c.index = v,
            other => {
                return Err(format!(
                    "baseline line {}: unknown category {other}",
                    lineno + 1
                ))
            }
        }
    }
    Ok(out)
}

/// Renders a baseline deterministically (sorted crates, fixed key
/// order).
pub fn render_baseline(counts: &BTreeMap<String, Counts>) -> String {
    let mut out = String::from(
        "# drvlint panic-path baseline: per-crate counts of unwrap/expect/\n\
         # panic-macro/slice-index sites in non-test code. `cargo run -p\n\
         # drvlint -- check` fails when any count rises; lower it with\n\
         # `cargo run -p drvlint -- update-baseline` after burning sites down.\n\
         # The baseline only ever goes down.\n",
    );
    for (name, c) in counts {
        out.push_str(&format!(
            "\n[{name}]\nunwrap = {}\nexpect = {}\npanic = {}\nindex = {}\n",
            c.unwrap, c.expect, c.panic, c.index
        ));
    }
    out
}

/// Compares current counts to the baseline. Raised counts are
/// findings; lowered counts come back as notes prompting a baseline
/// update.
pub fn check(
    current: &BTreeMap<String, Counts>,
    baseline: &BTreeMap<String, Counts>,
) -> (Vec<Finding>, Vec<String>) {
    let mut findings = Vec::new();
    let mut notes = Vec::new();
    for (name, cur) in current {
        let Some(base) = baseline.get(name) else {
            findings.push(Finding {
                file: "drvlint-baseline.toml".to_string(),
                line: 1,
                rule: "panic-ratchet".to_string(),
                message: format!(
                    "crate {name} has no baseline entry; run `cargo run -p drvlint -- \
                     update-baseline` and commit the result"
                ),
            });
            continue;
        };
        for cat in CATEGORIES {
            let (c, b) = (cur.get(cat), base.get(cat));
            if c > b {
                findings.push(Finding {
                    file: "drvlint-baseline.toml".to_string(),
                    line: 1,
                    rule: "panic-ratchet".to_string(),
                    message: format!(
                        "crate {name}: {cat} count rose {b} -> {c}; remove the new panic \
                         path (or consciously raise the baseline in review)"
                    ),
                });
            } else if c < b {
                notes.push(format!(
                    "crate {name}: {cat} count fell {b} -> {c}; ratchet the baseline down \
                     with `cargo run -p drvlint -- update-baseline`"
                ));
            }
        }
    }
    for name in baseline.keys() {
        if !current.contains_key(name) {
            notes.push(format!(
                "baseline names crate {name} which no longer exists; update-baseline will drop it"
            ));
        }
    }
    (findings, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new("demo", "crates/demo/src/lib.rs", src)
    }

    #[test]
    fn counts_panic_sites_outside_tests() {
        let src = "\
fn f(v: &[u8], m: &Map) -> u8 {
    let a = v.first().unwrap();
    let b = m.get(0).expect(\"present\");
    if v.is_empty() { panic!(\"empty\") }
    let c = v[0] + v[1..][0];
    unreachable!()
}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); y[0]; panic!(); }
}
";
        let c = count(&[scan(src)]);
        let d = c.get("demo").copied().unwrap_or_default();
        assert_eq!(d.unwrap, 1);
        assert_eq!(d.expect, 1);
        assert_eq!(d.panic, 2);
        // v[0], v[1..] and ...][0] are three index sites.
        assert_eq!(d.index, 3);
    }

    #[test]
    fn unwrap_or_and_strings_do_not_count() {
        let src = "\
fn f(o: Option<u32>) -> u32 {
    let s = \"call .unwrap() and panic!\";
    let v = vec![1, 2];
    o.unwrap_or(0) + o.unwrap_or_default() + v.len() as u32
}
";
        let c = count(&[scan(src)]);
        assert_eq!(
            c.get("demo").copied().unwrap_or_default(),
            Counts::default()
        );
    }

    #[test]
    fn baseline_roundtrips() {
        let mut m = BTreeMap::new();
        m.insert(
            "core".to_string(),
            Counts {
                unwrap: 3,
                expect: 1,
                panic: 0,
                index: 40,
            },
        );
        m.insert("netsim".to_string(), Counts::default());
        let text = render_baseline(&m);
        assert_eq!(parse_baseline(&text).unwrap(), m);
    }

    #[test]
    fn rising_counts_fail_and_falling_counts_note() {
        let mut base = BTreeMap::new();
        base.insert(
            "demo".to_string(),
            Counts {
                unwrap: 2,
                expect: 1,
                panic: 0,
                index: 5,
            },
        );
        let mut cur = base.clone();
        // Rise in unwrap, fall in index.
        cur.get_mut("demo").unwrap().unwrap = 3;
        cur.get_mut("demo").unwrap().index = 4;
        let (findings, notes) = check(&cur, &base);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unwrap count rose 2 -> 3"));
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("index count fell 5 -> 4"));
    }

    #[test]
    fn missing_crate_entry_is_a_finding() {
        let mut cur = BTreeMap::new();
        cur.insert("newcrate".to_string(), Counts::default());
        let (findings, _) = check(&cur, &BTreeMap::new());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no baseline entry"));
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse_baseline("unwrap = 3\n").is_err());
        assert!(parse_baseline("[core]\nunwrap = many\n").is_err());
        assert!(parse_baseline("[core]\nwhatever = 3\n").is_err());
    }
}
