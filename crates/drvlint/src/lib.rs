//! drvlint — the workspace static-analysis gate.
//!
//! An offline, dependency-free lint pass that turns two prose
//! invariants of this reproduction into machine-checked build gates:
//!
//! 1. **Determinism** ([`determinism`]) — sim-facing crates never read
//!    the wall clock, spawn threads, draw ambient randomness, or let
//!    hash-map iteration order escape into wire frames, candidate
//!    ranking, or stats.
//! 2. **Protocol conformance** ([`proto`]) — every frame tag in
//!    `core::proto` is unique and symmetric between encode and decode,
//!    and every codec-versioned field keeps a legacy-decode branch.
//! 3. **Panic-path hygiene** ([`ratchet`]) — per-crate counts of
//!    `unwrap`/`expect`/panic-macro/slice-index sites only ever go
//!    down, against `drvlint-baseline.toml`.
//!
//! Run as `cargo run -p drvlint -- check`; wired into CI ahead of the
//! bench gates and into the tier-1 suite via `tests/drvlint_gate.rs`.
//! The escape hatch is an inline
//! `// drvlint: allow(<rule>) — <reason>` comment on (or directly
//! above) the offending line; allows without a reason are themselves
//! findings.

pub mod determinism;
pub mod proto;
pub mod ratchet;
pub mod scan;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use scan::{Finding, ScannedFile};

/// Workspace-relative path of the protocol source the conformance pass
/// verifies.
pub const PROTO_FILE: &str = "crates/core/src/proto.rs";

/// Workspace-relative path of the panic-path baseline.
pub const BASELINE_FILE: &str = "drvlint-baseline.toml";

/// Crate directories under `crates/` that drvlint never scans: API
/// shims standing in for crates.io dependencies (not ours to ratchet)
/// and drvlint's own fixtures.
const SKIP_DIRS: &[&str] = &["shims"];

/// Outcome of a full `check` run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Rule violations; any entry fails the build.
    pub findings: Vec<Finding>,
    /// Non-fatal observations (ratchet counts that can be lowered).
    pub notes: Vec<String>,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(entry.map_err(|e| format!("{}: {e}", dir.display()))?.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every workspace crate's `src/` tree (skipping shims), sorted
/// by path for deterministic output.
pub fn collect_workspace(root: &Path) -> Result<Vec<ScannedFile>, String> {
    let crates_dir = root.join("crates");
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry
            .map_err(|e| format!("{}: {e}", crates_dir.display()))?
            .path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() && !SKIP_DIRS.contains(&name.as_str()) {
            crate_dirs.push(path);
        }
    }
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let crate_dir = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        walk_rs(&src, &mut paths)?;
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(ScannedFile::new(&crate_dir, &rel, &read(&path)?));
        }
    }
    Ok(files)
}

/// Every rule name any pass can emit (plus `panic-ratchet` and the
/// allow-machinery rule), used to reject allow comments naming rules
/// that do not exist.
pub fn known_rules() -> Vec<&'static str> {
    let mut rules = Vec::new();
    rules.extend_from_slice(determinism::RULES);
    rules.extend_from_slice(proto::RULES);
    rules.push("panic-ratchet");
    rules
}

/// Runs all three passes over the scanned files against the given
/// baseline text.
pub fn run_passes(files: &[ScannedFile], baseline_text: &str) -> Result<Report, String> {
    let mut report = Report::default();
    let known = known_rules();
    for file in files {
        for (line, problem) in &file.bad_allows {
            report.findings.push(Finding {
                file: file.rel_path.clone(),
                line: *line,
                rule: "bad-allow".to_string(),
                message: problem.clone(),
            });
        }
        for (idx, allows) in file.allows.iter().enumerate() {
            for rule in allows {
                if !known.contains(&rule.as_str()) {
                    report.findings.push(Finding {
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        rule: "bad-allow".to_string(),
                        message: format!("allow names unknown rule `{rule}`"),
                    });
                }
            }
        }
    }
    report.findings.extend(determinism::check(files));
    match files.iter().find(|f| f.rel_path == PROTO_FILE) {
        Some(proto_file) => report.findings.extend(proto::check(proto_file)),
        None => report.findings.push(Finding {
            file: PROTO_FILE.to_string(),
            line: 1,
            rule: "proto-structure".to_string(),
            message: "protocol source file not found".to_string(),
        }),
    }
    let counts = ratchet::count(files);
    let baseline = ratchet::parse_baseline(baseline_text)?;
    let (findings, notes) = ratchet::check(&counts, &baseline);
    report.findings.extend(findings);
    report.notes.extend(notes);
    // Deterministic ordering: by file, then line, then rule.
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// Full workspace check rooted at `root` (the directory holding
/// `Cargo.toml` and `drvlint-baseline.toml`).
pub fn run_check(root: &Path) -> Result<Report, String> {
    let files = collect_workspace(root)?;
    let baseline = read(&root.join(BASELINE_FILE))
        .map_err(|e| format!("{e}; run `cargo run -p drvlint -- update-baseline` first"))?;
    run_passes(&files, &baseline)
}

/// Recomputes panic-path counts and rewrites the baseline file.
/// Returns the rendered text.
pub fn update_baseline(root: &Path) -> Result<String, String> {
    let files = collect_workspace(root)?;
    let counts = ratchet::count(&files);
    let text = ratchet::render_baseline(&counts);
    let path = root.join(BASELINE_FILE);
    let old: BTreeMap<String, ratchet::Counts> = match std::fs::read_to_string(&path) {
        Ok(t) => ratchet::parse_baseline(&t)?,
        Err(_) => BTreeMap::new(),
    };
    for (name, cur) in &counts {
        if let Some(base) = old.get(name) {
            for cat in ratchet::CATEGORIES {
                let (c, b) = (
                    match *cat {
                        "unwrap" => cur.unwrap,
                        "expect" => cur.expect,
                        "panic" => cur.panic,
                        _ => cur.index,
                    },
                    match *cat {
                        "unwrap" => base.unwrap,
                        "expect" => base.expect,
                        "panic" => base.panic,
                        _ => base.index,
                    },
                );
                if c > b {
                    eprintln!(
                        "warning: crate {name}: {cat} baseline rising {b} -> {c}; \
                         the ratchet is meant to go down"
                    );
                }
            }
        }
    }
    std::fs::write(&path, &text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(text)
}
