//! Determinism lint for sim-facing crates.
//!
//! The netsim world promises *same seed ⇒ same schedule, same wire
//! traffic, same bench numbers*. That promise dies the moment library
//! code reads the wall clock, spawns OS threads, draws from an ambient
//! RNG, or lets hash-map iteration order reach a wire frame or a stats
//! snapshot. This pass bans those constructs in the sim-facing crates;
//! the rare legitimate site carries an inline
//! `// drvlint: allow(<rule>) — <reason>` escape hatch.
//!
//! Rules:
//!
//! * `wallclock` — `Instant::now` / `SystemTime` (virtual time comes
//!   from [`netsim::Clock`], never the OS);
//! * `thread-spawn` — `std::thread::spawn` (concurrency is modeled by
//!   the scheduler, not preemption);
//! * `ambient-rng` — `thread_rng` (randomness must be seeded);
//! * `map-iter` — iterating a `HashMap`/`HashSet` (`.iter()`,
//!   `.keys()`, `.values()`, `for … in &map`, ...): iteration order is
//!   arbitrary and changes between runs, so anything it feeds —
//!   codecs, candidate ranking, stats — becomes nondeterministic. Use
//!   `BTreeMap`/`BTreeSet` or sort before use.

use crate::scan::{Finding, ScannedFile};

/// Crates whose `src/` trees are sim-facing: everything that can feed
/// the codec, the scheduler, or stats ordering.
pub const SIM_CRATES: &[&str] = &[
    "bootloader",
    "cluster",
    "core",
    "depot",
    "driverkit",
    "fleet",
    "minidb",
    "netsim",
    "server",
];

/// Every rule this pass can emit (used to validate allow comments).
pub const RULES: &[&str] = &["wallclock", "thread-spawn", "ambient-rng", "map-iter"];

const BANNED_ITERS: &[&str] = &[
    "iter()",
    "iter_mut()",
    "keys()",
    "values()",
    "values_mut()",
    "into_iter()",
    "into_keys()",
    "into_values()",
    "drain()",
];

/// Guard/adapter calls that preserve "this is still the same map":
/// lock guards, interior borrows, and clones.
const PASS_THROUGH: &[&str] = &[
    "lock()",
    "read()",
    "write()",
    "borrow()",
    "borrow_mut()",
    "as_ref()",
    "as_mut()",
    "clone()",
];

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Identifiers in this file declared (or derived from) a
/// `HashMap`/`HashSet`, found by a forward taint scan:
///
/// * `name: ... Hash{Map,Set}<...>` — struct fields, typed lets, params;
/// * `let name = ...Hash{Map,Set}...` — constructors and collects;
/// * `let guard = tainted.lock()` — lock/borrow guards over a tainted
///   binding keep the taint.
fn tainted_names(file: &ScannedFile) -> Vec<String> {
    let mut tainted: Vec<String> = Vec::new();
    let add = |name: &str, tainted: &mut Vec<String>| {
        if !name.is_empty() && !tainted.iter().any(|t| t == name) {
            tainted.push(name.to_string());
        }
    };
    for (idx, line) in file.masked_lines.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        // Declarations with an explicit hash type after a `:`.
        for marker in ["HashMap<", "HashSet<"] {
            let mut from = 0;
            while let Some(at) = line[from..].find(marker) {
                let abs = from + at;
                from = abs + marker.len();
                if let Some(name) = decl_name_before(line, abs) {
                    add(&name, &mut tainted);
                }
            }
        }
        // `let` bindings whose initializer mentions a hash container or
        // is a pure guard/alias over a tainted binding.
        let trimmed = line.trim_start();
        let Some(rest) = trimmed
            .strip_prefix("let mut ")
            .or_else(|| trimmed.strip_prefix("let "))
        else {
            continue;
        };
        let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
        if name.is_empty() {
            continue;
        }
        let Some(eq) = rest.find('=') else { continue };
        let rhs = rest[eq + 1..].trim().trim_end_matches(';').trim();
        if rhs.contains("HashMap") || rhs.contains("HashSet") {
            add(&name, &mut tainted);
        } else if let Some(base) = guard_base(rhs) {
            if tainted.contains(&base) {
                add(&name, &mut tainted);
            }
        }
    }
    tainted
}

/// For `self.inner.services.read()` (or a bare path), returns the last
/// path segment before any pass-through calls — `services` — if the
/// expression is nothing but a path plus pass-through calls.
fn guard_base(rhs: &str) -> Option<String> {
    let mut expr = rhs.trim_start_matches('&').trim_start();
    expr = expr.strip_prefix("mut ").unwrap_or(expr);
    let mut last_ident = String::new();
    let mut chars = expr.chars().peekable();
    loop {
        let seg: String = {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if is_ident(c) {
                    s.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            s
        };
        if seg.is_empty() {
            return None;
        }
        match chars.peek() {
            None => {
                // Bare path: the final segment is the base.
                return Some(
                    if PASS_THROUGH.iter().any(|p| p.trim_end_matches("()") == seg) {
                        last_ident
                    } else {
                        seg
                    },
                );
            }
            Some('.') => {
                last_ident = seg;
                chars.next();
            }
            Some('(') => {
                // Only pass-through calls keep the alias pure.
                chars.next();
                if chars.next() != Some(')') {
                    return None;
                }
                if !PASS_THROUGH.iter().any(|p| p.trim_end_matches("()") == seg) {
                    return None;
                }
                match chars.peek() {
                    None => return Some(last_ident),
                    Some('.') => {
                        chars.next();
                    }
                    _ => return None,
                }
            }
            _ => return None,
        }
    }
}

/// The identifier declared before the `:` that introduces the type
/// containing `HashMap<`/`HashSet<` at byte offset `at`, if this looks
/// like a declaration (field, typed let, fn param).
fn decl_name_before(line: &str, at: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut i = at;
    // Walk back over type-ish characters to the declaring `:`.
    loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        let c = bytes[i] as char;
        if c == ':' {
            if i > 0 && bytes[i - 1] as char == ':' {
                // `::` path separator — keep walking.
                i -= 1;
                continue;
            }
            break;
        }
        let type_ish =
            is_ident(c) || matches!(c, '<' | '>' | '&' | '\'' | ' ' | ',' | '(' | ')' | '*');
        if !type_ish {
            return None;
        }
    }
    // `i` sits on the declaring colon; the identifier ends just before.
    let mut end = i;
    while end > 0 && (bytes[end - 1] as char).is_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1] as char) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    Some(line[start..end].to_string())
}

/// Whether the masked `line` iterates the tainted binding `name`:
/// either `name[.pass_through()]*.iter()`-style calls or a
/// `for … in [&[mut ]]name` loop header.
fn iterates(line: &str, name: &str) -> bool {
    for at in ScannedFile::word_positions(line, name) {
        let mut rest = &line[at + name.len()..];
        // Method-call chain: strip pass-through segments, then check
        // for a banned iteration method.
        loop {
            if let Some(r) = rest.strip_prefix('.') {
                if let Some(banned) = BANNED_ITERS.iter().find(|b| r.starts_with(**b)) {
                    let _ = banned;
                    return true;
                }
                if let Some(p) = PASS_THROUGH.iter().find(|p| r.starts_with(**p)) {
                    rest = &r[p.len()..];
                    continue;
                }
            }
            break;
        }
        // `for x in &name {` / `for (k, v) in name.lock().iter()` is
        // caught above; here: the bare borrow form.
        let before = line[..at].trim_end();
        if before.ends_with(" in") || before.ends_with("&") || before.ends_with("&mut") {
            let header_ok = {
                let t = line[..at].trim_end();
                let t = t.trim_end_matches("&mut").trim_end_matches('&').trim_end();
                t.ends_with(" in") && line[..at].contains("for ")
            };
            if header_ok {
                let after = line[at + name.len()..].trim_start();
                if after.is_empty() || after.starts_with('{') {
                    return true;
                }
            }
        }
    }
    false
}

/// Runs the determinism rules over every sim-facing file.
pub fn check(files: &[ScannedFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !SIM_CRATES.contains(&file.crate_dir.as_str()) {
            continue;
        }
        let tainted = tainted_names(file);
        for (idx, line) in file.masked_lines.iter().enumerate() {
            if file.in_test[idx] {
                continue;
            }
            let hit = |rule: &str, message: String, findings: &mut Vec<Finding>| {
                if !file.allowed(idx, rule) {
                    findings.push(Finding {
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        rule: rule.to_string(),
                        message,
                    });
                }
            };
            if line.contains("Instant::now") || line.contains("SystemTime") {
                hit(
                    "wallclock",
                    "wall-clock read in a sim-facing crate; take a netsim::Clock instead"
                        .to_string(),
                    &mut findings,
                );
            }
            if line.contains("thread::spawn") {
                hit(
                    "thread-spawn",
                    "OS thread spawned in a sim-facing crate; register a scheduler task instead"
                        .to_string(),
                    &mut findings,
                );
            }
            if line.contains("thread_rng") {
                hit(
                    "ambient-rng",
                    "ambient RNG in a sim-facing crate; use a seeded generator".to_string(),
                    &mut findings,
                );
            }
            for name in &tainted {
                if iterates(line, name) {
                    hit(
                        "map-iter",
                        format!(
                            "iteration over hash container `{name}`: order is nondeterministic; \
                             use a BTree collection or sort before use"
                        ),
                        &mut findings,
                    );
                    break;
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new("netsim", "crates/netsim/src/demo.rs", src)
    }

    #[test]
    fn flags_wall_clock_thread_and_rng() {
        let src = "\
fn f() {
    let t = std::time::Instant::now();
    let s = std::time::SystemTime::now();
    std::thread::spawn(|| {});
    let r = rand::thread_rng();
}
";
        let rules: Vec<String> = check(&[scan(src)]).into_iter().map(|f| f.rule).collect();
        assert_eq!(
            rules,
            vec!["wallclock", "wallclock", "thread-spawn", "ambient-rng"]
        );
    }

    #[test]
    fn ignores_strings_comments_and_tests() {
        let src = "\
fn f() {
    // Instant::now() would be wrong here.
    let s = \"Instant::now()\";
}
#[cfg(test)]
mod tests {
    fn t() {
        let started = std::time::Instant::now();
    }
}
";
        assert!(check(&[scan(src)]).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_with_reason() {
        let src = "\
fn system() {
    // drvlint: allow(wallclock) — explicit real-time constructor
    let origin = Instant::now();
}
";
        assert!(check(&[scan(src)]).is_empty());
    }

    #[test]
    fn map_iteration_is_flagged_through_guards() {
        let src = "\
struct S { entries: Mutex<HashMap<String, u32>>, v: Vec<u32> }
fn f(s: &S) {
    let m = s.entries.lock();
    for x in m.values() { use_it(x); }
    for y in s.v.iter() { use_it(y); }
}
";
        let f = check(&[scan(src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "map-iter");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn for_in_borrowed_map_is_flagged() {
        let src = "\
fn f() {
    let mut counts = HashMap::new();
    for (k, v) in &counts {
        use_it(k, v);
    }
}
";
        let f = check(&[scan(src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn vec_iteration_and_lookups_are_fine() {
        let src = "\
struct S { held: HashMap<u64, Vec<u32>> }
fn f(s: &S, k: u64) {
    let v = s.held.get(&k);
    if let Some(list) = v { for x in list.iter() { use_it(x); } }
}
";
        assert!(check(&[scan(src)]).is_empty());
    }

    #[test]
    fn non_sim_crates_are_exempt() {
        let f = ScannedFile::new(
            "drvlint",
            "crates/drvlint/src/x.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert!(check(&[f]).is_empty());
    }
}
