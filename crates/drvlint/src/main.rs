//! drvlint CLI.
//!
//! `cargo run -p drvlint -- check [--root PATH]` runs the full gate and
//! exits non-zero on any finding; `update-baseline` recomputes the
//! panic-path counts and rewrites `drvlint-baseline.toml`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: drvlint <check|update-baseline> [--root PATH]\n\
         \n\
         check            run determinism, protocol-conformance and\n\
         \x20                panic-ratchet passes; exit 1 on any finding\n\
         update-baseline  recompute panic-path counts and rewrite\n\
         \x20                drvlint-baseline.toml"
    );
    ExitCode::from(2)
}

fn find_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    // When run via `cargo run -p drvlint`, the manifest dir is
    // crates/drvlint; the workspace root is two levels up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    let mut root: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root = find_root(root);
    match cmd.as_str() {
        "check" => match drvlint::run_check(&root) {
            Ok(report) => {
                for note in &report.notes {
                    println!("note: {note}");
                }
                if report.is_clean() {
                    println!("drvlint: workspace clean");
                    ExitCode::SUCCESS
                } else {
                    for finding in &report.findings {
                        println!("{finding}");
                    }
                    println!("drvlint: {} finding(s)", report.findings.len());
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("drvlint: {e}");
                ExitCode::FAILURE
            }
        },
        "update-baseline" => match drvlint::update_baseline(&root) {
            Ok(_) => {
                println!(
                    "drvlint: wrote {}",
                    root.join(drvlint::BASELINE_FILE).display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("drvlint: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
