//! Comment- and string-aware source scanning.
//!
//! Every drvlint pass works on a [`ScannedFile`]: the raw source plus a
//! *masked* copy in which comment and string-literal contents are
//! replaced by spaces (newlines preserved), per-line `#[cfg(test)]`
//! region marks, and parsed `// drvlint: allow(<rule>) — <reason>`
//! escape hatches. Working on the mask means `"Instant::now()"` inside
//! a string literal or a doc comment can never trip a lint, while
//! brace-tracking stays reliable because braces inside strings are
//! gone.

/// One rule finding at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`wallclock`, `map-iter`, `panic-ratchet`, ...).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed allow escape hatch: which rules it suppresses and whether a
/// reason followed the rule list.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Allow {
    /// Rules named inside `allow(...)`.
    pub rules: Vec<String>,
    /// Whether non-empty justification text followed the rule list.
    pub has_reason: bool,
}

/// A workspace source file prepared for linting.
#[derive(Clone, Debug)]
pub struct ScannedFile {
    /// Directory name of the owning crate under `crates/` (e.g. `core`).
    pub crate_dir: String,
    /// Workspace-relative path (e.g. `crates/core/src/proto.rs`).
    pub rel_path: String,
    /// Original source lines.
    pub raw_lines: Vec<String>,
    /// Masked source lines: comments and string contents blanked.
    pub masked_lines: Vec<String>,
    /// Per line: inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Per line: rules allowed on that line (resolved from same-line
    /// trailing comments and whole-line comments above).
    pub allows: Vec<Vec<String>>,
    /// Malformed allow comments: `(line, problem)`.
    pub bad_allows: Vec<(usize, String)>,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Masks comments and string/char literals with spaces, preserving line
/// structure, and returns the comment text captured per line.
fn mask(source: &str) -> (Vec<String>, Vec<String>) {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut state = State::Code;
    let mut masked = String::with_capacity(source.len());
    let mut comments: Vec<String> = Vec::new();
    let mut cur_comment = String::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut prev_code: char = '\n';
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied().unwrap_or('\0');
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            masked.push('\n');
            comments.push(std::mem::take(&mut cur_comment));
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if next == '/' => {
                    state = State::LineComment;
                    masked.push_str("  ");
                    i += 2;
                }
                '/' if next == '*' => {
                    state = State::BlockComment(1);
                    masked.push_str("  ");
                    i += 2;
                }
                '"' => {
                    // Raw and byte-string prefixes are part of the
                    // preceding identifier characters (`r`, `b`, `br`),
                    // already emitted; only the hash count matters.
                    state = State::Str;
                    masked.push(' ');
                    i += 1;
                }
                '#' if (prev_code == 'r') && (next == '"' || next == '#') => {
                    // r#"..."# / r##"..."## raw string opener.
                    let mut hashes = 0u32;
                    while chars.get(i).copied() == Some('#') {
                        hashes += 1;
                        masked.push(' ');
                        i += 1;
                    }
                    if chars.get(i).copied() == Some('"') {
                        masked.push(' ');
                        i += 1;
                        state = State::RawStr(hashes);
                    }
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                    let after = chars.get(i + 2).copied().unwrap_or('\0');
                    if next == '\\' || after == '\'' {
                        state = State::Char;
                        masked.push(' ');
                        i += 1;
                    } else {
                        masked.push('\'');
                        prev_code = '\'';
                        i += 1;
                    }
                }
                _ => {
                    masked.push(c);
                    if !c.is_whitespace() {
                        prev_code = c;
                    }
                    i += 1;
                }
            },
            State::LineComment => {
                cur_comment.push(c);
                masked.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == '/' {
                    masked.push_str("  ");
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if c == '/' && next == '*' {
                    masked.push_str("  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    cur_comment.push(c);
                    masked.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    masked.push_str("  ");
                    i += 2;
                    // A escaped newline keeps line structure.
                    if next == '\n' {
                        masked.pop();
                        masked.pop();
                        masked.push('\n');
                        comments.push(std::mem::take(&mut cur_comment));
                    }
                } else if c == '"' {
                    masked.push(' ');
                    i += 1;
                    state = State::Code;
                    prev_code = ' ';
                } else {
                    masked.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    // Closing quote must be followed by `hashes` hashes.
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize).copied() != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            masked.push(' ');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        prev_code = ' ';
                        continue;
                    }
                }
                masked.push(' ');
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    masked.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    masked.push(' ');
                    i += 1;
                    state = State::Code;
                    prev_code = ' ';
                } else {
                    masked.push(' ');
                    i += 1;
                }
            }
        }
    }
    comments.push(std::mem::take(&mut cur_comment));
    let masked_lines: Vec<String> = masked.split('\n').map(str::to_string).collect();
    comments.truncate(masked_lines.len());
    while comments.len() < masked_lines.len() {
        comments.push(String::new());
    }
    (masked_lines, comments)
}

/// Parses a `drvlint: allow(rule, ...)` escape hatch out of comment
/// text, if present. The marker must open the comment (modulo leading
/// whitespace), so prose *mentioning* the syntax — like this doc
/// comment — never parses as an allow.
fn parse_allow(comment: &str) -> Option<Allow> {
    let marker = "drvlint: allow(";
    let rest = comment.trim_start().strip_prefix(marker)?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let has_reason = rest[close + 1..].chars().any(|c| c.is_alphanumeric());
    Some(Allow { rules, has_reason })
}

/// Marks every line belonging to a `#[cfg(test)]` item (attribute lines
/// included) by brace-tracking the masked source.
fn mark_test_regions(masked: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked.len()];
    let mut i = 0;
    while i < masked.len() {
        if !masked[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < masked.len() {
            in_test[j] = true;
            for ch in masked[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            if !opened && masked[j].trim_end().ends_with(';') {
                // `#[cfg(test)] mod tests;` — out-of-line test module.
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

impl ScannedFile {
    /// Scans one source file.
    pub fn new(crate_dir: &str, rel_path: &str, source: &str) -> ScannedFile {
        let raw_lines: Vec<String> = source.split('\n').map(str::to_string).collect();
        let (masked_lines, comments) = mask(source);
        let in_test = mark_test_regions(&masked_lines);
        let mut allows: Vec<Vec<String>> = vec![Vec::new(); masked_lines.len()];
        let mut bad_allows = Vec::new();
        for (idx, comment) in comments.iter().enumerate() {
            let Some(allow) = parse_allow(comment) else {
                continue;
            };
            if allow.rules.is_empty() {
                bad_allows.push((idx + 1, "allow comment names no rules".to_string()));
                continue;
            }
            if !allow.has_reason {
                bad_allows.push((
                    idx + 1,
                    format!(
                        "allow({}) needs a justification after the rule list",
                        allow.rules.join(", ")
                    ),
                ));
                continue;
            }
            // A comment-only line covers the next code line; a trailing
            // comment covers its own line.
            allows[idx].extend(allow.rules.iter().cloned());
            if masked_lines[idx].trim().is_empty() {
                let mut j = idx + 1;
                while j < masked_lines.len() && masked_lines[j].trim().is_empty() {
                    j += 1;
                }
                if j < masked_lines.len() {
                    allows[j].extend(allow.rules.iter().cloned());
                }
            }
        }
        ScannedFile {
            crate_dir: crate_dir.to_string(),
            rel_path: rel_path.to_string(),
            raw_lines,
            masked_lines,
            in_test,
            allows,
            bad_allows,
        }
    }

    /// Whether `rule` is allowed on 0-based line `idx`.
    pub fn allowed(&self, idx: usize, rule: &str) -> bool {
        self.allows
            .get(idx)
            .is_some_and(|a| a.iter().any(|r| r == rule))
    }

    /// Occurrences of `word` (whole-word) in the masked line, as byte
    /// offsets.
    pub fn word_positions(line: &str, word: &str) -> Vec<usize> {
        let mut out = Vec::new();
        let bytes = line.as_bytes();
        let mut from = 0;
        while let Some(at) = line[from..].find(word) {
            let start = from + at;
            let end = start + word.len();
            let before_ok = start == 0 || !is_ident(bytes[start - 1] as char);
            let after_ok = end >= bytes.len() || !is_ident(bytes[end] as char);
            if before_ok && after_ok {
                out.push(start);
            }
            from = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_masked() {
        let src = r#"
fn f() {
    let s = "Instant::now() inside a string";
    // Instant::now() inside a comment
    let c = 'x';
    let t = other();
}
"#;
        let f = ScannedFile::new("demo", "demo.rs", src);
        for l in &f.masked_lines {
            assert!(!l.contains("Instant::now"), "leaked: {l}");
        }
        assert!(f.masked_lines[4].contains("let c ="));
        assert!(f.masked_lines[5].contains("other()"));
    }

    #[test]
    fn raw_strings_and_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"panic!(\"}\")\"#; let b = b\"bytes\"; }";
        let f = ScannedFile::new("demo", "demo.rs", src);
        let m = &f.masked_lines[0];
        assert!(m.contains("fn f<'a>(x: &'a str)"));
        assert!(!m.contains("panic!"));
        // The brace inside the raw string must not unbalance the line.
        let open = m.matches('{').count();
        let close = m.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let f = ScannedFile::new("demo", "demo.rs", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn allow_comments_cover_their_line_and_the_next() {
        let src = "\
// drvlint: allow(wallclock) — the one legitimate site
let a = now();
let b = now(); // drvlint: allow(map-iter, wallclock) — both fine
let c = now();
";
        let f = ScannedFile::new("demo", "demo.rs", src);
        assert!(f.allowed(1, "wallclock"));
        assert!(f.allowed(2, "map-iter") && f.allowed(2, "wallclock"));
        assert!(!f.allowed(3, "wallclock"));
        assert!(f.bad_allows.is_empty());
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "let a = now(); // drvlint: allow(wallclock)\n";
        let f = ScannedFile::new("demo", "demo.rs", src);
        assert_eq!(f.bad_allows.len(), 1);
        assert!(!f.allowed(0, "wallclock"), "malformed allow must not apply");
    }

    #[test]
    fn word_positions_respect_boundaries() {
        assert_eq!(ScannedFile::word_positions("map.iter()", "map"), vec![0]);
        assert!(ScannedFile::word_positions("bitmap.iter()", "map").is_empty());
        assert!(ScannedFile::word_positions("map_x.iter()", "map").is_empty());
    }
}
