//! Protocol-conformance lint over `crates/core/src/proto.rs`.
//!
//! The wire protocol grew by accretion: 15 frame tags, codec-versioned
//! fields, and legacy dialects that every codec must keep decoding. The
//! compiler cannot see that discipline — a new `TAG_*` constant with an
//! encode arm but no decode arm builds cleanly and strands every peer.
//! This pass extracts the frame-tag constants and codec-version markers
//! and verifies, purely statically:
//!
//! * `tag-duplicate` — every `const TAG_*: u8` value is unique;
//! * `tag-unencoded` / `tag-undecoded` — every tag is referenced from
//!   both an encode body and a decode body;
//! * `version-asymmetric` — every versioned-field marker
//!   (`const *_V<n>: u8`, n ≥ 2) is referenced from both sides;
//! * `version-no-legacy` — the decode `match` that handles a versioned
//!   marker also carries at least one literal arm for the legacy
//!   dialect(s), so old frames keep decoding.

use crate::scan::{Finding, ScannedFile};

/// Every rule this pass can emit.
pub const RULES: &[&str] = &[
    "tag-duplicate",
    "tag-unencoded",
    "tag-undecoded",
    "version-asymmetric",
    "version-no-legacy",
    "proto-structure",
];

/// A `(start, end)` 0-based inclusive line range of one function body.
#[derive(Clone, Copy, Debug)]
struct Region {
    start: usize,
    end: usize,
}

/// Brace-matched body regions of functions whose name is in `names`.
fn fn_regions(file: &ScannedFile, names: &[&str]) -> Vec<Region> {
    let mut regions = Vec::new();
    for (idx, line) in file.masked_lines.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        if !names
            .iter()
            .any(|n| line.contains(&format!("fn {n}(")) || line.contains(&format!("fn {n}<")))
        {
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = idx;
        while j < file.masked_lines.len() {
            for ch in file.masked_lines[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        regions.push(Region { start: idx, end: j });
    }
    regions
}

fn appears_in(file: &ScannedFile, regions: &[Region], word: &str, skip_line: usize) -> bool {
    regions.iter().any(|r| {
        (r.start..=r.end.min(file.masked_lines.len() - 1)).any(|i| {
            i != skip_line && !ScannedFile::word_positions(&file.masked_lines[i], word).is_empty()
        })
    })
}

/// Whether the decode `match` containing `marker`'s arm also has a
/// literal (legacy-dialect) arm. Walks up from the arm line to the
/// nearest `match`, then scans that brace-matched block.
fn has_legacy_arm(file: &ScannedFile, regions: &[Region], marker: &str) -> bool {
    for r in regions {
        for i in r.start..=r.end.min(file.masked_lines.len() - 1) {
            let line = &file.masked_lines[i];
            let is_arm = ScannedFile::word_positions(line, marker)
                .iter()
                .any(|&at| line[at + marker.len()..].trim_start().starts_with("=>"));
            if !is_arm {
                continue;
            }
            // Nearest enclosing `match` header above the arm.
            let Some(m) = (r.start..=i)
                .rev()
                .find(|&j| file.masked_lines[j].contains("match "))
            else {
                continue;
            };
            // Scan the match block for a literal arm.
            let mut depth: i64 = 0;
            let mut opened = false;
            for j in m..=r.end.min(file.masked_lines.len() - 1) {
                let l = &file.masked_lines[j];
                let t = l.trim_start();
                let lit_len = t.chars().take_while(|c| c.is_ascii_digit()).count();
                if lit_len > 0 && t[lit_len..].trim_start().starts_with("=>") && opened {
                    return true;
                }
                for ch in l.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
            }
        }
    }
    false
}

/// Parses `const NAME: u8 = N;` declarations (optionally `pub`) whose
/// name matches `filter`, returning `(name, value, 0-based line)`.
fn u8_consts(file: &ScannedFile, filter: impl Fn(&str) -> bool) -> Vec<(String, u8, usize)> {
    let mut out = Vec::new();
    for (idx, line) in file.masked_lines.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        let Some(at) = line.find("const ") else {
            continue;
        };
        let rest = &line[at + "const ".len()..];
        let name: String = rest
            .chars()
            .take_while(|&c| c.is_ascii_alphanumeric() || c == '_')
            .collect();
        if name.is_empty() || !filter(&name) {
            continue;
        }
        let Some(tail) = rest[name.len()..]
            .trim_start()
            .strip_prefix(':')
            .map(str::trim_start)
        else {
            continue;
        };
        let Some(assign) = tail.strip_prefix("u8").map(str::trim_start) else {
            continue;
        };
        let Some(value_str) = assign.strip_prefix('=').map(str::trim_start) else {
            continue;
        };
        let digits: String = value_str
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(v) = digits.parse::<u8>() {
            out.push((name, v, idx));
        }
    }
    out
}

/// Trailing `_V<n>` version of a constant name, if it has one.
fn version_suffix(name: &str) -> Option<u32> {
    let at = name.rfind("_V")?;
    let digits = &name[at + 2..];
    if digits.is_empty() || !digits.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Runs the conformance rules over the protocol source file.
pub fn check(file: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let push = |line: usize, rule: &str, message: String, findings: &mut Vec<Finding>| {
        findings.push(Finding {
            file: file.rel_path.clone(),
            line: line + 1,
            rule: rule.to_string(),
            message,
        });
    };

    let tags = u8_consts(file, |n| n.starts_with("TAG_"));
    if tags.is_empty() {
        push(
            0,
            "proto-structure",
            "no `const TAG_*: u8` frame-tag constants found; the conformance \
             pass has nothing to verify"
                .to_string(),
            &mut findings,
        );
        return findings;
    }

    // Tag values must be unique.
    for (i, (name, value, line)) in tags.iter().enumerate() {
        if let Some((other, _, _)) = tags[..i].iter().find(|(_, v, _)| v == value) {
            push(
                *line,
                "tag-duplicate",
                format!("frame tag {name} reuses wire value {value} of {other}"),
                &mut findings,
            );
        }
    }

    let encode_regions = fn_regions(file, &["encode", "encode_into"]);
    let decode_regions = fn_regions(file, &["decode"]);
    if encode_regions.is_empty() || decode_regions.is_empty() {
        push(
            0,
            "proto-structure",
            "could not locate encode/decode function bodies".to_string(),
            &mut findings,
        );
        return findings;
    }

    for (name, _, line) in &tags {
        if !appears_in(file, &encode_regions, name, *line) {
            push(
                *line,
                "tag-unencoded",
                format!("frame tag {name} is never written by an encode path"),
                &mut findings,
            );
        }
        if !appears_in(file, &decode_regions, name, *line) {
            push(
                *line,
                "tag-undecoded",
                format!("frame tag {name} has no decode match arm"),
                &mut findings,
            );
        }
    }

    // Codec-version markers: symmetric use plus a legacy-decode branch.
    let markers = u8_consts(file, |n| version_suffix(n).is_some_and(|v| v >= 2));
    for (name, _, line) in &markers {
        let enc = appears_in(file, &encode_regions, name, *line);
        let dec = appears_in(file, &decode_regions, name, *line);
        if !enc || !dec {
            push(
                *line,
                "version-asymmetric",
                format!(
                    "versioned-field marker {name} is referenced by {} only",
                    if enc {
                        "the encode path"
                    } else {
                        "the decode path"
                    }
                ),
                &mut findings,
            );
            continue;
        }
        if !has_legacy_arm(file, &decode_regions, name) {
            push(
                *line,
                "version-no-legacy",
                format!(
                    "versioned-field marker {name} decodes without a literal legacy-dialect \
                     arm; old frames would stop decoding"
                ),
                &mut findings,
            );
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new("core", "crates/core/src/proto.rs", src)
    }

    const GOOD: &str = "\
const TAG_REQUEST: u8 = 0;
const TAG_OFFER: u8 = 1;
const PLAN_MIRRORS_V2: u8 = 2;
impl Msg {
    pub fn encode(&self) -> Bytes {
        b.put_u8(TAG_REQUEST);
        b.put_u8(TAG_OFFER);
        b.put_u8(PLAN_MIRRORS_V2);
    }
    pub fn decode(buf: Bytes) -> Result<Self> {
        match get_u8(&mut buf)? {
            TAG_REQUEST => req(),
            TAG_OFFER => offer(),
            t => err(t),
        }
    }
}
fn decode_plan(buf: &mut Bytes) -> Result<Plan> {
    fn decode(buf: &mut Bytes) -> Result<Plan> {
        match get_u8(buf)? {
            0 => legacy_none(),
            1 => legacy_one(),
            PLAN_MIRRORS_V2 => current(),
            v => err(v),
        }
    }
    decode(buf)
}
";

    #[test]
    fn clean_protocol_passes() {
        let f = check(&scan(GOOD));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn duplicate_tag_values_are_flagged() {
        let src = GOOD.replace("const TAG_OFFER: u8 = 1;", "const TAG_OFFER: u8 = 0;");
        let f = check(&scan(&src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "tag-duplicate");
    }

    #[test]
    fn tag_without_decode_arm_is_flagged() {
        let src = GOOD.replace("TAG_OFFER => offer(),", "");
        let f = check(&scan(&src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "tag-undecoded");
        assert!(f[0].message.contains("TAG_OFFER"));
    }

    #[test]
    fn tag_without_encode_site_is_flagged() {
        let src = GOOD.replace("b.put_u8(TAG_OFFER);", "");
        let f = check(&scan(&src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "tag-unencoded");
    }

    #[test]
    fn versioned_marker_needs_both_sides() {
        let src = GOOD.replace("PLAN_MIRRORS_V2 => current(),", "");
        let f = check(&scan(&src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "version-asymmetric");
    }

    #[test]
    fn versioned_marker_needs_a_legacy_arm() {
        let src = GOOD
            .replace("0 => legacy_none(),", "")
            .replace("1 => legacy_one(),", "");
        let f = check(&scan(&src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "version-no-legacy");
    }

    #[test]
    fn missing_tag_constants_fail_structurally() {
        let f = check(&scan("fn encode() {} fn decode() {}"));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "proto-structure");
    }

    #[test]
    fn commented_out_arms_do_not_count() {
        let src = GOOD.replace(
            "TAG_OFFER => offer(),",
            "// TAG_OFFER => offer(), (disabled)",
        );
        let f = check(&scan(&src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "tag-undecoded");
    }
}
