//! Minimal shim for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! poison-free guard-returning API, implemented over `std::sync`.

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (a poisoned std lock is recovered transparently, matching
/// parking_lot's no-poisoning semantics).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
