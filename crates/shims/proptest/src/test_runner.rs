//! Test configuration and the deterministic RNG behind case generation.

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 128 }
    }
}

/// Deterministic splitmix64 generator seeded from the test name.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for a named test (stable across runs).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }
}
