//! Test configuration and the deterministic RNG behind case generation.

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    /// 128 cases, overridable at run time through the `PROPTEST_CASES`
    /// environment variable (mirroring real proptest): e.g.
    /// `PROPTEST_CASES=1000 cargo test` for a deeper sweep, or a small
    /// value for a quick smoke pass. Unparseable values fall back to
    /// the default.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|c| *c > 0)
            .unwrap_or(128);
        Config { cases }
    }
}

/// Deterministic splitmix64 generator seeded from the test name.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for a named test (stable across runs).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proptest_cases_env_var_overrides_the_default() {
        // The only test in this crate touching the variable, so no
        // parallel-test interference.
        std::env::set_var("PROPTEST_CASES", "7");
        assert_eq!(Config::default().cases, 7);
        std::env::set_var("PROPTEST_CASES", " 16 ");
        assert_eq!(Config::default().cases, 16);
        // Garbage and zero fall back to the stock 128.
        std::env::set_var("PROPTEST_CASES", "lots");
        assert_eq!(Config::default().cases, 128);
        std::env::set_var("PROPTEST_CASES", "0");
        assert_eq!(Config::default().cases, 128);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(Config::default().cases, 128);
    }
}
