//! `any::<T>()` — full-range strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full range of `T`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_ints {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, occasionally any scalar value.
        if rng.below(10) < 9 {
            (0x20 + rng.below(0x5f) as u32 as u8) as char
        } else {
            char::from_u32(rng.below(0x11_0000_u64) as u32).unwrap_or('\u{fffd}')
        }
    }
}
