//! String strategies from regex-like patterns.
//!
//! `&'static str` implements [`Strategy`] by interpreting the string as a
//! generation pattern, matching how real proptest treats string literals.
//! Supported syntax (the subset this workspace's tests use):
//!
//! * literals, `\\`-escaped metacharacters;
//! * `.` — a printable ASCII character;
//! * `[a-z09_]` — character classes with ranges and literals;
//! * `(foo|bar|\\()` — groups with alternation;
//! * `{n}`, `{m,n}`, `?`, `*`, `+` — quantifiers on the preceding atom.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Node {
    Lit(char),
    Any,
    Class(Vec<char>),
    Group(Vec<Vec<Quantified>>),
}

#[derive(Clone, Debug)]
struct Quantified {
    node: Node,
    min: u32,
    max: u32, // inclusive
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
            pattern,
        }
    }

    fn fail(&self, what: &str) -> ! {
        panic!("unsupported pattern {:?}: {what}", self.pattern)
    }

    fn parse_alternatives(&mut self, in_group: bool) -> Vec<Vec<Quantified>> {
        let mut alts = vec![Vec::new()];
        loop {
            match self.chars.peek().copied() {
                None => {
                    if in_group {
                        self.fail("unterminated group");
                    }
                    break;
                }
                Some(')') if in_group => {
                    self.chars.next();
                    break;
                }
                Some('|') => {
                    self.chars.next();
                    alts.push(Vec::new());
                }
                Some(_) => {
                    let q = self.parse_quantified();
                    alts.last_mut().unwrap().push(q);
                }
            }
        }
        alts
    }

    fn parse_quantified(&mut self) -> Quantified {
        let node = self.parse_atom();
        let (min, max) = self.parse_quantifier();
        Quantified { node, min, max }
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next() {
            Some('(') => Node::Group(self.parse_alternatives(true)),
            Some('[') => Node::Class(self.parse_class()),
            Some('.') => Node::Any,
            Some('\\') => match self.chars.next() {
                Some(c) => Node::Lit(c),
                None => self.fail("dangling escape"),
            },
            Some(c @ (')' | '|' | '{' | '}' | '?' | '*' | '+')) => {
                self.fail(&format!("unexpected {c:?}"))
            }
            Some(c) => Node::Lit(c),
            None => self.fail("empty atom"),
        }
    }

    fn parse_class(&mut self) -> Vec<char> {
        let mut items: Vec<char> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            match self.chars.next() {
                None => self.fail("unterminated class"),
                Some(']') => {
                    if let Some(p) = pending {
                        items.push(p);
                    }
                    break;
                }
                Some('\\') => {
                    if let Some(p) = pending.take() {
                        items.push(p);
                    }
                    match self.chars.next() {
                        Some(c) => pending = Some(c),
                        None => self.fail("dangling escape in class"),
                    }
                }
                Some('-') if pending.is_some() && self.chars.peek() != Some(&']') => {
                    let lo = pending.take().unwrap();
                    let hi = match self.chars.next() {
                        Some('\\') => self.chars.next().unwrap_or_else(|| self.fail("escape")),
                        Some(c) => c,
                        None => self.fail("unterminated range"),
                    };
                    if lo as u32 > hi as u32 {
                        self.fail("inverted class range");
                    }
                    for c in lo as u32..=hi as u32 {
                        if let Some(c) = char::from_u32(c) {
                            items.push(c);
                        }
                    }
                }
                Some(c) => {
                    if let Some(p) = pending.take() {
                        items.push(p);
                    }
                    pending = Some(c);
                }
            }
        }
        if items.is_empty() {
            self.fail("empty class");
        }
        items
    }

    fn parse_quantifier(&mut self) -> (u32, u32) {
        match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let min = self.parse_number();
                match self.chars.next() {
                    Some('}') => (min, min),
                    Some(',') => {
                        let max = self.parse_number();
                        match self.chars.next() {
                            Some('}') => (min, max),
                            _ => self.fail("unterminated quantifier"),
                        }
                    }
                    _ => self.fail("bad quantifier"),
                }
            }
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            Some('*') => {
                self.chars.next();
                (0, 8)
            }
            Some('+') => {
                self.chars.next();
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    fn parse_number(&mut self) -> u32 {
        let mut n: u32 = 0;
        let mut any = false;
        while let Some(c) = self.chars.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n * 10 + d;
                any = true;
                self.chars.next();
            } else {
                break;
            }
        }
        if !any {
            self.fail("expected number");
        }
        n
    }
}

fn sample_seq(seq: &[Quantified], rng: &mut TestRng, out: &mut String) {
    for q in seq {
        let span = u64::from(q.max - q.min) + 1;
        let n = q.min + rng.below(span) as u32;
        for _ in 0..n {
            sample_node(&q.node, rng, out);
        }
    }
}

fn sample_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Any => out.push((0x20 + rng.below(0x5f) as u8) as char),
        Node::Class(items) => out.push(items[rng.range_usize(0, items.len())]),
        Node::Group(alts) => {
            let alt = &alts[rng.range_usize(0, alts.len())];
            sample_seq(alt, rng, out);
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut p = Parser::new(self);
        let alts = p.parse_alternatives(false);
        let mut out = String::new();
        let alt = &alts[rng.range_usize(0, alts.len())];
        sample_seq(alt, rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    fn gen(pattern: &'static str) -> String {
        let mut rng = TestRng::for_test(pattern);
        pattern.generate(&mut rng)
    }

    #[test]
    fn classes_and_counts() {
        for _ in 0..10 {
            let s = gen("[a-z]{2}_[A-Z]{2}");
            assert_eq!(s.len(), 5);
            assert_eq!(s.as_bytes()[2], b'_');
        }
    }

    #[test]
    fn bounded_repeats() {
        let mut rng = TestRng::for_test("r");
        for _ in 0..50 {
            let s = "[ab%_]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| "ab%_".contains(c)));
        }
    }

    #[test]
    fn alternation_with_escapes() {
        let mut rng = TestRng::for_test("alt");
        for _ in 0..50 {
            let s = "(SELECT|\\(|\\)|\\*|\\$p){0,4}".generate(&mut rng);
            let _ = s; // must not panic
        }
    }

    #[test]
    fn dot_is_printable() {
        let s = gen(".{0,120}");
        assert!(s.chars().all(|c| (' '..='~').contains(&c)));
    }
}
