//! Minimal shim for `proptest`: enough of the strategy combinators,
//! regex-like string generators, and the `proptest!` macro for this
//! workspace's property tests to build and run without crates.io access.
//!
//! Semantics differences from real proptest: no shrinking, no failure
//! persistence, and deterministic per-test seeding (each named test uses
//! a fixed seed derived from its name, so runs are reproducible).

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Prelude matching the subset of `proptest::prelude` this workspace
/// imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests: each function runs its body for every
/// generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    let run = || { $body };
                    let _ = case;
                    run();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Chooses uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}
