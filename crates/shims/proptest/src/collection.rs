//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of collection sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Generates `Vec`s of values from `element`, with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.range_usize(self.size.lo, self.size.hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
