//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.range_usize(0, self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )+
    };
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
