//! Minimal shim for `rand`: a seedable splitmix64 generator behind the
//! `Rng`/`SeedableRng` trait names this workspace uses. Not
//! cryptographic — deterministic simulation only.

/// Core random generator operations.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods.
pub trait Rng: RngCore {
    /// Bernoulli sample with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 high bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        f < p
    }

    /// Uniform sample from `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_roughly_uniform() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let hits_a = (0..1000).filter(|_| a.gen_bool(0.5)).count();
        let hits_b = (0..1000).filter(|_| b.gen_bool(0.5)).count();
        assert_eq!(hits_a, hits_b);
        assert!(hits_a > 400 && hits_a < 600, "hits={hits_a}");
    }
}
