//! Minimal, API-compatible shim for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the subset of `bytes` it actually uses: [`Bytes`] (a cheaply
//! cloneable, sliceable byte buffer), [`BytesMut`] (a growable builder),
//! and the [`Buf`]/[`BufMut`] cursor traits with little-endian accessors.

use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
///
/// Clones share the underlying allocation; [`Bytes::slice`] and
/// [`Bytes::split_to`] are O(1). The buffer is held as `Arc<Vec<u8>>`
/// rather than `Arc<[u8]>` so `From<Vec<u8>>` (and therefore
/// [`BytesMut::freeze`]) adopts the vector's allocation instead of
/// copying it — every frame encode and image assembly in the workspace
/// goes through that conversion, and at fleet scale the extra copy onto
/// freshly faulted pages dominated upgrade wall time.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice without copying semantics that matter
    /// here (the shim copies once into a shared allocation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a slice of self for the provided range (O(1), shared
    /// allocation).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds (len {len})"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` advances past
    /// them.
    ///
    /// # Panics
    ///
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to {at} out of bounds (len {})",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "… ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for building frames.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Freezes the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte buffer with little-endian accessors.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut buf = [0u8; 2];
        buf.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(buf)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(buf)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(buf)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance {cnt} out of bounds (len {})",
            self.len()
        );
        self.start += cnt;
    }
}

/// Write cursor with little-endian writers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, n: i8) {
        self.put_u8(n as u8);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, n: u16) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, n: i64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, n: f64) {
        self.put_u64_le(n.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_and_split_share_data() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.slice(1..4), Bytes::from(vec![2, 3, 4]));
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(head, Bytes::from(vec![1, 2]));
        assert_eq!(rest, Bytes::from(vec![3, 4, 5]));
    }

    #[test]
    fn buf_roundtrip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16_le(300);
        m.put_u32_le(70_000);
        m.put_u64_le(1 << 40);
        m.put_i64_le(-42);
        m.put_slice(b"xy");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b, Bytes::from_static(b"xy"));
    }
}
