//! Minimal shim for `crossbeam`: the `channel` module with `Sync`
//! unbounded channels, implemented over `std::sync::mpsc` (the receiver
//! is wrapped in a mutex to regain `Sync`).

/// Multi-producer channels whose receiver is shareable across threads.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::Mutex;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Mutex::new(rx),
            },
        )
    }

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails when the receiver is gone.
        ///
        /// # Errors
        ///
        /// [`SendError`] when the channel is disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// Receiving half of an unbounded channel (`Sync`, unlike
    /// `std::sync::mpsc::Receiver`).
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: Mutex<mpsc::Receiver<T>>,
    }

    impl<T> Receiver<T> {
        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is queued,
        /// [`TryRecvError::Disconnected`] when all senders are gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .try_recv()
        }

        /// Receives, waiting at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .recv_timeout(timeout)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        drop(tx);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }
}
