//! Minimal shim for `criterion`: the `Criterion` / benchmark-group /
//! `Bencher` API shape over a simple wall-clock timing loop. It reports
//! median per-iteration time to stdout; it does not do statistical
//! analysis. Enough for `cargo bench` targets written against criterion
//! to build and produce useful numbers in a no-network environment.

use std::fmt;
use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_bench(name, 10, f);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, f);
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label (accepts `BenchmarkId` and strings).
pub trait IntoBenchmarkId {
    /// The label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording per-iteration wall-clock time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate iteration count so one sample takes ≳1ms.
        let start = Instant::now();
        let _ = std::hint::black_box(routine());
        let once = start.elapsed().as_secs_f64().max(1e-9);
        self.iters_per_sample = ((1e-3 / once) as u64).clamp(1, 10_000);

        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            let _ = std::hint::black_box(routine());
        }
        let total = start.elapsed().as_secs_f64();
        self.samples.push(total / self.iters_per_sample as f64);
    }
}

/// Prevents the optimizer from eliding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("  {label:<48} (no samples)");
        return;
    }
    b.samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = b.samples[b.samples.len() / 2];
    println!("  {label:<48} {}", format_time(median));
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>10.1} ns/iter", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>10.2} µs/iter", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>10.2} ms/iter", secs * 1e3)
    } else {
        format!("{secs:>10.2} s/iter")
    }
}

/// Declares the benchmark functions run by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $config;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` for a criterion bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
