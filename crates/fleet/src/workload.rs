//! A small OLTP-style workload used to demonstrate zero-downtime driver
//! upgrades under load (the examples and benches drive it through
//! bootloader-managed connections).

use driverkit::{Connection, DkResult};
use minidb::Value;

/// Creates the workload table (idempotent).
///
/// # Errors
///
/// Database errors other than "already exists".
pub fn setup(conn: &mut dyn Connection) -> DkResult<()> {
    match conn.execute("CREATE TABLE orders (id INTEGER PRIMARY KEY, qty INTEGER, status VARCHAR)")
    {
        Ok(_) => Ok(()),
        Err(e) if e.to_string().contains("already exists") => Ok(()),
        Err(e) => Err(e),
    }
}

/// Runs one order-processing transaction: insert, update, read back.
///
/// # Errors
///
/// Database or revocation errors; on failure an open transaction is
/// rolled back best-effort.
pub fn run_txn(conn: &mut dyn Connection, order_id: i64) -> DkResult<i64> {
    conn.begin()?;
    let work = (|| {
        conn.execute(&format!(
            "INSERT INTO orders VALUES ({order_id}, {}, 'new')",
            order_id % 7 + 1
        ))?;
        conn.execute(&format!(
            "UPDATE orders SET status = 'shipped' WHERE id = {order_id}"
        ))?;
        let rs = conn
            .execute(&format!("SELECT qty FROM orders WHERE id = {order_id}"))?
            .rows()
            .map_err(driverkit::DkError::Db)?;
        Ok(match rs.rows.first().map(|r| r[0].clone()) {
            Some(Value::Integer(q)) | Some(Value::BigInt(q)) => q,
            _ => 0,
        })
    })();
    match work {
        Ok(q) => {
            conn.commit()?;
            Ok(q)
        }
        Err(e) => {
            let _ = conn.rollback();
            Err(e)
        }
    }
}

/// Total orders visible (verification probe).
///
/// # Errors
///
/// Database errors.
pub fn count_orders(conn: &mut dyn Connection) -> DkResult<i64> {
    let rs = conn
        .execute("SELECT count(*) FROM orders")?
        .rows()
        .map_err(driverkit::DkError::Db)?;
    Ok(rs.rows[0][0].as_i64().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use driverkit::{legacy_driver, ConnectProps, DbUrl};
    use minidb::wire::DbServer;
    use minidb::MiniDb;
    use netsim::{Addr, Network};
    use std::sync::Arc;

    #[test]
    fn workload_runs_through_a_driver() {
        let net = Network::new();
        let db = Arc::new(MiniDb::new("shop"));
        net.bind_arc(Addr::new("db", 5432), Arc::new(DbServer::new(db)))
            .unwrap();
        let d = legacy_driver(&net, &Addr::new("app", 1), 1).unwrap();
        let mut conn = d
            .connect(
                &DbUrl::direct(Addr::new("db", 5432), "shop"),
                &ConnectProps::user("admin", "admin"),
            )
            .unwrap();
        setup(conn.as_mut()).unwrap();
        setup(conn.as_mut()).unwrap(); // idempotent
        for i in 0..5 {
            run_txn(conn.as_mut(), i).unwrap();
        }
        assert_eq!(count_orders(conn.as_mut()).unwrap(), 5);
    }

    #[test]
    fn failed_txn_rolls_back() {
        let net = Network::new();
        let db = Arc::new(MiniDb::new("shop"));
        net.bind_arc(Addr::new("db", 5432), Arc::new(DbServer::new(db)))
            .unwrap();
        let d = legacy_driver(&net, &Addr::new("app", 1), 1).unwrap();
        let mut conn = d
            .connect(
                &DbUrl::direct(Addr::new("db", 5432), "shop"),
                &ConnectProps::user("admin", "admin"),
            )
            .unwrap();
        setup(conn.as_mut()).unwrap();
        run_txn(conn.as_mut(), 1).unwrap();
        // Duplicate key: the transaction must roll back cleanly.
        assert!(run_txn(conn.as_mut(), 1).is_err());
        assert!(!conn.in_transaction());
        assert_eq!(count_orders(conn.as_mut()).unwrap(), 1);
    }
}
