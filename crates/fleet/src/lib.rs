//! # fleet — operational fleet simulation
//!
//! The paper's quantitative claims are operational: driver updates cost
//! ten error-prone steps per client application in the conventional
//! lifecycle versus one INSERT with Drivolution (§2, §3.2, Table 5).
//! This crate makes those claims executable:
//!
//! * [`ops`] — the lifecycles as step lists with durations, downtime,
//!   and retry risk;
//! * [`model`] — fleets (machines × platforms × applications ×
//!   databases) and the driver-matrix blow-up of §1;
//! * [`report`] — regenerates Table 5 and fleet-wide comparisons;
//! * [`sim`] — a live fleet of real bootloaders against a real
//!   Drivolution server under virtual time, measuring upgrade propagation
//!   and server traffic versus lease length (§3.2's tradeoff);
//! * [`workload`] — an OLTP-ish workload to demonstrate zero-downtime
//!   upgrades under load;
//! * [`load`] — a scheduler-driven steady-load harness whose
//!   dropped/severed ledger proves (or disproves) that an upgrade was
//!   invisible to the application.

#![warn(missing_docs)]

pub mod aggregator;
pub mod load;
pub mod model;
pub mod ops;
pub mod report;
pub mod sim;
pub mod workload;

pub use aggregator::{AggregatorStats, RenewalAggregator};
pub use load::{LoadStats, SteadyLoad};
pub use model::{AppSpec, FleetSpec};
pub use ops::{OpStep, Procedure};
pub use report::{
    fleet_install_report, fleet_update_report, render_fleet_update, render_table5, table5,
    FleetInstallReport, FleetUpdateReport, OpsRow,
};
pub use sim::{FleetSim, PropagationResult, DEFAULT_POLL_EVERY};
