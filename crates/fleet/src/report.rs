//! Report generation: regenerates the paper's Table 5 and the scaling
//! comparisons of §2 vs §3.2 as printable tables.

use std::fmt::Write as _;

use crate::model::FleetSpec;
use crate::ops::{
    drv_driver_update, drv_initial_install, sota_driver_update, sota_initial_install,
    table5_drv_access_new_db, table5_drv_driver_upgrade, table5_sota_access_new_db,
    table5_sota_driver_upgrade, Procedure,
};

/// One row of an operations comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpsRow {
    /// Task description.
    pub task: String,
    /// Steps with the conventional lifecycle.
    pub sota_steps: usize,
    /// Steps with Drivolution.
    pub drv_steps: usize,
}

/// The paper's Table 5 for `n_dbas` administrators.
pub fn table5(n_dbas: usize) -> Vec<OpsRow> {
    vec![
        OpsRow {
            task: format!("Accessing a new database ({n_dbas} DBAs)"),
            sota_steps: table5_sota_access_new_db().step_count() * n_dbas,
            drv_steps: table5_drv_access_new_db().step_count() * n_dbas,
        },
        OpsRow {
            task: format!("Database driver upgrade ({n_dbas} DBAs)"),
            sota_steps: table5_sota_driver_upgrade().step_count() * n_dbas,
            drv_steps: table5_drv_driver_upgrade().step_count(),
        },
    ]
}

/// Renders Table 5 in the paper's layout.
pub fn render_table5(n_dbas: usize) -> String {
    let rows = table5(n_dbas);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 5. Driver upgrades in a heterogeneous database for {n_dbas} DBAs"
    );
    let _ = writeln!(
        out,
        "{:<44} {:>22} {:>12}",
        "Task", "Current State-of-the-Art", "Drivolution"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<44} {:>16} steps {:>6} steps",
            r.task, r.sota_steps, r.drv_steps
        );
    }
    out
}

/// Fleet-wide totals for one full driver update.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetUpdateReport {
    /// Applications updated.
    pub apps: usize,
    /// Total steps, conventional lifecycle (10 × installations).
    pub sota_steps: usize,
    /// Total steps, Drivolution (1, at the server).
    pub drv_steps: usize,
    /// Expected step executions including retries, conventional.
    pub sota_expected_executions: f64,
    /// Summed application downtime (virtual ms), conventional.
    pub sota_downtime_ms: u64,
    /// Summed application downtime, Drivolution (hot swap ⇒ none).
    pub drv_downtime_ms: u64,
    /// Operator wall time, conventional (sequential, virtual ms).
    pub sota_wall_ms: u64,
    /// Operator wall time, Drivolution.
    pub drv_wall_ms: u64,
}

/// Computes the fleet-wide cost of one driver update both ways.
pub fn fleet_update_report(fleet: &FleetSpec) -> FleetUpdateReport {
    let per_app: Procedure = sota_driver_update();
    let installs = fleet.installation_count();
    let drv: Procedure = drv_driver_update();
    FleetUpdateReport {
        apps: fleet.app_count(),
        sota_steps: per_app.step_count() * installs,
        drv_steps: drv.step_count(),
        sota_expected_executions: per_app.expected_executions() * installs as f64,
        sota_downtime_ms: per_app.downtime_ms() * installs as u64,
        drv_downtime_ms: 0,
        sota_wall_ms: per_app.duration_ms() * installs as u64,
        drv_wall_ms: drv.duration_ms(),
    }
}

/// Initial-deployment totals (steps 1–7 vs the 4-step bootloader
/// install).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetInstallReport {
    /// Applications deployed.
    pub apps: usize,
    /// Total steps, conventional (7 × installations).
    pub sota_steps: usize,
    /// Total steps, Drivolution (4 × machines — the bootloader is
    /// per-machine, not per-database).
    pub drv_steps: usize,
}

/// Computes initial-deployment step totals.
pub fn fleet_install_report(fleet: &FleetSpec) -> FleetInstallReport {
    FleetInstallReport {
        apps: fleet.app_count(),
        sota_steps: sota_initial_install().step_count() * fleet.installation_count(),
        drv_steps: drv_initial_install().step_count() * fleet.app_count(),
    }
}

/// Renders the fleet update report.
pub fn render_fleet_update(fleet: &FleetSpec) -> String {
    let r = fleet_update_report(fleet);
    let mut out = String::new();
    let _ = writeln!(out, "Fleet driver update: {} applications", r.apps);
    let _ = writeln!(
        out,
        "  steps              : {:>8} (state of the art) vs {:>3} (drivolution)",
        r.sota_steps, r.drv_steps
    );
    let _ = writeln!(
        out,
        "  expected w/ retries: {:>8.1} vs {:>3}",
        r.sota_expected_executions, r.drv_steps
    );
    let _ = writeln!(
        out,
        "  app downtime       : {:>7}m vs {:>3}m",
        r.sota_downtime_ms / 60_000,
        r.drv_downtime_ms / 60_000
    );
    let _ = writeln!(
        out,
        "  operator wall time : {:>7}m vs {:>3}m",
        r.sota_wall_ms / 60_000,
        r.drv_wall_ms / 60_000
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_matches_paper_for_two_dbas() {
        let rows = table5(2);
        assert_eq!(rows[0].sota_steps, 6);
        assert_eq!(rows[0].drv_steps, 2);
        assert_eq!(rows[1].sota_steps, 6);
        assert_eq!(rows[1].drv_steps, 2);
        let rendered = render_table5(2);
        assert!(rendered.contains("Accessing a new database"));
        assert!(rendered.contains("Drivolution"));
    }

    #[test]
    fn drivolution_steps_do_not_scale_with_dbas_for_upgrades() {
        assert_eq!(table5(2)[1].drv_steps, table5(50)[1].drv_steps);
        assert!(table5(50)[1].sota_steps > table5(2)[1].sota_steps);
    }

    #[test]
    fn fleet_reports_scale_with_installations() {
        let fleet = FleetSpec::hosting_center(100, &["php", "ruby"], 10, 2);
        let r = fleet_update_report(&fleet);
        assert_eq!(r.sota_steps, 9 * 200);
        assert_eq!(r.drv_steps, 1);
        assert_eq!(r.drv_downtime_ms, 0);
        assert!(r.sota_downtime_ms > 0);
        assert!(r.sota_expected_executions > r.sota_steps as f64);
        let i = fleet_install_report(&fleet);
        assert_eq!(i.sota_steps, 7 * 200);
        assert_eq!(i.drv_steps, 4 * 100);
    }

    #[test]
    fn render_is_humane() {
        let fleet = FleetSpec::hosting_center(10, &["php"], 2, 1);
        let s = render_fleet_update(&fleet);
        assert!(s.contains("10 applications"));
        assert!(s.contains("drivolution"));
    }
}
