//! Fleet description: machines × platforms × applications × databases.
//!
//! Used to quantify the paper's §1 motivation: "upgrading database
//! drivers on DBMS clients easily becomes a more complex problem than
//! upgrading the database itself, because it needs to take into account
//! the Cartesian product of the set of drivers and the set of databases
//! running in the organization."

use std::collections::BTreeSet;

/// One client application deployment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppSpec {
    /// Host the application runs on.
    pub host: String,
    /// Platform string (drivers are platform-specific).
    pub platform: String,
    /// Databases this application talks to.
    pub databases: Vec<String>,
}

/// A whole deployment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetSpec {
    /// All applications.
    pub apps: Vec<AppSpec>,
}

impl FleetSpec {
    /// An empty fleet.
    pub fn new() -> Self {
        FleetSpec::default()
    }

    /// Adds an application.
    pub fn with_app(
        mut self,
        host: impl Into<String>,
        platform: impl Into<String>,
        databases: &[&str],
    ) -> Self {
        self.apps.push(AppSpec {
            host: host.into(),
            platform: platform.into(),
            databases: databases.iter().map(|d| d.to_string()).collect(),
        });
        self
    }

    /// A synthetic hosting-center fleet in the spirit of the paper's Pair
    /// Networks example: `hosts` web servers over `platforms`, each
    /// touching `dbs_per_app` of `databases` databases.
    pub fn hosting_center(
        hosts: usize,
        platforms: &[&str],
        databases: usize,
        dbs_per_app: usize,
    ) -> Self {
        let mut fleet = FleetSpec::new();
        for h in 0..hosts {
            let platform = platforms[h % platforms.len()];
            let dbs: Vec<String> = (0..dbs_per_app)
                .map(|k| format!("db{}", (h + k) % databases))
                .collect();
            let db_refs: Vec<&str> = dbs.iter().map(String::as_str).collect();
            fleet = fleet.with_app(format!("web{h:03}"), platform, &db_refs);
        }
        fleet
    }

    /// Number of applications.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Distinct platforms in use.
    pub fn platforms(&self) -> Vec<String> {
        let set: BTreeSet<String> = self.apps.iter().map(|a| a.platform.clone()).collect();
        set.into_iter().collect()
    }

    /// Distinct databases in use.
    pub fn databases(&self) -> Vec<String> {
        let set: BTreeSet<String> = self
            .apps
            .iter()
            .flat_map(|a| a.databases.iter().cloned())
            .collect();
        set.into_iter().collect()
    }

    /// Size of the driver matrix the operations staff must manage by
    /// hand: distinct (platform, database) pairs actually deployed.
    pub fn driver_matrix_size(&self) -> usize {
        let set: BTreeSet<(String, String)> = self
            .apps
            .iter()
            .flat_map(|a| {
                a.databases
                    .iter()
                    .map(move |d| (a.platform.clone(), d.clone()))
            })
            .collect();
        set.len()
    }

    /// Number of driver *installations* (application × database): what
    /// the 10-step state-of-the-art update is multiplied by.
    pub fn installation_count(&self) -> usize {
        self.apps.iter().map(|a| a.databases.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hosting_center_shapes() {
        let f = FleetSpec::hosting_center(500, &["php", "ruby", "perl"], 100, 2);
        assert_eq!(f.app_count(), 500);
        assert_eq!(f.platforms().len(), 3);
        assert_eq!(f.databases().len(), 100);
        assert_eq!(f.installation_count(), 1000);
        assert!(f.driver_matrix_size() <= 300);
        assert!(f.driver_matrix_size() >= 100);
    }

    #[test]
    fn manual_fleet() {
        let f = FleetSpec::new()
            .with_app("console1", "windows-i586", &["orders", "hr"])
            .with_app("console2", "linux-x86_64", &["orders"]);
        assert_eq!(f.app_count(), 2);
        assert_eq!(f.installation_count(), 3);
        assert_eq!(f.driver_matrix_size(), 3);
        assert_eq!(f.databases(), vec!["hr".to_string(), "orders".to_string()]);
    }
}
