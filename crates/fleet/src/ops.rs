//! Operational procedures as executable step lists — the quantitative
//! substance behind the paper's §2 lifecycle, §3.2 comparison, and
//! Table 5.
//!
//! Every step carries a nominal duration and whether the application is
//! down while it runs, so procedures yield step counts, wall time, and
//! downtime. Durations are calibration constants (minutes-scale ops work,
//! encoded in virtual milliseconds), not measurements.

use std::fmt;

/// One operator or system step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpStep {
    /// §2 step 1: get an appropriate driver package from the vendor.
    DownloadDriver,
    /// §2 step 2: install the driver on the client machine.
    InstallDriver,
    /// §2 step 3: configure the application to use the driver.
    ConfigureApp,
    /// §2 step 4: start the application and load the driver.
    StartAppLoadDriver,
    /// §2 step 5: connect and check protocol compatibility.
    ConnectCheck,
    /// §2 step 6: authenticate.
    Authenticate,
    /// §2 step 7: execute requests (verification probe).
    ExecuteRequests,
    /// §2 step 8: stop the application.
    StopApp,
    /// §2 step 9: uninstall the old driver.
    UninstallOldDriver,
    /// Drivolution: install the bootloader package (once per machine).
    InstallBootloader,
    /// Drivolution: point the application at the bootloader.
    ConfigureBootloader,
    /// Drivolution: start the application (driver arrives by itself).
    StartApp,
    /// Drivolution server-side: INSERT the new driver row.
    InsertDriverRow,
    /// Drivolution server-side: revoke/expire the old driver.
    RevokeOldDriver,
    /// DBA console: copy the right driver for this platform.
    CopyDriverForPlatform,
    /// DBA console: remove the old driver.
    RemoveOldDriver,
    /// DBA console: restart after a driver change.
    RestartConsole,
    /// DBA console: connect to the database.
    ConnectToDb,
}

impl OpStep {
    /// Nominal duration in milliseconds of simulated operator time.
    pub fn duration_ms(self) -> u64 {
        match self {
            OpStep::DownloadDriver => 300_000, // find + fetch the right package
            OpStep::InstallDriver => 180_000,
            OpStep::ConfigureApp => 300_000,
            OpStep::StartAppLoadDriver => 60_000,
            OpStep::ConnectCheck => 30_000,
            OpStep::Authenticate => 30_000,
            OpStep::ExecuteRequests => 60_000,
            OpStep::StopApp => 30_000,
            OpStep::UninstallOldDriver => 120_000,
            OpStep::InstallBootloader => 180_000,
            OpStep::ConfigureBootloader => 120_000,
            OpStep::StartApp => 60_000,
            OpStep::InsertDriverRow => 30_000,
            OpStep::RevokeOldDriver => 30_000,
            OpStep::CopyDriverForPlatform => 180_000,
            OpStep::RemoveOldDriver => 60_000,
            OpStep::RestartConsole => 60_000,
            OpStep::ConnectToDb => 30_000,
        }
    }

    /// Whether the application/console is unavailable during this step.
    pub fn is_disruptive(self) -> bool {
        matches!(
            self,
            OpStep::StopApp
                | OpStep::UninstallOldDriver
                | OpStep::InstallDriver
                | OpStep::ConfigureApp
                | OpStep::StartAppLoadDriver
                | OpStep::RestartConsole
        )
    }

    /// Probability (per execution) that this step fails and must be
    /// redone — the paper's "error prone" manual process (§2). Only
    /// manual steps carry risk.
    pub fn error_prob(self) -> f64 {
        match self {
            OpStep::DownloadDriver => 0.10, // wrong version/platform
            OpStep::InstallDriver => 0.05,
            OpStep::ConfigureApp => 0.10,
            OpStep::CopyDriverForPlatform => 0.10,
            OpStep::ConfigureBootloader => 0.05,
            _ => 0.0,
        }
    }
}

impl fmt::Display for OpStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpStep::DownloadDriver => "download driver package",
            OpStep::InstallDriver => "install driver",
            OpStep::ConfigureApp => "configure application",
            OpStep::StartAppLoadDriver => "start application / load driver",
            OpStep::ConnectCheck => "connect / check protocol",
            OpStep::Authenticate => "authenticate",
            OpStep::ExecuteRequests => "execute requests",
            OpStep::StopApp => "stop application",
            OpStep::UninstallOldDriver => "uninstall old driver",
            OpStep::InstallBootloader => "install bootloader",
            OpStep::ConfigureBootloader => "configure bootloader",
            OpStep::StartApp => "start application",
            OpStep::InsertDriverRow => "insert driver in database",
            OpStep::RevokeOldDriver => "revoke old driver",
            OpStep::CopyDriverForPlatform => "copy driver for platform",
            OpStep::RemoveOldDriver => "remove old driver",
            OpStep::RestartConsole => "restart console",
            OpStep::ConnectToDb => "connect to db",
        };
        f.write_str(s)
    }
}

/// A named sequence of steps.
#[derive(Clone, Debug, PartialEq)]
pub struct Procedure {
    name: String,
    steps: Vec<OpStep>,
}

impl Procedure {
    /// Creates a procedure.
    pub fn new(name: impl Into<String>, steps: Vec<OpStep>) -> Self {
        Procedure {
            name: name.into(),
            steps,
        }
    }

    /// Procedure name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The steps.
    pub fn steps(&self) -> &[OpStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Total nominal wall time.
    pub fn duration_ms(&self) -> u64 {
        self.steps.iter().map(|s| s.duration_ms()).sum()
    }

    /// Time during which the application is unavailable.
    pub fn downtime_ms(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| s.is_disruptive())
            .map(|s| s.duration_ms())
            .sum()
    }

    /// Expected number of step executions including retries
    /// (`1 / (1 - p)` per step, independent failures).
    pub fn expected_executions(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| 1.0 / (1.0 - s.error_prob()))
            .sum()
    }

    /// Concatenates procedures.
    pub fn then(mut self, other: &Procedure) -> Procedure {
        self.steps.extend_from_slice(&other.steps);
        self
    }
}

/// §2's state-of-the-art initial lifecycle: steps 1–7.
pub fn sota_initial_install() -> Procedure {
    Procedure::new(
        "state-of-the-art initial install",
        vec![
            OpStep::DownloadDriver,
            OpStep::InstallDriver,
            OpStep::ConfigureApp,
            OpStep::StartAppLoadDriver,
            OpStep::ConnectCheck,
            OpStep::Authenticate,
            OpStep::ExecuteRequests,
        ],
    )
}

/// §2's driver update: "Stop the application; Uninstall old driver;
/// Repeat steps 1 through 7".
///
/// The paper's numbering makes this "ten steps per client application"
/// (steps 8, 9, and 10, where step 10 repeats the seven install steps);
/// executed atomically it is 2 + 7 = 9 steps. [`PAPER_SOTA_UPDATE_STEPS`]
/// carries the paper's headline number.
pub fn sota_driver_update() -> Procedure {
    Procedure::new(
        "state-of-the-art driver update",
        vec![OpStep::StopApp, OpStep::UninstallOldDriver],
    )
    .then(&sota_initial_install())
}

/// The paper's headline count for the conventional update ("The upgrade
/// process drops from ten steps per client application to one simple
/// insert operation", §3.2): list items 8–10 with step 10 standing for
/// the seven repeated install steps.
pub const PAPER_SOTA_UPDATE_STEPS: usize = 10;

/// §3.2's Drivolution lifecycle: four steps, once per client machine.
pub fn drv_initial_install() -> Procedure {
    Procedure::new(
        "drivolution initial install",
        vec![
            OpStep::DownloadDriver, // the bootloader package, once
            OpStep::InstallBootloader,
            OpStep::ConfigureBootloader,
            OpStep::StartApp,
        ],
    )
}

/// §3.2's Drivolution driver update: "all clients can be upgraded in a
/// single step: Add new driver to the Drivolution Server".
pub fn drv_driver_update() -> Procedure {
    Procedure::new("drivolution driver update", vec![OpStep::InsertDriverRow])
}

/// Table 5, top row, per DBA: access a new database (state of the art).
pub fn table5_sota_access_new_db() -> Procedure {
    Procedure::new(
        "access new database (state of the art, per DBA)",
        vec![
            OpStep::DownloadDriver,
            OpStep::ConfigureApp,
            OpStep::ConnectToDb,
        ],
    )
}

/// Table 5, top row, per DBA: access a new database (Drivolution).
pub fn table5_drv_access_new_db() -> Procedure {
    Procedure::new(
        "access new database (drivolution, per DBA)",
        vec![OpStep::ConnectToDb],
    )
}

/// Table 5, bottom row, per DBA: database driver upgrade (state of the
/// art).
pub fn table5_sota_driver_upgrade() -> Procedure {
    Procedure::new(
        "database driver upgrade (state of the art, per DBA)",
        vec![
            OpStep::CopyDriverForPlatform,
            OpStep::RemoveOldDriver,
            OpStep::RestartConsole,
        ],
    )
}

/// Table 5, bottom row: database driver upgrade (Drivolution) — two
/// server-side steps total, regardless of DBA count.
pub fn table5_drv_driver_upgrade() -> Procedure {
    Procedure::new(
        "database driver upgrade (drivolution, total)",
        vec![OpStep::InsertDriverRow, OpStep::RevokeOldDriver],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sota_update_counts_match_the_paper() {
        // Executed steps: stop + uninstall + the seven install steps.
        assert_eq!(sota_driver_update().step_count(), 9);
        // The paper's numbering counts ten list items.
        assert_eq!(PAPER_SOTA_UPDATE_STEPS, 10);
        assert_eq!(sota_initial_install().step_count(), 7);
    }

    #[test]
    fn drivolution_lifecycle_counts_match_section_3_2() {
        assert_eq!(drv_initial_install().step_count(), 4);
        assert_eq!(drv_driver_update().step_count(), 1);
    }

    #[test]
    fn table5_counts_match_the_paper() {
        // Table 5 with 2 DBAs: 6 vs 2 steps for access; 6 vs 2 for
        // upgrade.
        assert_eq!(table5_sota_access_new_db().step_count() * 2, 6);
        assert_eq!(table5_drv_access_new_db().step_count() * 2, 2);
        assert_eq!(table5_sota_driver_upgrade().step_count() * 2, 6);
        assert_eq!(table5_drv_driver_upgrade().step_count(), 2);
    }

    #[test]
    fn drivolution_update_has_zero_downtime() {
        assert_eq!(drv_driver_update().downtime_ms(), 0);
        assert!(sota_driver_update().downtime_ms() > 0);
    }

    #[test]
    fn expected_executions_exceed_steps_for_error_prone_procedures() {
        let p = sota_driver_update();
        assert!(p.expected_executions() > p.step_count() as f64);
        // The single-insert Drivolution update carries no retry risk.
        let d = drv_driver_update();
        assert_eq!(d.expected_executions(), d.step_count() as f64);
    }

    #[test]
    fn durations_accumulate() {
        let p = Procedure::new("x", vec![OpStep::StopApp, OpStep::StartApp]);
        assert_eq!(p.duration_ms(), 30_000 + 60_000);
        assert_eq!(p.downtime_ms(), 30_000);
    }

    #[test]
    fn step_display_is_readable() {
        assert_eq!(
            OpStep::InsertDriverRow.to_string(),
            "insert driver in database"
        );
    }
}
