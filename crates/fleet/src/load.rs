//! Steady OLTP load over bootloader-managed connections, driven by the
//! network scheduler. This is the measuring instrument of the hot-swap
//! benchmarks: each client holds one long-lived [`ManagedConnection`]
//! and runs [`crate::workload`] transactions on its own cadence, and the
//! ledger classifies every failure the application would have seen —
//! dropped queries, severed transactions, forced reconnects. A fleet
//! upgrading with zero impact shows a clean ledger; a fleet upgrading by
//! closing connections does not.

use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;

use netsim::{Network, TaskControl, TaskHandle};

use driverkit::{ConnectProps, Connection, DbUrl, DkResult};
use drivolution_bootloader::{Bootloader, ManagedConnection};

use crate::workload;

/// The application-visible outcome ledger of a steady-load run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Load-task firings (each attempts one unit of work).
    pub attempted: u64,
    /// Transactions committed successfully.
    pub committed: u64,
    /// Work units that failed — the queries the application lost.
    pub dropped_queries: u64,
    /// Failures that cut down a transaction that was already open
    /// (work in flight lost, not just a statement).
    pub severed_transactions: u64,
    /// Connections the application had to re-establish after its
    /// previous one was closed under it.
    pub reconnects: u64,
}

struct ClientSlot {
    client: Arc<Bootloader>,
    conn: Option<ManagedConnection>,
    /// Monotonic per-client work counter (also the order-id seed).
    seq: u64,
    /// True once this client has connected at least once, so later
    /// connects count as reconnects rather than bootstrap.
    ever_connected: bool,
    /// True while a held (multi-firing) transaction is open.
    held_open: bool,
    /// Order id of the held transaction in flight.
    held_id: i64,
    /// Phase of the held transaction (0 = begin+insert, 1 = update,
    /// 2 = select+commit). Advances on success, resets on any failure
    /// or reconnect so a fresh connection always starts at BEGIN.
    held_phase: u8,
}

/// Scheduler-driven steady workload: one task per client, each firing
/// one transaction (or one phase of a held transaction) against the
/// client's long-lived managed connection. Failures are classified, not
/// retried — the ledger is the point.
pub struct SteadyLoad {
    url: DbUrl,
    props: ConnectProps,
    slots: Vec<Mutex<ClientSlot>>,
    stats: Mutex<LoadStats>,
    tasks: Mutex<Vec<TaskHandle>>,
    /// Every `hold_every`-th client spreads its transaction over three
    /// firings (BEGIN+INSERT, UPDATE, SELECT+COMMIT), so some sessions
    /// are mid-transaction whenever an upgrade lands. `0` disables.
    hold_every: usize,
}

impl std::fmt::Debug for SteadyLoad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SteadyLoad")
            .field("clients", &self.slots.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl SteadyLoad {
    /// Builds the load driver and registers one `steady-load <host>`
    /// task per client at `every` (zero jitter: deterministic). Call
    /// [`SteadyLoad::open_all`] before pumping the network.
    pub fn launch(
        net: &Network,
        clients: &[Arc<Bootloader>],
        url: &DbUrl,
        every: Duration,
        hold_every: usize,
    ) -> Arc<Self> {
        let load = Arc::new(SteadyLoad {
            url: url.clone(),
            props: ConnectProps::user("admin", "admin"),
            slots: clients
                .iter()
                .map(|c| {
                    Mutex::new(ClientSlot {
                        client: c.clone(),
                        conn: None,
                        seq: 0,
                        ever_connected: false,
                        held_open: false,
                        held_id: 0,
                        held_phase: 0,
                    })
                })
                .collect(),
            stats: Mutex::new(LoadStats::default()),
            tasks: Mutex::new(Vec::new()),
            hold_every,
        });
        let mut tasks = Vec::with_capacity(clients.len());
        for (i, c) in clients.iter().enumerate() {
            let me: Weak<SteadyLoad> = Arc::downgrade(&load);
            tasks.push(net.scheduler().every(
                every,
                Duration::ZERO,
                format!("steady-load {}", c.local_addr().host()),
                move || {
                    let Some(load) = me.upgrade() else {
                        return Ok(TaskControl::Done);
                    };
                    load.tick(i);
                    Ok(TaskControl::Continue)
                },
            ));
        }
        *load.tasks.lock() = tasks;
        load
    }

    /// Opens every client's long-lived connection and creates the
    /// workload table. Bootstrap connects are not counted as
    /// reconnects; a failure here is a setup error, not load signal.
    ///
    /// # Errors
    ///
    /// The first connect or setup failure.
    pub fn open_all(&self) -> DkResult<()> {
        for (i, slot) in self.slots.iter().enumerate() {
            let mut slot = slot.lock();
            let mut conn = slot.client.connect(&self.url, &self.props)?;
            if i == 0 {
                workload::setup(&mut conn)?;
            }
            slot.conn = Some(conn);
            slot.ever_connected = true;
        }
        Ok(())
    }

    /// Snapshot of the outcome ledger.
    pub fn stats(&self) -> LoadStats {
        *self.stats.lock()
    }

    /// Number of clients currently holding an open (multi-firing)
    /// transaction.
    pub fn held_open(&self) -> usize {
        self.slots.iter().filter(|s| s.lock().held_open).count()
    }

    /// Cancels the load tasks (the driver stops firing; connections
    /// stay open until the `SteadyLoad` is dropped).
    pub fn stop(&self) {
        for t in self.tasks.lock().drain(..) {
            t.cancel();
        }
    }

    /// One firing for client `i`: reconnect if the previous connection
    /// was closed under the application, then run one transaction (or
    /// one phase of a held one) and record the outcome.
    fn tick(&self, i: usize) {
        let Some(slot) = self.slots.get(i) else {
            return;
        };
        let mut slot = slot.lock();
        self.stats.lock().attempted += 1;
        if slot.conn.is_none() {
            match slot.client.connect(&self.url, &self.props) {
                Ok(c) => {
                    if slot.ever_connected {
                        self.stats.lock().reconnects += 1;
                    }
                    slot.conn = Some(c);
                    slot.ever_connected = true;
                    slot.held_open = false;
                    slot.held_phase = 0;
                }
                Err(_) => {
                    // The application wanted to run work and could not
                    // even get a connection: that work is lost.
                    self.stats.lock().dropped_queries += 1;
                    return;
                }
            }
        }
        let held_mode = self.hold_every > 0 && i.is_multiple_of(self.hold_every);
        let was_mid_txn = slot.held_open;
        let seq = slot.seq;
        slot.seq += 1;
        let order_id = (i as i64) * 10_000_000 + seq as i64;
        let ClientSlot {
            conn: Some(conn),
            held_open,
            held_id,
            held_phase,
            ..
        } = &mut *slot
        else {
            return;
        };
        let result: DkResult<bool> = if held_mode {
            match *held_phase {
                0 => {
                    // Phase 1: open the transaction and insert.
                    *held_id = order_id;
                    conn.begin().and_then(|()| {
                        conn.execute(&format!(
                            "INSERT INTO orders VALUES ({order_id}, {}, 'new')",
                            order_id % 7 + 1
                        ))
                        .map(|_| {
                            *held_open = true;
                            *held_phase = 1;
                            false
                        })
                    })
                }
                1 => {
                    // Phase 2: more work inside the still-open txn.
                    let id = *held_id;
                    conn.execute(&format!(
                        "UPDATE orders SET status = 'shipped' WHERE id = {id}"
                    ))
                    .map(|_| {
                        *held_phase = 2;
                        false
                    })
                }
                _ => {
                    // Phase 3: read back and commit — the boundary a
                    // draining session migrates at.
                    let id = *held_id;
                    conn.execute(&format!("SELECT qty FROM orders WHERE id = {id}"))
                        .and_then(|_| conn.commit())
                        .map(|()| {
                            *held_open = false;
                            *held_phase = 0;
                            true
                        })
                }
            }
        } else {
            workload::run_txn(conn, order_id).map(|_| true)
        };
        match result {
            Ok(committed) => {
                if committed {
                    self.stats.lock().committed += 1;
                }
            }
            Err(_) => {
                let gone = !conn.is_open();
                {
                    let mut st = self.stats.lock();
                    st.dropped_queries += 1;
                    if was_mid_txn && gone {
                        st.severed_transactions += 1;
                    }
                }
                if gone {
                    // The connection was closed under the application;
                    // the next firing re-establishes it.
                    slot.conn = None;
                } else if was_mid_txn {
                    // Transaction failed on its own (e.g. SQL error):
                    // roll it back so the slot starts clean.
                    if let Some(c) = slot.conn.as_mut() {
                        let _ = c.rollback();
                    }
                }
                slot.held_open = false;
                slot.held_phase = 0;
            }
        }
    }
}

impl Drop for SteadyLoad {
    fn drop(&mut self) {
        self.stop();
    }
}
