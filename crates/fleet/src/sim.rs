//! Fleet simulation with real components: N bootloader-equipped clients
//! against one in-database Drivolution server, under virtual time.
//!
//! This powers the §3.2 tradeoff experiments: lease time vs upgrade
//! propagation time vs Drivolution-server traffic, and the
//! dedicated-channel ablation.
//!
//! Nothing here hand-cranks lifecycle beats: every client registers its
//! own upgrade-poll task and lease auto-renewal timer, every mirror its
//! own heartbeat task, and the fleet runs by pumping
//! [`netsim::Network::run_until`]. Per-mirror heartbeat failures are
//! read straight off the task error counters
//! ([`FleetSim::mirror_heartbeat_failures`]) instead of being swallowed.

use std::sync::Arc;

use parking_lot::Mutex;
use std::time::Duration;

use netsim::{Addr, ChaosSchedule, Network};

use driverkit::{ConnectProps, DbUrl};
use drivolution_bootloader::{
    Bootloader, BootloaderConfig, LifecyclePolicy, SwapConfig, SwapStats,
};
use drivolution_core::{
    ApiName, BinaryFormat, DriverId, DriverImage, DriverRecord, DriverVersion, ExpirationPolicy,
    PermissionRule, RenewPolicy, TransferMethod, DRIVOLUTION_PORT,
};
use drivolution_depot::{DriverDepot, MirrorDepot};
use drivolution_server::{
    attach_in_database, DrivolutionServer, RolloutConfig, RolloutOrchestrator, RolloutPlan,
    ServerConfig,
};
use minidb::wire::DbServer;
use minidb::MiniDb;

use crate::aggregator::RenewalAggregator;

/// Default cadence of each client's upgrade-poll task (one virtual
/// minute, as the original hand-cranked sweeps used).
pub const DEFAULT_POLL_EVERY: Duration = Duration::from_secs(60);

/// Result of one upgrade-propagation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PropagationResult {
    /// Virtual milliseconds from publish until every client runs v2.
    pub time_to_full_upgrade_ms: u64,
    /// Requests that reached the Drivolution server over the whole run.
    pub server_requests: u64,
    /// Request+response bytes at the Drivolution server.
    pub server_bytes: u64,
    /// Maintenance passes executed across the fleet (scheduler-fired
    /// poll tasks plus lease-renewal timers).
    pub polls: u64,
    /// Mirror heartbeats that failed during the run — surfaced from the
    /// heartbeat tasks' error counters rather than swallowed.
    pub mirror_heartbeat_failures: u64,
}

/// A simulated fleet wired from real components.
pub struct FleetSim {
    net: Network,
    server: Arc<DrivolutionServer>,
    drv_addr: Addr,
    clients: Vec<Arc<Bootloader>>,
    mirrors: Vec<Arc<MirrorDepot>>,
    aggregators: Vec<Arc<RenewalAggregator>>,
    url: DbUrl,
    lease_ms: u64,
    /// When set, activation-checking clients fail their post-activation
    /// self-check for exactly this driver version (the injected
    /// regression of the rollout benchmarks). Only clients built by
    /// [`FleetSim::build_rollout`] wire the check.
    faulty_version: Arc<Mutex<Option<DriverVersion>>>,
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("clients", &self.clients.len())
            .field("lease_ms", &self.lease_ms)
            .finish()
    }
}

fn record(id: i64, proto: u16, version: DriverVersion, padding: usize) -> DriverRecord {
    let image = DriverImage::new(format!("fleet-drv-{id}"), version, proto);
    DriverRecord::new(
        DriverId(id),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        drivolution_core::pack::pack_driver_padded(BinaryFormat::Djar, &image, padding),
    )
    .with_version(version)
}

impl FleetSim {
    /// Builds a fleet of `n_clients` self-driving bootloaders with
    /// `lease_ms` leases; `notify` opens dedicated channels (the push
    /// ablation).
    pub fn build(n_clients: usize, lease_ms: u64, notify: bool) -> Self {
        Self::build_with_driver_size(n_clients, lease_ms, notify, 0)
    }

    /// As [`FleetSim::build`] with `driver_padding` extra bytes per
    /// driver package (to sweep realistic driver sizes). Clients run
    /// under [`LifecyclePolicy::driven`] at [`DEFAULT_POLL_EVERY`].
    pub fn build_with_driver_size(
        n_clients: usize,
        lease_ms: u64,
        notify: bool,
        driver_padding: usize,
    ) -> Self {
        Self::build_with_lifecycle(
            n_clients,
            lease_ms,
            notify,
            driver_padding,
            LifecyclePolicy::driven(DEFAULT_POLL_EVERY),
        )
    }

    /// As [`FleetSim::build_with_driver_size`] with an explicit client
    /// [`LifecyclePolicy`] — [`LifecyclePolicy::manual`] builds a fleet
    /// for harnesses that hand-crank [`Bootloader::poll`].
    pub fn build_with_lifecycle(
        n_clients: usize,
        lease_ms: u64,
        notify: bool,
        driver_padding: usize,
        lifecycle: LifecyclePolicy,
    ) -> Self {
        let net = Network::new();
        let db = Arc::new(MiniDb::with_clock("fleetdb", net.clock().clone()));
        {
            let mut s = db.admin_session();
            db.exec(&mut s, "CREATE TABLE load (id INTEGER)")
                .expect("create load table on a fresh db");
        }
        net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))
            .expect("db1:5432 is unbound on a fresh network");
        let server = attach_in_database(
            &net,
            db,
            Addr::new("db1", DRIVOLUTION_PORT),
            ServerConfig {
                default_transfer: TransferMethod::Checksum,
                ..ServerConfig::default()
            },
        )
        .expect("attach server on a fresh network");
        server
            .install_driver(&record(1, 1, DriverVersion::new(1, 0, 0), driver_padding))
            .expect("install driver v1");
        server
            .add_rule(
                &PermissionRule::any(DriverId(1))
                    .with_lease_ms(lease_ms as i64)
                    .with_transfer(TransferMethod::Any)
                    .with_policies(RenewPolicy::Renew, ExpirationPolicy::AfterCommit),
            )
            .expect("add permission rule for driver v1");
        let mut clients = Vec::with_capacity(n_clients);
        for i in 0..n_clients {
            let mut config = BootloaderConfig::same_host().with_lifecycle(lifecycle);
            if notify {
                config = config.with_notify_channel();
            }
            clients.push(Bootloader::new(
                &net,
                Addr::new(format!("app{i:04}"), 1),
                config,
            ));
        }
        FleetSim {
            net,
            server,
            drv_addr: Addr::new("db1", DRIVOLUTION_PORT),
            clients,
            mirrors: Vec::new(),
            aggregators: Vec::new(),
            url: DbUrl::direct(Addr::new("db1", 5432), "fleetdb"),
            lease_ms,
            faulty_version: Arc::new(Mutex::new(None)),
        }
    }

    /// Builds a fleet wired for staged rollouts: every client carries a
    /// depot (so rollbacks revalidate with zero transfer), sends
    /// activation reports after upgrades (so health gates have signal),
    /// and runs a post-activation self-check that fails whenever the
    /// activated version matches the injected
    /// [`FleetSim::inject_activation_fault`] target.
    pub fn build_rollout(n_clients: usize, lease_ms: u64, driver_padding: usize) -> Self {
        let mut sim = Self::build_with_driver_size(0, lease_ms, false, driver_padding);
        for i in 0..n_clients {
            let faulty = sim.faulty_version.clone();
            let config = BootloaderConfig::same_host()
                .with_lifecycle(LifecyclePolicy::driven(DEFAULT_POLL_EVERY))
                .with_depot(DriverDepot::in_memory())
                .with_activation_reports()
                .with_activation_check(move |image| match *faulty.lock() {
                    Some(v) if image.version == v => {
                        Err("injected activation regression".to_string())
                    }
                    _ => Ok(()),
                });
            sim.clients.push(Bootloader::new(
                &sim.net,
                Addr::new(format!("app{i:04}"), 1),
                config,
            ));
        }
        sim
    }

    /// Builds a fleet wired for zero-downtime hot swaps: every client
    /// carries a depot (rollbacks revalidate with zero transfer), sends
    /// activation reports, runs the injectable self-check of
    /// [`FleetSim::build_rollout`], and — when `hot_swap` is set — opens
    /// a bounded coexistence window on upgrade instead of expiring old
    /// sessions immediately. `hot_swap: None` builds the *baseline*
    /// fleet for the same scenario: identical clients that apply the
    /// expiration policy the moment the new driver activates, which is
    /// exactly the configuration whose dropped-query ledger the hot-swap
    /// benches contrast against.
    pub fn build_hotswap(n_clients: usize, lease_ms: u64, hot_swap: Option<SwapConfig>) -> Self {
        let mut sim = Self::build_with_driver_size(0, lease_ms, false, 0);
        for i in 0..n_clients {
            let faulty = sim.faulty_version.clone();
            let mut config = BootloaderConfig::same_host()
                .with_lifecycle(LifecyclePolicy::driven(DEFAULT_POLL_EVERY))
                .with_depot(DriverDepot::in_memory())
                .with_activation_reports()
                .with_activation_check(move |image| match *faulty.lock() {
                    Some(v) if image.version == v => {
                        Err("injected activation regression".to_string())
                    }
                    _ => Ok(()),
                });
            if let Some(swap) = hot_swap {
                config = config.with_hot_swap(swap);
            }
            sim.clients.push(Bootloader::new(
                &sim.net,
                Addr::new(format!("app{i:04}"), 1),
                config,
            ));
        }
        sim
    }

    /// Fleet-wide hot-swap counters, summed over every client's
    /// [`drivolution_bootloader::BootStats::swap`].
    pub fn total_swap_stats(&self) -> SwapStats {
        let mut total = SwapStats::default();
        for c in &self.clients {
            let s = c.stats().swap;
            total.windows_opened += s.windows_opened;
            total.windows_completed += s.windows_completed;
            total.sessions_migrated += s.sessions_migrated;
            total.sessions_drained += s.sessions_drained;
            total.sessions_forced += s.sessions_forced;
            total.transactions_severed += s.transactions_severed;
            total.blackout_ticks += s.blackout_ticks;
            total.downgrades += s.downgrades;
        }
        total
    }

    /// As [`FleetSim::build_rollout`], but with batched lease traffic:
    /// clients run [`LifecyclePolicy::manual`] and a per-zone
    /// [`RenewalAggregator`] coalesces their same-tick renewals into one
    /// `RENEW_BATCH` frame (one aggregator total here, since the plain
    /// rollout fleet is unzoned). This is the shape the 10k-client
    /// rollout bench runs: same lease windows and wave targeting, a tiny
    /// fraction of the frames.
    pub fn build_rollout_batched(n_clients: usize, lease_ms: u64, driver_padding: usize) -> Self {
        let mut sim = Self::build_with_driver_size(0, lease_ms, false, driver_padding);
        // One shared assembled-image cache for the (unzoned) fleet: a
        // rollout wave materializes each target image once, and every
        // other client adopts the refcounted bytes after re-verifying.
        let image_cache = drivolution_depot::SharedImageCache::new();
        for i in 0..n_clients {
            let faulty = sim.faulty_version.clone();
            let config = BootloaderConfig::same_host()
                .with_lifecycle(LifecyclePolicy::manual())
                .with_depot(DriverDepot::in_memory())
                .with_image_cache(image_cache.clone())
                .with_activation_reports()
                .with_activation_check(move |image| match *faulty.lock() {
                    Some(v) if image.version == v => {
                        Err("injected activation regression".to_string())
                    }
                    _ => Ok(()),
                });
            sim.clients.push(Bootloader::new(
                &sim.net,
                Addr::new(format!("app{i:04}"), 1),
                config,
            ));
        }
        sim.attach_aggregators(DEFAULT_POLL_EVERY);
        sim
    }

    /// Groups the fleet's clients by zone and launches one
    /// [`RenewalAggregator`] per zone (`agg-<zone>:1`, unzoned clients
    /// under `agg-default:1`) ticking at `every`. Clients under an
    /// aggregator should run [`LifecyclePolicy::manual`]; the aggregator
    /// tick is then their only renewal driver.
    pub fn attach_aggregators(&mut self, every: Duration) {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<String, Vec<Arc<Bootloader>>> = BTreeMap::new();
        for c in &self.clients {
            let zone = self
                .net
                .zone_of(c.local_addr().host())
                .unwrap_or_else(|| "default".to_string());
            groups.entry(zone).or_default().push(c.clone());
        }
        for (zone, members) in groups {
            self.aggregators.push(RenewalAggregator::launch(
                &self.net,
                Addr::new(format!("agg-{zone}"), 1),
                self.drv_addr.clone(),
                &members,
                every,
            ));
        }
    }

    /// The per-zone renewal aggregators (empty on unbatched fleets).
    pub fn aggregators(&self) -> &[Arc<RenewalAggregator>] {
        &self.aggregators
    }

    /// Builds a CDN-style multi-zone fleet: the database (and primary
    /// Drivolution server) lives in `zones[0]`, every zone gets a depot
    /// mirror (`mirror-<zone>:1071`) registered via the announce
    /// protocol, and the `n_clients` depot-equipped clients are placed
    /// round-robin across zones. Links cost `same_zone_ms`/`cross_zone_ms`
    /// one-way against the virtual clock.
    ///
    /// # Panics
    ///
    /// Panics when `zones` is empty.
    pub fn build_cdn(
        n_clients: usize,
        lease_ms: u64,
        zones: &[&str],
        driver_padding: usize,
        same_zone_ms: u64,
        cross_zone_ms: u64,
    ) -> Self {
        Self::build_cdn_with(
            n_clients,
            lease_ms,
            zones,
            driver_padding,
            same_zone_ms,
            cross_zone_ms,
            LifecyclePolicy::driven(DEFAULT_POLL_EVERY),
        )
    }

    /// As [`FleetSim::build_cdn`] with an explicit client
    /// [`LifecyclePolicy`] (mirror heartbeat tasks always register; the
    /// policy governs the clients).
    pub fn build_cdn_with(
        n_clients: usize,
        lease_ms: u64,
        zones: &[&str],
        driver_padding: usize,
        same_zone_ms: u64,
        cross_zone_ms: u64,
        lifecycle: LifecyclePolicy,
    ) -> Self {
        assert!(!zones.is_empty(), "a CDN fleet needs at least one zone");
        let mut sim = Self::build_with_driver_size(0, lease_ms, false, driver_padding);
        sim.net.with_topology(|t| {
            t.set_default_latency(same_zone_ms, cross_zone_ms);
            t.place("db1", zones[0]);
        });
        for zone in zones {
            let host = format!("mirror-{zone}");
            sim.net.with_topology(|t| t.place(host.clone(), *zone));
            let mirror = MirrorDepot::launch(&sim.net, Addr::new(host, 1071), sim.drv_addr.clone())
                .expect("mirror bind");
            mirror.heartbeat().expect("mirror heartbeat");
            sim.mirrors.push(mirror);
        }
        for i in 0..n_clients {
            let host = format!("app{i:04}");
            let zone = zones[i % zones.len()];
            sim.net.with_topology(|t| t.place(host.clone(), zone));
            let mut config = BootloaderConfig::same_host()
                .with_lifecycle(lifecycle)
                .trusting(sim.server.certificate())
                .with_depot(DriverDepot::in_memory());
            for m in &sim.mirrors {
                config = config.trusting(m.certificate());
            }
            sim.clients
                .push(Bootloader::new(&sim.net, Addr::new(host, 1), config));
        }
        sim
    }

    /// The simulated network (clock, stats, faults).
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The database URL the fleet's clients connect to.
    pub fn url(&self) -> &DbUrl {
        &self.url
    }

    /// The Drivolution server.
    pub fn server(&self) -> &Arc<DrivolutionServer> {
        &self.server
    }

    /// The client bootloaders.
    pub fn clients(&self) -> &[Arc<Bootloader>] {
        &self.clients
    }

    /// The per-zone depot mirrors (empty outside
    /// [`FleetSim::build_cdn`]).
    pub fn mirrors(&self) -> &[Arc<MirrorDepot>] {
        &self.mirrors
    }

    /// Per-mirror heartbeat-failure counters, read off each mirror's
    /// scheduler task. A mirror taken down by fault injection misses its
    /// beats and is quarantined exactly as before — but the failures now
    /// land in an operator-visible ledger instead of being discarded.
    pub fn mirror_heartbeat_failures(&self) -> Vec<(String, u64)> {
        self.mirrors
            .iter()
            .map(|m| {
                let errors = m.heartbeat_task().map(|t| t.stats().errors).unwrap_or(0);
                (m.location(), errors)
            })
            .collect()
    }

    fn total_mirror_failures(&self) -> u64 {
        self.mirror_heartbeat_failures()
            .iter()
            .map(|(_, n)| n)
            .sum()
    }

    fn total_polls(&self) -> u64 {
        self.clients.iter().map(|c| c.stats().polls).sum()
    }

    /// Installs every event of `schedule` as one-shot tasks on the
    /// fleet's scheduler, so faults flip on the same deterministic
    /// timeline as heartbeats and renewals. Returns the number of
    /// events installed.
    pub fn install_chaos(&self, schedule: &ChaosSchedule) -> usize {
        schedule.install(&self.net)
    }

    /// Total `MIRROR_COMPLAINT`s the fleet's clients have filed.
    pub fn total_mirror_complaints(&self) -> u64 {
        self.clients
            .iter()
            .map(|c| c.stats().mirror_complaints)
            .sum()
    }

    /// Distinct active-image digests across clients currently running
    /// `version`. A chaos run proves "zero wrong-byte installs" by
    /// asserting this collapses to exactly one digest at convergence.
    pub fn image_digests_on(&self, version: DriverVersion) -> std::collections::BTreeSet<u64> {
        self.clients
            .iter()
            .filter(|c| c.active_version() == Some(version))
            .filter_map(|c| c.active_image_digest())
            .collect()
    }

    /// Bootstraps every client (each downloads v1 once).
    pub fn bootstrap_all(&self) {
        for (i, c) in self.clients.iter().enumerate() {
            let props = ConnectProps::user("admin", "admin");
            let conn = c.connect(&self.url, &props).unwrap_or_else(|e| {
                panic!("client {i} failed to bootstrap: {e}");
            });
            drop(conn); // connection closed; driver stays loaded
        }
    }

    /// Injects (or clears) the activation regression: rollout-built
    /// clients fail their post-activation self-check for `version` from
    /// now on. Clients that already activated it are unaffected — the
    /// regression surfaces through the *next* wave's reports, exactly
    /// like a latent driver bug.
    pub fn inject_activation_fault(&self, version: Option<DriverVersion>) {
        *self.faulty_version.lock() = version;
    }

    /// Publishes driver `id` at `version` *alongside* the previous
    /// driver: both stay permitted (the new one under
    /// [`RenewPolicy::Upgrade`]), which is the precondition for a staged
    /// rollout — held-back and rolled-back clients must still be able to
    /// renew (and re-download) the prior version.
    pub fn publish_staged(&self, id: i64, version: DriverVersion, driver_padding: usize) {
        self.server
            .install_driver(&record(id, id as u16, version, driver_padding))
            .expect("install staged driver");
        self.server
            .add_rule(
                &PermissionRule::any(DriverId(id))
                    .with_lease_ms(self.lease_ms as i64)
                    .with_transfer(TransferMethod::Any)
                    .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
            )
            .expect("add staged permission rule");
    }

    /// Partitions the fleet per `plan`, launches a
    /// [`RolloutOrchestrator`] driving `from → to` on the network's
    /// scheduler, and attaches it to the server so offers become
    /// version-targeted per wave membership.
    pub fn start_rollout(
        &self,
        from: DriverId,
        to: DriverId,
        plan: &RolloutPlan,
        config: RolloutConfig,
    ) -> Arc<RolloutOrchestrator> {
        let hosts: Vec<String> = self
            .clients
            .iter()
            .map(|c| c.local_addr().host().to_string())
            .collect();
        let ro = RolloutOrchestrator::launch(&self.net, "fleetdb", from, to, &hosts, plan, config);
        self.server.attach_rollout(ro.clone());
        ro
    }

    /// Publishes driver v2 and routes the fleet to it. With `push`, also
    /// notifies dedicated channels.
    pub fn publish_upgrade(&self, push: bool) {
        self.publish(2, DriverVersion::new(2, 0, 0), 0, push);
    }

    /// Publishes driver `id` at `version` (with `driver_padding` bytes
    /// of payload) and routes the fleet to it, revoking the previous
    /// driver's permissions. With `push`, also notifies dedicated
    /// channels.
    pub fn publish(&self, id: i64, version: DriverVersion, driver_padding: usize, push: bool) {
        self.server
            .install_driver(&record(id, id as u16, version, driver_padding))
            .expect("install published driver");
        self.server
            .store()
            .remove_permissions(DriverId(id - 1))
            .expect("revoke previous driver permissions");
        self.server
            .add_rule(
                &PermissionRule::any(DriverId(id))
                    .with_lease_ms(self.lease_ms as i64)
                    .with_transfer(TransferMethod::Any)
                    .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
            )
            .expect("add permission rule for published driver");
        if push {
            self.server.notify_upgrade("fleetdb");
        }
    }

    /// Fraction of clients running `version`.
    pub fn fraction_on(&self, version: DriverVersion) -> f64 {
        self.count_on(version) as f64 / self.clients.len().max(1) as f64
    }

    /// Number of clients running `version`.
    pub fn count_on(&self, version: DriverVersion) -> usize {
        self.clients
            .iter()
            .filter(|c| c.active_version() == Some(version))
            .count()
    }

    /// Pumps the scheduler in `step_ms` increments — client poll tasks,
    /// lease-renewal timers, and mirror heartbeats all fire on their own
    /// registered cadence — until every client runs v2 or `max_ms`
    /// elapses. No manual poll or heartbeat call anywhere: the fleet's
    /// entire lifecycle is scheduler ticks.
    pub fn run_until_upgraded(&self, step_ms: u64, max_ms: u64) -> PropagationResult {
        self.run_until_on(DriverVersion::new(2, 0, 0), step_ms, max_ms)
    }

    /// As [`FleetSim::run_until_upgraded`] for an arbitrary target
    /// version — staged rollouts also converge *backwards* (onto the
    /// prior version after a halt), which this measures the same way.
    pub fn run_until_on(
        &self,
        target: DriverVersion,
        step_ms: u64,
        max_ms: u64,
    ) -> PropagationResult {
        let start = self.net.clock().now_ms();
        let base_stats = self.net.stats().for_addr(&self.drv_addr);
        let base_polls = self.total_polls();
        let base_failures = self.total_mirror_failures();
        while self.fraction_on(target) < 1.0 {
            let now = self.net.clock().now_ms();
            if now - start >= max_ms {
                break;
            }
            self.net.run_until((now + step_ms).min(start + max_ms));
        }
        let end_stats = self.net.stats().for_addr(&self.drv_addr);
        PropagationResult {
            time_to_full_upgrade_ms: self.net.clock().now_ms() - start,
            server_requests: end_stats.requests - base_stats.requests,
            server_bytes: (end_stats.bytes_in + end_stats.bytes_out)
                - (base_stats.bytes_in + base_stats.bytes_out),
            polls: self.total_polls() - base_polls,
            mirror_heartbeat_failures: self.total_mirror_failures() - base_failures,
        }
    }

    /// Runs `duration_ms` of steady-state lease maintenance (no upgrade)
    /// under the scheduler and reports the Drivolution-server traffic —
    /// the "higher traffic to the Drivolution Server" side of the §3.2
    /// tradeoff. `step_ms` is only the pump granularity; lifecycle
    /// cadence comes from the registered tasks.
    pub fn run_steady_state(&self, step_ms: u64, duration_ms: u64) -> PropagationResult {
        let start = self.net.clock().now_ms();
        let base_stats = self.net.stats().for_addr(&self.drv_addr);
        let base_polls = self.total_polls();
        let base_failures = self.total_mirror_failures();
        while self.net.clock().now_ms() - start < duration_ms {
            let now = self.net.clock().now_ms();
            self.net.run_until((now + step_ms).min(start + duration_ms));
        }
        let end_stats = self.net.stats().for_addr(&self.drv_addr);
        PropagationResult {
            time_to_full_upgrade_ms: duration_ms,
            server_requests: end_stats.requests - base_stats.requests,
            server_bytes: (end_stats.bytes_in + end_stats.bytes_out)
                - (base_stats.bytes_in + base_stats.bytes_out),
            polls: self.total_polls() - base_polls,
            mirror_heartbeat_failures: self.total_mirror_failures() - base_failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINUTE: u64 = 60_000;

    #[test]
    fn fleet_bootstraps_and_upgrades_via_leases() {
        let sim = FleetSim::build(5, 10 * MINUTE, false);
        sim.bootstrap_all();
        assert_eq!(sim.fraction_on(DriverVersion::new(1, 0, 0)), 1.0);
        sim.publish_upgrade(false);
        let r = sim.run_until_upgraded(MINUTE, 60 * MINUTE);
        assert_eq!(sim.fraction_on(DriverVersion::new(2, 0, 0)), 1.0);
        // Propagation bounded by one lease: the auto-renewal timers fire
        // inside each lease's renewal window.
        assert!(r.time_to_full_upgrade_ms <= 10 * MINUTE);
        assert!(r.server_requests >= 5, "every client re-requested");
        assert!(r.polls >= 5, "scheduler-fired maintenance was counted");
    }

    #[test]
    fn push_channel_upgrades_immediately() {
        let sim = FleetSim::build(5, 60 * MINUTE, true);
        sim.bootstrap_all();
        sim.publish_upgrade(true);
        let r = sim.run_until_upgraded(MINUTE, 120 * MINUTE);
        // With push, the fleet converges on the first poll sweep — no
        // waiting for lease expiry.
        assert_eq!(sim.fraction_on(DriverVersion::new(2, 0, 0)), 1.0);
        assert!(r.time_to_full_upgrade_ms <= MINUTE);
    }

    #[test]
    fn cdn_fleet_upgrades_from_same_zone_mirrors() {
        let zones = ["za", "zb", "zc"];
        let sim = FleetSim::build_cdn(6, 10 * MINUTE, &zones, 64 * 1024, 1, 25);
        assert_eq!(sim.mirrors().len(), 3);
        assert_eq!(sim.server().mirror_directory().len(), 3);
        sim.bootstrap_all();
        sim.publish(2, DriverVersion::new(2, 0, 0), 64 * 1024, false);
        sim.run_until_upgraded(MINUTE, 60 * MINUTE);
        assert_eq!(sim.fraction_on(DriverVersion::new(2, 0, 0)), 1.0);
        // Every delta chunk travelled inside the client's own zone, and
        // the mirrors (not the primary) carried the bulk traffic.
        let (same, cross) = sim.clients().iter().fold((0u64, 0u64), |(s, c), b| {
            let st = b.stats();
            (s + st.same_zone_chunk_bytes, c + st.cross_zone_chunk_bytes)
        });
        assert!(same > 0, "no chunk bytes accounted");
        assert_eq!(cross, 0, "cross-zone chunk bytes on a healthy fleet");
        assert!(sim.mirrors().iter().all(|m| m.stats().chunks_served > 0));
        assert_eq!(
            sim.clients()
                .iter()
                .map(|c| c.stats().mirror_fallbacks)
                .sum::<u64>(),
            0
        );
    }

    #[test]
    fn dead_mirror_heartbeat_failures_surface_in_the_report() {
        // Regression: the old hand-cranked heartbeat_mirrors() swallowed
        // every error (`let _ = m.heartbeat()`), so a fleet report could
        // not tell a healthy mirror tier from one silently failing. The
        // task error counters must surface them per mirror.
        let zones = ["za", "zb"];
        let sim = FleetSim::build_cdn(2, 10 * MINUTE, &zones, 16 * 1024, 1, 25);
        sim.bootstrap_all();
        sim.net().with_faults(|f| f.take_down("mirror-za"));
        let r = sim.run_steady_state(MINUTE, 2 * MINUTE);
        assert!(
            r.mirror_heartbeat_failures > 0,
            "failures must not be swallowed"
        );
        let per_mirror = sim.mirror_heartbeat_failures();
        let dead = per_mirror
            .iter()
            .find(|(loc, _)| loc == "mirror-za:1071")
            .unwrap();
        let live = per_mirror
            .iter()
            .find(|(loc, _)| loc == "mirror-zb:1071")
            .unwrap();
        assert!(dead.1 > 0, "dead mirror's failures attributed to it");
        assert_eq!(live.1, 0, "healthy mirror shows a clean ledger");
        // And the failure is identifiable, not just countable.
        let task = sim.mirrors()[0].heartbeat_task().unwrap();
        assert!(task.last_error().is_some());
    }

    #[test]
    fn staged_rollout_completes_wave_by_wave() {
        use drivolution_server::RolloutPhase;
        let sim = FleetSim::build_rollout(10, 5 * MINUTE, 0);
        sim.bootstrap_all();
        sim.publish_staged(2, DriverVersion::new(2, 0, 0), 0);
        let ro = sim.start_rollout(
            DriverId(1),
            DriverId(2),
            &RolloutPlan {
                canary: 1,
                wave_pcts: vec![20, 30],
            },
            RolloutConfig {
                evaluate_every: Duration::from_secs(30),
                observe: Duration::from_secs(8 * 60),
                min_reports: 1,
                ..RolloutConfig::default()
            },
        );
        let r = sim.run_until_on(DriverVersion::new(2, 0, 0), MINUTE, 4 * 60 * MINUTE);
        assert_eq!(sim.count_on(DriverVersion::new(2, 0, 0)), 10);
        // The last wave still has to sit out its observation window
        // before its gate can pass.
        sim.run_steady_state(MINUTE, 10 * MINUTE);
        let st = ro.status();
        assert_eq!(st.phase, RolloutPhase::Complete);
        // Waves opened strictly in order, one observation window apart.
        let opens: Vec<u64> = st.waves.iter().map(|w| w.opened_at_ms.unwrap()).collect();
        assert!(opens.windows(2).all(|w| w[0] < w[1]), "{opens:?}");
        assert!(r.time_to_full_upgrade_ms > 0);
        // Every wave's members reported successful activation.
        assert_eq!(st.waves.iter().map(|w| w.ok).sum::<usize>(), 10);
        assert_eq!(st.waves.iter().map(|w| w.err).sum::<usize>(), 0);
    }

    #[test]
    fn batched_rollout_converges_with_a_fraction_of_the_frames() {
        use drivolution_server::RolloutPhase;
        let sim = FleetSim::build_rollout_batched(10, 5 * MINUTE, 0);
        assert_eq!(sim.aggregators().len(), 1, "unzoned fleet, one batcher");
        sim.bootstrap_all();
        sim.publish_staged(2, DriverVersion::new(2, 0, 0), 0);
        let ro = sim.start_rollout(
            DriverId(1),
            DriverId(2),
            &RolloutPlan {
                canary: 1,
                wave_pcts: vec![20, 30],
            },
            RolloutConfig {
                evaluate_every: Duration::from_secs(30),
                observe: Duration::from_secs(8 * 60),
                min_reports: 1,
                ..RolloutConfig::default()
            },
        );
        sim.run_until_on(DriverVersion::new(2, 0, 0), MINUTE, 4 * 60 * MINUTE);
        assert_eq!(sim.count_on(DriverVersion::new(2, 0, 0)), 10);
        sim.run_steady_state(MINUTE, 10 * MINUTE);
        assert_eq!(ro.status().phase, RolloutPhase::Complete);

        // The renewals travelled as coalesced batch frames, not
        // per-client requests.
        let agg = sim.aggregators()[0].stats();
        assert!(agg.batch_frames > 0, "{agg:?}");
        assert!(
            agg.coalesced_renewals > agg.batch_frames,
            "coalescing happened: {agg:?}"
        );
        let srv = sim.server().stats();
        assert_eq!(srv.batch_frames, agg.batch_frames);
        assert_eq!(srv.batched_renewals, agg.coalesced_renewals);
        assert_eq!(agg.failed_batches, 0);
    }

    #[test]
    fn injected_regression_halts_and_rolls_the_fleet_back() {
        use drivolution_server::RolloutPhase;
        let sim = FleetSim::build_rollout(10, 5 * MINUTE, 0);
        sim.bootstrap_all();
        sim.publish_staged(2, DriverVersion::new(2, 0, 0), 0);
        // The regression is live from the start: the canary is the blast
        // radius.
        sim.inject_activation_fault(Some(DriverVersion::new(2, 0, 0)));
        let ro = sim.start_rollout(
            DriverId(1),
            DriverId(2),
            &RolloutPlan {
                canary: 1,
                wave_pcts: vec![20, 30],
            },
            RolloutConfig {
                evaluate_every: Duration::from_secs(30),
                observe: Duration::from_secs(8 * 60),
                min_reports: 1,
                ..RolloutConfig::default()
            },
        );
        // Pump: the canary upgrades at its next renewal, fails its
        // self-check, the gate trips, and the canary rolls back at the
        // renewal after that.
        sim.run_steady_state(MINUTE, 30 * MINUTE);
        let st = ro.status();
        assert!(
            matches!(st.phase, RolloutPhase::RolledBack { failed_wave: 0 }),
            "{st:?}"
        );
        assert_eq!(
            sim.count_on(DriverVersion::new(1, 0, 0)),
            10,
            "no stranded clients"
        );
        assert_eq!(sim.count_on(DriverVersion::new(2, 0, 0)), 0);
        // Only the canary ever activated the bad driver.
        assert_eq!(st.waves[0].err, 1);
        assert_eq!(st.waves.iter().map(|w| w.ok + w.err).sum::<usize>(), 1);
    }

    #[test]
    fn hot_swap_upgrade_is_invisible_to_steady_load() {
        let sim = FleetSim::build_hotswap(6, 5 * MINUTE, Some(SwapConfig::default()));
        let load = crate::load::SteadyLoad::launch(
            sim.net(),
            sim.clients(),
            sim.url(),
            Duration::from_secs(5),
            3,
        );
        load.open_all().unwrap();
        sim.run_steady_state(10_000, 2 * MINUTE);
        sim.publish_upgrade(false);
        sim.run_until_on(DriverVersion::new(2, 0, 0), 10_000, 30 * MINUTE);
        assert_eq!(sim.count_on(DriverVersion::new(2, 0, 0)), 6);
        // Let every coexistence window settle.
        sim.run_steady_state(10_000, 2 * MINUTE);
        let st = load.stats();
        assert!(st.committed > 0, "{st:?}");
        assert_eq!(st.dropped_queries, 0, "{st:?}");
        assert_eq!(st.severed_transactions, 0, "{st:?}");
        assert_eq!(st.reconnects, 0, "{st:?}");
        let swap = sim.total_swap_stats();
        assert_eq!(swap.windows_opened, 6, "{swap:?}");
        assert_eq!(swap.windows_completed, 6, "{swap:?}");
        assert!(swap.sessions_migrated >= 6, "{swap:?}");
        assert_eq!(swap.sessions_forced, 0, "{swap:?}");
        assert_eq!(swap.transactions_severed, 0, "{swap:?}");
    }

    #[test]
    fn baseline_upgrade_without_hot_swap_drops_queries() {
        let sim = FleetSim::build_hotswap(6, 5 * MINUTE, None);
        let load = crate::load::SteadyLoad::launch(
            sim.net(),
            sim.clients(),
            sim.url(),
            Duration::from_secs(5),
            3,
        );
        load.open_all().unwrap();
        sim.run_steady_state(10_000, 2 * MINUTE);
        sim.publish_upgrade(false);
        sim.run_until_on(DriverVersion::new(2, 0, 0), 10_000, 30 * MINUTE);
        assert_eq!(sim.count_on(DriverVersion::new(2, 0, 0)), 6);
        sim.run_steady_state(10_000, 2 * MINUTE);
        let st = load.stats();
        // AFTER_COMMIT without a coexistence window force-closes idle
        // sessions at activation: the application sees it.
        assert!(st.dropped_queries > 0, "{st:?}");
        assert!(st.reconnects > 0, "{st:?}");
        assert_eq!(sim.total_swap_stats(), SwapStats::default());
    }

    #[test]
    fn shorter_leases_mean_more_server_traffic() {
        let short = FleetSim::build(4, 5 * MINUTE, false);
        short.bootstrap_all();
        let r_short = short.run_steady_state(MINUTE, 120 * MINUTE);

        let long = FleetSim::build(4, 60 * MINUTE, false);
        long.bootstrap_all();
        let r_long = long.run_steady_state(MINUTE, 120 * MINUTE);

        assert!(
            r_short.server_requests > r_long.server_requests * 2,
            "short={} long={}",
            r_short.server_requests,
            r_long.server_requests
        );
    }
}
