//! Fleet simulation with real components: N bootloader-equipped clients
//! against one in-database Drivolution server, under virtual time.
//!
//! This powers the §3.2 tradeoff experiments: lease time vs upgrade
//! propagation time vs Drivolution-server traffic, and the
//! dedicated-channel ablation.

use std::sync::Arc;

use netsim::{Addr, Network};

use driverkit::{ConnectProps, DbUrl};
use drivolution_bootloader::{Bootloader, BootloaderConfig};
use drivolution_core::{
    ApiName, BinaryFormat, DriverId, DriverImage, DriverRecord, DriverVersion, ExpirationPolicy,
    PermissionRule, RenewPolicy, TransferMethod, DRIVOLUTION_PORT,
};
use drivolution_server::{attach_in_database, DrivolutionServer, ServerConfig};
use minidb::wire::DbServer;
use minidb::MiniDb;

/// Result of one upgrade-propagation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PropagationResult {
    /// Virtual milliseconds from publish until every client runs v2.
    pub time_to_full_upgrade_ms: u64,
    /// Requests that reached the Drivolution server over the whole run.
    pub server_requests: u64,
    /// Request+response bytes at the Drivolution server.
    pub server_bytes: u64,
    /// Poll iterations executed.
    pub polls: u64,
}

/// A simulated fleet wired from real components.
pub struct FleetSim {
    net: Network,
    server: Arc<DrivolutionServer>,
    drv_addr: Addr,
    clients: Vec<Arc<Bootloader>>,
    url: DbUrl,
    lease_ms: u64,
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("clients", &self.clients.len())
            .field("lease_ms", &self.lease_ms)
            .finish()
    }
}

fn record(id: i64, proto: u16, version: DriverVersion, padding: usize) -> DriverRecord {
    let image = DriverImage::new(format!("fleet-drv-{id}"), version, proto);
    DriverRecord::new(
        DriverId(id),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        drivolution_core::pack::pack_driver_padded(BinaryFormat::Djar, &image, padding),
    )
    .with_version(version)
}

impl FleetSim {
    /// Builds a fleet of `n_clients` bootloaders with `lease_ms` leases;
    /// `notify` opens dedicated channels (the push ablation).
    pub fn build(n_clients: usize, lease_ms: u64, notify: bool) -> Self {
        Self::build_with_driver_size(n_clients, lease_ms, notify, 0)
    }

    /// As [`FleetSim::build`] with `driver_padding` extra bytes per
    /// driver package (to sweep realistic driver sizes).
    pub fn build_with_driver_size(
        n_clients: usize,
        lease_ms: u64,
        notify: bool,
        driver_padding: usize,
    ) -> Self {
        let net = Network::new();
        let db = Arc::new(MiniDb::with_clock("fleetdb", net.clock().clone()));
        {
            let mut s = db.admin_session();
            db.exec(&mut s, "CREATE TABLE load (id INTEGER)").unwrap();
        }
        net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))
            .unwrap();
        let server = attach_in_database(
            &net,
            db,
            Addr::new("db1", DRIVOLUTION_PORT),
            ServerConfig {
                default_transfer: TransferMethod::Checksum,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        server
            .install_driver(&record(1, 1, DriverVersion::new(1, 0, 0), driver_padding))
            .unwrap();
        server
            .add_rule(
                &PermissionRule::any(DriverId(1))
                    .with_lease_ms(lease_ms as i64)
                    .with_transfer(TransferMethod::Any)
                    .with_policies(RenewPolicy::Renew, ExpirationPolicy::AfterCommit),
            )
            .unwrap();
        let mut clients = Vec::with_capacity(n_clients);
        for i in 0..n_clients {
            let mut config = BootloaderConfig::same_host();
            if notify {
                config = config.with_notify_channel();
            }
            clients.push(Bootloader::new(
                &net,
                Addr::new(format!("app{i:04}"), 1),
                config,
            ));
        }
        FleetSim {
            net,
            server,
            drv_addr: Addr::new("db1", DRIVOLUTION_PORT),
            clients,
            url: DbUrl::direct(Addr::new("db1", 5432), "fleetdb"),
            lease_ms,
        }
    }

    /// The simulated network (clock, stats, faults).
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The Drivolution server.
    pub fn server(&self) -> &Arc<DrivolutionServer> {
        &self.server
    }

    /// The client bootloaders.
    pub fn clients(&self) -> &[Arc<Bootloader>] {
        &self.clients
    }

    /// Bootstraps every client (each downloads v1 once).
    pub fn bootstrap_all(&self) {
        for (i, c) in self.clients.iter().enumerate() {
            let props = ConnectProps::user("admin", "admin");
            let conn = c.connect(&self.url, &props).unwrap_or_else(|e| {
                panic!("client {i} failed to bootstrap: {e}");
            });
            drop(conn); // connection closed; driver stays loaded
        }
    }

    /// Publishes driver v2 and routes the fleet to it. With `push`, also
    /// notifies dedicated channels.
    pub fn publish_upgrade(&self, push: bool) {
        self.server
            .install_driver(&record(2, 2, DriverVersion::new(2, 0, 0), 0))
            .unwrap();
        self.server.store().remove_permissions(DriverId(1)).unwrap();
        self.server
            .add_rule(
                &PermissionRule::any(DriverId(2))
                    .with_lease_ms(self.lease_ms as i64)
                    .with_transfer(TransferMethod::Any)
                    .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
            )
            .unwrap();
        if push {
            self.server.notify_upgrade("fleetdb");
        }
    }

    /// Fraction of clients running `version`.
    pub fn fraction_on(&self, version: DriverVersion) -> f64 {
        let n = self
            .clients
            .iter()
            .filter(|c| c.active_version() == Some(version))
            .count();
        n as f64 / self.clients.len().max(1) as f64
    }

    /// Advances virtual time in `step_ms` increments, polling every
    /// client each step, until all run v2 or `max_ms` elapses.
    pub fn run_until_upgraded(&self, step_ms: u64, max_ms: u64) -> PropagationResult {
        let start = self.net.clock().now_ms();
        let base_stats = self.net.stats().for_addr(&self.drv_addr);
        let mut polls = 0;
        let target = DriverVersion::new(2, 0, 0);
        loop {
            for c in &self.clients {
                let _ = c.poll();
                polls += 1;
            }
            if self.fraction_on(target) >= 1.0 {
                break;
            }
            if self.net.clock().now_ms() - start >= max_ms {
                break;
            }
            self.net.clock().advance_ms(step_ms);
        }
        let end_stats = self.net.stats().for_addr(&self.drv_addr);
        PropagationResult {
            time_to_full_upgrade_ms: self.net.clock().now_ms() - start,
            server_requests: end_stats.requests - base_stats.requests,
            server_bytes: (end_stats.bytes_in + end_stats.bytes_out)
                - (base_stats.bytes_in + base_stats.bytes_out),
            polls,
        }
    }

    /// Runs `duration_ms` of steady-state lease maintenance (no upgrade)
    /// and reports the Drivolution-server traffic — the "higher traffic
    /// to the Drivolution Server" side of the §3.2 tradeoff.
    pub fn run_steady_state(&self, step_ms: u64, duration_ms: u64) -> PropagationResult {
        let start = self.net.clock().now_ms();
        let base_stats = self.net.stats().for_addr(&self.drv_addr);
        let mut polls = 0;
        while self.net.clock().now_ms() - start < duration_ms {
            self.net.clock().advance_ms(step_ms);
            for c in &self.clients {
                let _ = c.poll();
                polls += 1;
            }
        }
        let end_stats = self.net.stats().for_addr(&self.drv_addr);
        PropagationResult {
            time_to_full_upgrade_ms: duration_ms,
            server_requests: end_stats.requests - base_stats.requests,
            server_bytes: (end_stats.bytes_in + end_stats.bytes_out)
                - (base_stats.bytes_in + base_stats.bytes_out),
            polls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINUTE: u64 = 60_000;

    #[test]
    fn fleet_bootstraps_and_upgrades_via_leases() {
        let sim = FleetSim::build(5, 10 * MINUTE, false);
        sim.bootstrap_all();
        assert_eq!(sim.fraction_on(DriverVersion::new(1, 0, 0)), 1.0);
        sim.publish_upgrade(false);
        let r = sim.run_until_upgraded(MINUTE, 60 * MINUTE);
        assert_eq!(sim.fraction_on(DriverVersion::new(2, 0, 0)), 1.0);
        // Propagation bounded by one lease.
        assert!(r.time_to_full_upgrade_ms <= 10 * MINUTE);
        assert!(r.server_requests >= 5, "every client re-requested");
    }

    #[test]
    fn push_channel_upgrades_immediately() {
        let sim = FleetSim::build(5, 60 * MINUTE, true);
        sim.bootstrap_all();
        sim.publish_upgrade(true);
        let r = sim.run_until_upgraded(MINUTE, 120 * MINUTE);
        // With push, the fleet converges on the first poll sweep — no
        // waiting for lease expiry.
        assert_eq!(sim.fraction_on(DriverVersion::new(2, 0, 0)), 1.0);
        assert!(r.time_to_full_upgrade_ms <= MINUTE);
    }

    #[test]
    fn shorter_leases_mean_more_server_traffic() {
        let short = FleetSim::build(4, 5 * MINUTE, false);
        short.bootstrap_all();
        let r_short = short.run_steady_state(MINUTE, 120 * MINUTE);

        let long = FleetSim::build(4, 60 * MINUTE, false);
        long.bootstrap_all();
        let r_long = long.run_steady_state(MINUTE, 120 * MINUTE);

        assert!(
            r_short.server_requests > r_long.server_requests * 2,
            "short={} long={}",
            r_short.server_requests,
            r_long.server_requests
        );
    }
}
