//! Fleet simulation with real components: N bootloader-equipped clients
//! against one in-database Drivolution server, under virtual time.
//!
//! This powers the §3.2 tradeoff experiments: lease time vs upgrade
//! propagation time vs Drivolution-server traffic, and the
//! dedicated-channel ablation.

use std::sync::Arc;

use netsim::{Addr, Network};

use driverkit::{ConnectProps, DbUrl};
use drivolution_bootloader::{Bootloader, BootloaderConfig};
use drivolution_core::{
    ApiName, BinaryFormat, DriverId, DriverImage, DriverRecord, DriverVersion, ExpirationPolicy,
    PermissionRule, RenewPolicy, TransferMethod, DRIVOLUTION_PORT,
};
use drivolution_depot::{DriverDepot, MirrorDepot};
use drivolution_server::{attach_in_database, DrivolutionServer, ServerConfig};
use minidb::wire::DbServer;
use minidb::MiniDb;

/// Result of one upgrade-propagation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PropagationResult {
    /// Virtual milliseconds from publish until every client runs v2.
    pub time_to_full_upgrade_ms: u64,
    /// Requests that reached the Drivolution server over the whole run.
    pub server_requests: u64,
    /// Request+response bytes at the Drivolution server.
    pub server_bytes: u64,
    /// Poll iterations executed.
    pub polls: u64,
}

/// A simulated fleet wired from real components.
pub struct FleetSim {
    net: Network,
    server: Arc<DrivolutionServer>,
    drv_addr: Addr,
    clients: Vec<Arc<Bootloader>>,
    mirrors: Vec<Arc<MirrorDepot>>,
    url: DbUrl,
    lease_ms: u64,
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("clients", &self.clients.len())
            .field("lease_ms", &self.lease_ms)
            .finish()
    }
}

fn record(id: i64, proto: u16, version: DriverVersion, padding: usize) -> DriverRecord {
    let image = DriverImage::new(format!("fleet-drv-{id}"), version, proto);
    DriverRecord::new(
        DriverId(id),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        drivolution_core::pack::pack_driver_padded(BinaryFormat::Djar, &image, padding),
    )
    .with_version(version)
}

impl FleetSim {
    /// Builds a fleet of `n_clients` bootloaders with `lease_ms` leases;
    /// `notify` opens dedicated channels (the push ablation).
    pub fn build(n_clients: usize, lease_ms: u64, notify: bool) -> Self {
        Self::build_with_driver_size(n_clients, lease_ms, notify, 0)
    }

    /// As [`FleetSim::build`] with `driver_padding` extra bytes per
    /// driver package (to sweep realistic driver sizes).
    pub fn build_with_driver_size(
        n_clients: usize,
        lease_ms: u64,
        notify: bool,
        driver_padding: usize,
    ) -> Self {
        let net = Network::new();
        let db = Arc::new(MiniDb::with_clock("fleetdb", net.clock().clone()));
        {
            let mut s = db.admin_session();
            db.exec(&mut s, "CREATE TABLE load (id INTEGER)").unwrap();
        }
        net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))
            .unwrap();
        let server = attach_in_database(
            &net,
            db,
            Addr::new("db1", DRIVOLUTION_PORT),
            ServerConfig {
                default_transfer: TransferMethod::Checksum,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        server
            .install_driver(&record(1, 1, DriverVersion::new(1, 0, 0), driver_padding))
            .unwrap();
        server
            .add_rule(
                &PermissionRule::any(DriverId(1))
                    .with_lease_ms(lease_ms as i64)
                    .with_transfer(TransferMethod::Any)
                    .with_policies(RenewPolicy::Renew, ExpirationPolicy::AfterCommit),
            )
            .unwrap();
        let mut clients = Vec::with_capacity(n_clients);
        for i in 0..n_clients {
            let mut config = BootloaderConfig::same_host();
            if notify {
                config = config.with_notify_channel();
            }
            clients.push(Bootloader::new(
                &net,
                Addr::new(format!("app{i:04}"), 1),
                config,
            ));
        }
        FleetSim {
            net,
            server,
            drv_addr: Addr::new("db1", DRIVOLUTION_PORT),
            clients,
            mirrors: Vec::new(),
            url: DbUrl::direct(Addr::new("db1", 5432), "fleetdb"),
            lease_ms,
        }
    }

    /// Builds a CDN-style multi-zone fleet: the database (and primary
    /// Drivolution server) lives in `zones[0]`, every zone gets a depot
    /// mirror (`mirror-<zone>:1071`) registered via the announce
    /// protocol, and the `n_clients` depot-equipped clients are placed
    /// round-robin across zones. Links cost `same_zone_ms`/`cross_zone_ms`
    /// one-way against the virtual clock.
    ///
    /// # Panics
    ///
    /// Panics when `zones` is empty.
    pub fn build_cdn(
        n_clients: usize,
        lease_ms: u64,
        zones: &[&str],
        driver_padding: usize,
        same_zone_ms: u64,
        cross_zone_ms: u64,
    ) -> Self {
        assert!(!zones.is_empty(), "a CDN fleet needs at least one zone");
        let mut sim = Self::build_with_driver_size(0, lease_ms, false, driver_padding);
        sim.net.with_topology(|t| {
            t.set_default_latency(same_zone_ms, cross_zone_ms);
            t.place("db1", zones[0]);
        });
        for zone in zones {
            let host = format!("mirror-{zone}");
            sim.net.with_topology(|t| t.place(host.clone(), *zone));
            let mirror = MirrorDepot::launch(&sim.net, Addr::new(host, 1071), sim.drv_addr.clone())
                .expect("mirror bind");
            mirror.heartbeat().expect("mirror heartbeat");
            sim.mirrors.push(mirror);
        }
        for i in 0..n_clients {
            let host = format!("app{i:04}");
            let zone = zones[i % zones.len()];
            sim.net.with_topology(|t| t.place(host.clone(), zone));
            let mut config = BootloaderConfig::same_host()
                .trusting(sim.server.certificate())
                .with_depot(DriverDepot::in_memory());
            for m in &sim.mirrors {
                config = config.trusting(m.certificate());
            }
            sim.clients
                .push(Bootloader::new(&sim.net, Addr::new(host, 1), config));
        }
        sim
    }

    /// The simulated network (clock, stats, faults).
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The Drivolution server.
    pub fn server(&self) -> &Arc<DrivolutionServer> {
        &self.server
    }

    /// The client bootloaders.
    pub fn clients(&self) -> &[Arc<Bootloader>] {
        &self.clients
    }

    /// The per-zone depot mirrors (empty outside
    /// [`FleetSim::build_cdn`]).
    pub fn mirrors(&self) -> &[Arc<MirrorDepot>] {
        &self.mirrors
    }

    /// Heartbeats every mirror, ignoring failures (a mirror taken down
    /// by fault injection simply misses its beats and gets
    /// quarantined).
    pub fn heartbeat_mirrors(&self) {
        for m in &self.mirrors {
            let _ = m.heartbeat();
        }
    }

    /// Bootstraps every client (each downloads v1 once).
    pub fn bootstrap_all(&self) {
        for (i, c) in self.clients.iter().enumerate() {
            let props = ConnectProps::user("admin", "admin");
            let conn = c.connect(&self.url, &props).unwrap_or_else(|e| {
                panic!("client {i} failed to bootstrap: {e}");
            });
            drop(conn); // connection closed; driver stays loaded
        }
    }

    /// Publishes driver v2 and routes the fleet to it. With `push`, also
    /// notifies dedicated channels.
    pub fn publish_upgrade(&self, push: bool) {
        self.publish(2, DriverVersion::new(2, 0, 0), 0, push);
    }

    /// Publishes driver `id` at `version` (with `driver_padding` bytes
    /// of payload) and routes the fleet to it, revoking the previous
    /// driver's permissions. With `push`, also notifies dedicated
    /// channels.
    pub fn publish(&self, id: i64, version: DriverVersion, driver_padding: usize, push: bool) {
        self.server
            .install_driver(&record(id, id as u16, version, driver_padding))
            .unwrap();
        self.server
            .store()
            .remove_permissions(DriverId(id - 1))
            .unwrap();
        self.server
            .add_rule(
                &PermissionRule::any(DriverId(id))
                    .with_lease_ms(self.lease_ms as i64)
                    .with_transfer(TransferMethod::Any)
                    .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
            )
            .unwrap();
        if push {
            self.server.notify_upgrade("fleetdb");
        }
    }

    /// Fraction of clients running `version`.
    pub fn fraction_on(&self, version: DriverVersion) -> f64 {
        let n = self
            .clients
            .iter()
            .filter(|c| c.active_version() == Some(version))
            .count();
        n as f64 / self.clients.len().max(1) as f64
    }

    /// Advances virtual time in `step_ms` increments, polling every
    /// client each step, until all run v2 or `max_ms` elapses.
    pub fn run_until_upgraded(&self, step_ms: u64, max_ms: u64) -> PropagationResult {
        let start = self.net.clock().now_ms();
        let base_stats = self.net.stats().for_addr(&self.drv_addr);
        let mut polls = 0;
        let target = DriverVersion::new(2, 0, 0);
        loop {
            self.heartbeat_mirrors();
            for c in &self.clients {
                let _ = c.poll();
                polls += 1;
            }
            if self.fraction_on(target) >= 1.0 {
                break;
            }
            if self.net.clock().now_ms() - start >= max_ms {
                break;
            }
            self.net.clock().advance_ms(step_ms);
        }
        let end_stats = self.net.stats().for_addr(&self.drv_addr);
        PropagationResult {
            time_to_full_upgrade_ms: self.net.clock().now_ms() - start,
            server_requests: end_stats.requests - base_stats.requests,
            server_bytes: (end_stats.bytes_in + end_stats.bytes_out)
                - (base_stats.bytes_in + base_stats.bytes_out),
            polls,
        }
    }

    /// Runs `duration_ms` of steady-state lease maintenance (no upgrade)
    /// and reports the Drivolution-server traffic — the "higher traffic
    /// to the Drivolution Server" side of the §3.2 tradeoff.
    pub fn run_steady_state(&self, step_ms: u64, duration_ms: u64) -> PropagationResult {
        let start = self.net.clock().now_ms();
        let base_stats = self.net.stats().for_addr(&self.drv_addr);
        let mut polls = 0;
        while self.net.clock().now_ms() - start < duration_ms {
            self.net.clock().advance_ms(step_ms);
            self.heartbeat_mirrors();
            for c in &self.clients {
                let _ = c.poll();
                polls += 1;
            }
        }
        let end_stats = self.net.stats().for_addr(&self.drv_addr);
        PropagationResult {
            time_to_full_upgrade_ms: duration_ms,
            server_requests: end_stats.requests - base_stats.requests,
            server_bytes: (end_stats.bytes_in + end_stats.bytes_out)
                - (base_stats.bytes_in + base_stats.bytes_out),
            polls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINUTE: u64 = 60_000;

    #[test]
    fn fleet_bootstraps_and_upgrades_via_leases() {
        let sim = FleetSim::build(5, 10 * MINUTE, false);
        sim.bootstrap_all();
        assert_eq!(sim.fraction_on(DriverVersion::new(1, 0, 0)), 1.0);
        sim.publish_upgrade(false);
        let r = sim.run_until_upgraded(MINUTE, 60 * MINUTE);
        assert_eq!(sim.fraction_on(DriverVersion::new(2, 0, 0)), 1.0);
        // Propagation bounded by one lease.
        assert!(r.time_to_full_upgrade_ms <= 10 * MINUTE);
        assert!(r.server_requests >= 5, "every client re-requested");
    }

    #[test]
    fn push_channel_upgrades_immediately() {
        let sim = FleetSim::build(5, 60 * MINUTE, true);
        sim.bootstrap_all();
        sim.publish_upgrade(true);
        let r = sim.run_until_upgraded(MINUTE, 120 * MINUTE);
        // With push, the fleet converges on the first poll sweep — no
        // waiting for lease expiry.
        assert_eq!(sim.fraction_on(DriverVersion::new(2, 0, 0)), 1.0);
        assert!(r.time_to_full_upgrade_ms <= MINUTE);
    }

    #[test]
    fn cdn_fleet_upgrades_from_same_zone_mirrors() {
        let zones = ["za", "zb", "zc"];
        let sim = FleetSim::build_cdn(6, 10 * MINUTE, &zones, 64 * 1024, 1, 25);
        assert_eq!(sim.mirrors().len(), 3);
        assert_eq!(sim.server().mirror_directory().len(), 3);
        sim.bootstrap_all();
        sim.publish(2, DriverVersion::new(2, 0, 0), 64 * 1024, false);
        sim.run_until_upgraded(MINUTE, 60 * MINUTE);
        assert_eq!(sim.fraction_on(DriverVersion::new(2, 0, 0)), 1.0);
        // Every delta chunk travelled inside the client's own zone, and
        // the mirrors (not the primary) carried the bulk traffic.
        let (same, cross) = sim.clients().iter().fold((0u64, 0u64), |(s, c), b| {
            let st = b.stats();
            (s + st.same_zone_chunk_bytes, c + st.cross_zone_chunk_bytes)
        });
        assert!(same > 0, "no chunk bytes accounted");
        assert_eq!(cross, 0, "cross-zone chunk bytes on a healthy fleet");
        assert!(sim.mirrors().iter().all(|m| m.stats().chunks_served > 0));
        assert_eq!(
            sim.clients()
                .iter()
                .map(|c| c.stats().mirror_fallbacks)
                .sum::<u64>(),
            0
        );
    }

    #[test]
    fn shorter_leases_mean_more_server_traffic() {
        let short = FleetSim::build(4, 5 * MINUTE, false);
        short.bootstrap_all();
        let r_short = short.run_steady_state(MINUTE, 120 * MINUTE);

        let long = FleetSim::build(4, 60 * MINUTE, false);
        long.bootstrap_all();
        let r_long = long.run_steady_state(MINUTE, 120 * MINUTE);

        assert!(
            r_short.server_requests > r_long.server_requests * 2,
            "short={} long={}",
            r_short.server_requests,
            r_long.server_requests
        );
    }
}
