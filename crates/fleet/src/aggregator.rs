//! Fleet-side renewal aggregation: instead of every client renewing its
//! lease with its own request (one frame per client per beat — the
//! per-request loop that dominated the 10k-client rollout bench), a
//! per-zone aggregator collects the renewals due in the same scheduler
//! tick and sends the server one `RENEW_BATCH` frame. The server answers
//! with one `OFFER_BATCH`, and each reply is applied to its contributing
//! bootloader exactly as an individually exchanged renewal would have
//! been. Entries carry each client's own host, so license seats, rollout
//! wave targeting, and lease logging still attribute to the client, not
//! the aggregator.

use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;

use netsim::{Addr, Network, TaskControl, TaskHandle};

use drivolution_bootloader::Bootloader;
use drivolution_core::proto::DrvMsg;

/// Counters exposed for the batching benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// `RENEW_BATCH` frames sent (ticks with at least one due renewal).
    pub batch_frames: u64,
    /// Renewal entries coalesced into those frames.
    pub coalesced_renewals: u64,
    /// Ticks where no client had a renewal due (no frame sent).
    pub empty_ticks: u64,
    /// Batch exchanges that failed at the network level or came back
    /// malformed (every contributor keeps its driver, like an
    /// individually failed renewal).
    pub failed_batches: u64,
}

/// Coalesces same-tick lease renewals from a set of bootloaders into one
/// `RENEW_BATCH` frame against one server. Build one per zone with
/// [`RenewalAggregator::launch`]; clients under an aggregator run
/// [`drivolution_bootloader::LifecyclePolicy::manual`] so the aggregator
/// tick is their only renewal driver.
pub struct RenewalAggregator {
    net: Network,
    local: Addr,
    server: Addr,
    clients: Mutex<Vec<Weak<Bootloader>>>,
    stats: Mutex<AggregatorStats>,
    task: Mutex<Option<TaskHandle>>,
}

impl std::fmt::Debug for RenewalAggregator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RenewalAggregator")
            .field("local", &self.local)
            .field("server", &self.server)
            .finish()
    }
}

impl RenewalAggregator {
    /// Creates an aggregator speaking from `local` to the Drivolution
    /// server at `server` and registers its tick on the network's
    /// scheduler at `every`. The task holds only a weak reference and
    /// retires itself once the aggregator is dropped.
    pub fn launch(
        net: &Network,
        local: Addr,
        server: Addr,
        clients: &[Arc<Bootloader>],
        every: Duration,
    ) -> Arc<Self> {
        let agg = Arc::new(RenewalAggregator {
            net: net.clone(),
            local: local.clone(),
            server,
            clients: Mutex::new(clients.iter().map(Arc::downgrade).collect()),
            stats: Mutex::new(AggregatorStats::default()),
            task: Mutex::new(None),
        });
        let me = Arc::downgrade(&agg);
        let handle = net.scheduler().every(
            every,
            Duration::ZERO,
            format!("renew-aggregator:{}", local.host()),
            move || {
                let Some(agg) = me.upgrade() else {
                    return Ok(TaskControl::Done);
                };
                agg.tick();
                Ok(TaskControl::Continue)
            },
        );
        *agg.task.lock() = Some(handle);
        agg
    }

    /// Adds a client to this aggregator's pool.
    pub fn add_client(&self, client: &Arc<Bootloader>) {
        self.clients.lock().push(Arc::downgrade(client));
    }

    /// Snapshot of the aggregator's counters.
    pub fn stats(&self) -> AggregatorStats {
        *self.stats.lock()
    }

    /// The aggregator's scheduler task, for cadence introspection.
    pub fn task(&self) -> Option<TaskHandle> {
        self.task.lock().clone()
    }

    /// One coalescing pass: asks every live client for its due renewal,
    /// sends the collected entries as a single `RENEW_BATCH`, and applies
    /// the server's `OFFER_BATCH` replies back to the contributors in
    /// order. Returns the number of renewals carried.
    pub fn tick(&self) -> usize {
        self.stats.lock().ticks += 1;
        let mut contributors: Vec<Arc<Bootloader>> = Vec::new();
        let mut entries = Vec::new();
        {
            let mut clients = self.clients.lock();
            clients.retain(|w| {
                let Some(c) = w.upgrade() else { return false };
                if let Some(entry) = c.batch_renewal_entry() {
                    entries.push(entry);
                    contributors.push(c);
                }
                true
            });
        }
        if entries.is_empty() {
            self.stats.lock().empty_ticks += 1;
            return 0;
        }
        let n = entries.len();
        {
            let mut st = self.stats.lock();
            st.batch_frames += 1;
            st.coalesced_renewals += n as u64;
        }
        let frame = DrvMsg::RenewBatch { entries }.encode();
        let replies = match self.net.request(&self.local, &self.server, frame) {
            Ok(raw) => match DrvMsg::decode(raw) {
                Ok(DrvMsg::OfferBatch { replies }) if replies.len() == n => replies,
                _ => {
                    self.stats.lock().failed_batches += 1;
                    return n;
                }
            },
            Err(_) => {
                // Network failure: like an individually failed renewal,
                // every contributor keeps its current driver.
                self.stats.lock().failed_batches += 1;
                return n;
            }
        };
        for (client, reply) in contributors.iter().zip(replies) {
            client.apply_batch_offer(&self.server, reply);
        }
        n
    }
}
