//! On-demand driver assembly (paper §5.4.1): serve each client a driver
//! with exactly the feature set it needs, generated dynamically by
//! aggregating packages.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use drivolution_core::image::Extension;
use drivolution_core::{DriverImage, DrvError, DrvResult};

/// A catalog of extension packages the server can graft onto base driver
/// images (the Oracle NLS packages, PostGIS extensions, DB2 Kerberos
/// libraries of the paper).
#[derive(Debug, Default)]
pub struct Assembler {
    packages: RwLock<BTreeMap<String, Extension>>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Registers an extension package under its stable name.
    pub fn register(&self, ext: Extension) {
        self.packages.write().insert(ext.name(), ext);
    }

    /// Registered package names, sorted.
    pub fn package_names(&self) -> Vec<String> {
        self.packages.read().keys().cloned().collect()
    }

    /// Looks up a package.
    pub fn package(&self, name: &str) -> Option<Extension> {
        self.packages.read().get(name).cloned()
    }

    /// Returns `image` with `ext_name` grafted on — what the server sends
    /// when a bootloader traps the ClassNotFound analog and asks for the
    /// missing package.
    ///
    /// # Errors
    ///
    /// [`DrvError::NoMatchingDriver`] when the package is not in the
    /// catalog.
    pub fn with_extension(&self, image: &DriverImage, ext_name: &str) -> DrvResult<DriverImage> {
        let ext = self.package(ext_name).ok_or_else(|| {
            DrvError::NoMatchingDriver(format!("no extension package {ext_name:?}"))
        })?;
        let mut out = image.clone();
        if out.extension(ext_name).is_none() {
            out.extensions.push(ext);
        }
        Ok(out)
    }

    /// Customizes a base image to a client's requested options:
    ///
    /// * `locale=<code>` keeps only the matching NLS package (plus adds it
    ///   from the catalog if absent) — clients don't download "an
    ///   unnecessary large driver that contains features not used by the
    ///   application";
    /// * `gis=true` adds the GIS package; absence strips it;
    /// * `kerberos=true` adds the Kerberos package; absence strips it.
    ///
    /// # Errors
    ///
    /// [`DrvError::NoMatchingDriver`] when a requested package is neither
    /// bundled nor in the catalog.
    pub fn customize(
        &self,
        image: &DriverImage,
        options: &[(String, String)],
    ) -> DrvResult<DriverImage> {
        let get = |k: &str| {
            options
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        let mut out = image.clone();
        let locale = get("locale");
        let want_gis = get("gis") == Some("true");
        let want_kerberos = get("kerberos") == Some("true");

        out.extensions.retain(|e| match e {
            Extension::Nls { locale: l } => locale == Some(l.as_str()),
            Extension::Gis => want_gis,
            Extension::Kerberos { .. } => want_kerberos,
        });
        if let Some(l) = locale {
            let name = format!("nls-{l}");
            if out.extension(&name).is_none() {
                let ext = self.package(&name).ok_or_else(|| {
                    DrvError::NoMatchingDriver(format!("no NLS package for locale {l}"))
                })?;
                out.extensions.push(ext);
            }
        }
        if want_gis && out.extension("gis").is_none() {
            let ext = self
                .package("gis")
                .ok_or_else(|| DrvError::NoMatchingDriver("no GIS package".into()))?;
            out.extensions.push(ext);
        }
        if want_kerberos && out.extension("kerberos").is_none() {
            let ext = self
                .package("kerberos")
                .ok_or_else(|| DrvError::NoMatchingDriver("no Kerberos package".into()))?;
            out.extensions.push(ext);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivolution_core::DriverVersion;

    fn assembler() -> Assembler {
        let a = Assembler::new();
        a.register(Extension::Gis);
        a.register(Extension::Nls {
            locale: "fr_FR".into(),
        });
        a.register(Extension::Nls {
            locale: "de_DE".into(),
        });
        a.register(Extension::Kerberos {
            realm_secret: "realm".into(),
        });
        a
    }

    fn base() -> DriverImage {
        DriverImage::new("base", DriverVersion::new(1, 0, 0), 2)
    }

    #[test]
    fn catalog_listing() {
        let a = assembler();
        assert_eq!(
            a.package_names(),
            vec!["gis", "kerberos", "nls-de_DE", "nls-fr_FR"]
        );
    }

    #[test]
    fn graft_extension_is_idempotent() {
        let a = assembler();
        let img = a.with_extension(&base(), "gis").unwrap();
        assert!(img.extension("gis").is_some());
        let img2 = a.with_extension(&img, "gis").unwrap();
        assert_eq!(img2.extensions.len(), 1);
        assert!(a.with_extension(&base(), "nosuch").is_err());
    }

    #[test]
    fn customize_keeps_only_requested_locale() {
        let a = assembler();
        let mut img = base();
        img.extensions = vec![
            Extension::Nls {
                locale: "fr_FR".into(),
            },
            Extension::Nls {
                locale: "de_DE".into(),
            },
            Extension::Gis,
        ];
        let out = a
            .customize(&img, &[("locale".into(), "fr_FR".into())])
            .unwrap();
        // Only the French NLS remains; GIS stripped (not requested).
        assert_eq!(out.extensions.len(), 1);
        assert!(out.extension("nls-fr_FR").is_some());
    }

    #[test]
    fn customize_adds_from_catalog() {
        let a = assembler();
        let out = a
            .customize(
                &base(),
                &[
                    ("gis".into(), "true".into()),
                    ("locale".into(), "de_DE".into()),
                    ("kerberos".into(), "true".into()),
                ],
            )
            .unwrap();
        assert!(out.extension("gis").is_some());
        assert!(out.extension("nls-de_DE").is_some());
        assert!(out.extension("kerberos").is_some());
    }

    #[test]
    fn unknown_locale_is_an_error() {
        let a = assembler();
        assert!(a
            .customize(&base(), &[("locale".into(), "xx_XX".into())])
            .is_err());
    }

    #[test]
    fn no_options_strips_everything_optional() {
        let a = assembler();
        let mut img = base();
        img.extensions = vec![Extension::Gis];
        let out = a.customize(&img, &[]).unwrap();
        assert!(out.extensions.is_empty());
    }
}
