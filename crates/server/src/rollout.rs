//! Staged-rollout control plane: a wave orchestrator with health gates
//! and automatic rollback.
//!
//! The paper makes driver upgrades a one-INSERT operation; at fleet
//! scale the missing piece is *blast-radius control*. The
//! [`RolloutOrchestrator`] applies the zero-downtime upgrade discipline
//! of Saur et al. (canary → observe → widen → roll back on regression)
//! to driver distribution:
//!
//! * the registered fleet is [partitioned](partition) into a canary
//!   wave, one or more percentage waves, and a final full-fleet wave;
//! * the server resolves every request against the orchestrator, so
//!   only hosts whose wave has opened are offered the new driver —
//!   everyone else keeps renewing the prior one;
//! * clients report driver activation outcomes
//!   (`ACTIVATION_REPORT`), and each wave advance is gated on a
//!   minimum success fraction and a maximum error rate over the wave's
//!   observation window;
//! * a tripped gate halts the rollout and rolls every upgraded client
//!   back to the prior version at its next renewal. Client depots still
//!   hold the prior image, so rollback is a zero-transfer revalidation
//!   — no bytes move.
//!
//! The orchestrator drives itself as a `netsim::sched` task: one
//! periodic evaluation tick owns wave-advance timing and gate checks,
//! and retires itself once the rollout settles (complete or rolled
//! back).

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;

use netsim::{Clock, Network, TaskControl, TaskHandle};

use drivolution_core::DriverId;

/// How the fleet is split into waves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RolloutPlan {
    /// Number of canary hosts in the first wave (clamped to the fleet
    /// size, minimum 1).
    pub canary: usize,
    /// Percentage waves after the canary: each entry upgrades
    /// `ceil(fleet * pct / 100)` further hosts. Whatever remains forms
    /// the final full-fleet wave.
    pub wave_pcts: Vec<u32>,
}

impl Default for RolloutPlan {
    fn default() -> Self {
        RolloutPlan {
            canary: 1,
            wave_pcts: vec![10, 25],
        }
    }
}

/// Health-gate and pacing knobs.
#[derive(Clone, Debug)]
pub struct RolloutConfig {
    /// Cadence of the orchestrator's evaluation task.
    pub evaluate_every: Duration,
    /// Minimum time a wave stays open (its observation window) before
    /// it can pass its gate.
    pub observe: Duration,
    /// Fraction of a wave's members that must report successful
    /// activation before the next wave opens.
    pub min_success_fraction: f64,
    /// Maximum tolerated activation error rate (`err / (ok + err)`).
    /// Crossing it halts the rollout and triggers rollback.
    pub max_error_rate: f64,
    /// Reports required before the error gate can trip, so a single
    /// early failure on a tiny sample does not halt a healthy rollout.
    pub min_reports: u64,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            evaluate_every: Duration::from_secs(5),
            observe: Duration::from_secs(60),
            min_success_fraction: 0.9,
            max_error_rate: 0.05,
            min_reports: 3,
        }
    }
}

/// Where the rollout currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RolloutPhase {
    /// Wave `i` (0 = canary) is open; earlier waves are upgraded.
    Wave(usize),
    /// Every wave passed its gate: the whole fleet targets the new
    /// driver.
    Complete,
    /// A health gate tripped while the given wave was open; every host
    /// is rolled back to the prior driver.
    RolledBack {
        /// The wave whose gate tripped.
        failed_wave: usize,
    },
}

/// Per-wave snapshot for status reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaveStatus {
    /// Hosts in this wave.
    pub members: usize,
    /// Distinct members that reported successful activation.
    pub ok: usize,
    /// Distinct members that reported failed activation.
    pub err: usize,
    /// Virtual time the wave opened, if it has.
    pub opened_at_ms: Option<u64>,
}

/// Full status snapshot of a rollout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RolloutStatus {
    /// Current phase.
    pub phase: RolloutPhase,
    /// Per-wave counters, in wave order.
    pub waves: Vec<WaveStatus>,
    /// Virtual time the rollout completed, if it has.
    pub completed_at_ms: Option<u64>,
    /// Virtual time a gate tripped, if one has.
    pub halted_at_ms: Option<u64>,
    /// Human-readable reason for a halt.
    pub halt_reason: Option<String>,
}

/// Partitions `hosts` into rollout waves: canary first, then one wave
/// per percentage, then the remainder as the full-fleet wave. Hosts are
/// sorted and deduplicated, so every registered host lands in exactly
/// one wave and the canary is disjoint from all later waves, for any
/// fleet size and percentage schedule. Empty waves are dropped.
pub fn partition(hosts: &[String], plan: &RolloutPlan) -> Vec<Vec<String>> {
    let mut sorted: Vec<String> = hosts.to_vec();
    sorted.sort();
    sorted.dedup();
    let n = sorted.len();
    if n == 0 {
        return Vec::new();
    }
    let mut waves = Vec::new();
    let canary = plan.canary.clamp(1, n);
    let mut offset = 0usize;
    waves.push(sorted[..canary].to_vec());
    offset += canary;
    for pct in &plan.wave_pcts {
        if offset >= n {
            break;
        }
        // ceil(n * pct / 100), at least one host, at most the remainder.
        let take = ((n as u64 * u64::from(*pct)).div_ceil(100) as usize)
            .max(1)
            .min(n - offset);
        waves.push(sorted[offset..offset + take].to_vec());
        offset += take;
    }
    if offset < n {
        waves.push(sorted[offset..].to_vec());
    }
    waves
}

struct WaveState {
    members: Vec<String>,
    opened_at_ms: Option<u64>,
    ok_hosts: HashSet<String>,
    err_hosts: HashSet<String>,
}

struct RolloutState {
    waves: Vec<WaveState>,
    /// host → wave index, for O(1) resolve and report routing.
    member_wave: HashMap<String, usize>,
    phase: RolloutPhase,
    completed_at_ms: Option<u64>,
    halted_at_ms: Option<u64>,
    halt_reason: Option<String>,
}

/// Function invoked (with the rollout's database) exactly once when a
/// health gate trips and the rollout rolls back.
type HaltHook = Box<dyn Fn(&str) + Send + Sync>;

/// Orchestrates one staged rollout from a prior driver to a new one
/// over a fixed registered fleet. Attach it to a
/// [`DrivolutionServer`](crate::DrivolutionServer) with
/// [`attach_rollout`](crate::DrivolutionServer::attach_rollout); the
/// server then resolves every offer through
/// [`resolve`](Self::resolve) and feeds activation reports back via
/// [`report_activation`](Self::report_activation).
pub struct RolloutOrchestrator {
    database: String,
    from_id: DriverId,
    to_id: DriverId,
    config: RolloutConfig,
    clock: Clock,
    state: Mutex<RolloutState>,
    task: Mutex<Option<TaskHandle>>,
    halt_hook: Mutex<Option<HaltHook>>,
}

impl std::fmt::Debug for RolloutOrchestrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("RolloutOrchestrator")
            .field("database", &self.database)
            .field("from", &self.from_id)
            .field("to", &self.to_id)
            .field("phase", &st.phase)
            .field("waves", &st.waves.len())
            .finish()
    }
}

impl RolloutOrchestrator {
    /// Creates an orchestrator with the canary wave already open (at
    /// the clock's current time). Prefer [`launch`](Self::launch),
    /// which also registers the evaluation task.
    pub fn new(
        clock: Clock,
        database: impl Into<String>,
        from_id: DriverId,
        to_id: DriverId,
        hosts: &[String],
        plan: &RolloutPlan,
        config: RolloutConfig,
    ) -> Self {
        let waves: Vec<WaveState> = partition(hosts, plan)
            .into_iter()
            .map(|members| WaveState {
                members,
                opened_at_ms: None,
                ok_hosts: HashSet::new(),
                err_hosts: HashSet::new(),
            })
            .collect();
        let mut member_wave = HashMap::new();
        for (i, w) in waves.iter().enumerate() {
            for h in &w.members {
                member_wave.insert(h.clone(), i);
            }
        }
        let now = clock.now_ms();
        let mut state = RolloutState {
            waves,
            member_wave,
            phase: RolloutPhase::Complete,
            completed_at_ms: None,
            halted_at_ms: None,
            halt_reason: None,
        };
        if state.waves.is_empty() {
            // An empty fleet has nothing to stage.
            state.completed_at_ms = Some(now);
        } else {
            state.waves[0].opened_at_ms = Some(now);
            state.phase = RolloutPhase::Wave(0);
        }
        RolloutOrchestrator {
            database: database.into(),
            from_id,
            to_id,
            config,
            clock,
            state: Mutex::new(state),
            task: Mutex::new(None),
            halt_hook: Mutex::new(None),
        }
    }

    /// Creates the orchestrator and registers its evaluation tick on
    /// the network's scheduler. The task holds only a weak reference
    /// and retires itself once the rollout settles (or the orchestrator
    /// is dropped).
    pub fn launch(
        net: &Network,
        database: impl Into<String>,
        from_id: DriverId,
        to_id: DriverId,
        hosts: &[String],
        plan: &RolloutPlan,
        config: RolloutConfig,
    ) -> Arc<Self> {
        let every = config.evaluate_every;
        let ro = Arc::new(Self::new(
            net.clock().clone(),
            database,
            from_id,
            to_id,
            hosts,
            plan,
            config,
        ));
        let weak: Weak<Self> = Arc::downgrade(&ro);
        let handle =
            net.scheduler().every(
                every,
                Duration::ZERO,
                "rollout-evaluate",
                move || match weak.upgrade() {
                    Some(ro) => {
                        ro.evaluate();
                        if ro.is_settled() {
                            Ok(TaskControl::Done)
                        } else {
                            Ok(TaskControl::Continue)
                        }
                    }
                    None => Ok(TaskControl::Done),
                },
            );
        *ro.task.lock() = Some(handle);
        ro
    }

    /// The database this rollout governs.
    pub fn database(&self) -> &str {
        &self.database
    }

    /// The driver being rolled out.
    pub fn target(&self) -> DriverId {
        self.to_id
    }

    /// The prior driver (the rollback target).
    pub fn prior(&self) -> DriverId {
        self.from_id
    }

    /// Whether `id` is one of the two drivers this rollout manages.
    pub fn manages(&self, id: DriverId) -> bool {
        id == self.from_id || id == self.to_id
    }

    /// The driver `host` should be offered right now: the new driver
    /// once the host's wave has opened (and the rollout has not rolled
    /// back), the prior driver otherwise. Hosts outside the registered
    /// fleet follow the fleet: prior driver until the rollout
    /// completes.
    pub fn resolve(&self, host: &str) -> DriverId {
        let st = self.state.lock();
        match st.phase {
            RolloutPhase::Complete => self.to_id,
            RolloutPhase::RolledBack { .. } => self.from_id,
            RolloutPhase::Wave(open) => match st.member_wave.get(host) {
                Some(&w) if w <= open => self.to_id,
                _ => self.from_id,
            },
        }
    }

    /// Records a client's activation report for the rollout target.
    /// Reports about other drivers (including the rollback target) and
    /// from unregistered hosts are ignored; repeat reports from one
    /// host count once (latest outcome wins is *not* needed — first
    /// outcome sticks).
    pub fn report_activation(&self, host: &str, driver: DriverId, ok: bool) {
        if driver != self.to_id {
            return;
        }
        let mut st = self.state.lock();
        let Some(&w) = st.member_wave.get(host) else {
            return;
        };
        let wave = &mut st.waves[w];
        if wave.ok_hosts.contains(host) || wave.err_hosts.contains(host) {
            return;
        }
        if ok {
            wave.ok_hosts.insert(host.to_string());
        } else {
            wave.err_hosts.insert(host.to_string());
        }
    }

    /// Installs the rollback hook, replacing any previous one. It fires
    /// exactly once, outside the state lock, when a health gate trips —
    /// [`attach_rollout`](crate::DrivolutionServer::attach_rollout) wires
    /// it to an upgrade notice so clients with dedicated channels
    /// re-renew (and drain the failed version) immediately instead of at
    /// their next lease expiry.
    pub fn on_rollback<F>(&self, hook: F)
    where
        F: Fn(&str) + Send + Sync + 'static,
    {
        *self.halt_hook.lock() = Some(Box::new(hook));
    }

    fn fire_halt_hook(&self) {
        let hook = self.halt_hook.lock();
        if let Some(h) = &*hook {
            h(&self.database);
        }
    }

    /// Whether the rollout reached a terminal phase.
    pub fn is_settled(&self) -> bool {
        !matches!(self.state.lock().phase, RolloutPhase::Wave(_))
    }

    /// One evaluation tick: check the open wave's health gate, halt and
    /// roll back on a tripped gate, advance (or complete) once the
    /// observation window has elapsed and the success gate passes.
    /// Normally driven by the scheduler task [`launch`](Self::launch)
    /// registers; exposed for direct-drive tests.
    pub fn evaluate(&self) {
        let now = self.clock.now_ms();
        let mut st = self.state.lock();
        let RolloutPhase::Wave(open) = st.phase else {
            return;
        };

        // Error gate first, over every opened wave: a late regression
        // reported by an earlier wave must halt the rollout too.
        let (mut ok_total, mut err_total) = (0u64, 0u64);
        for w in st.waves.iter().take(open + 1) {
            ok_total += w.ok_hosts.len() as u64;
            err_total += w.err_hosts.len() as u64;
        }
        let reports = ok_total + err_total;
        if reports >= self.config.min_reports
            && err_total as f64 > self.config.max_error_rate * reports as f64
        {
            st.phase = RolloutPhase::RolledBack { failed_wave: open };
            st.halted_at_ms = Some(now);
            st.halt_reason = Some(format!(
                "activation error rate {err_total}/{reports} exceeded {:.2}% in wave {open}",
                self.config.max_error_rate * 100.0
            ));
            drop(st);
            self.fire_halt_hook();
            return;
        }

        // Advance gate: observation window elapsed and enough of the
        // open wave activated successfully.
        let wave = &st.waves[open];
        let opened_at = wave.opened_at_ms.unwrap_or(now);
        if now.saturating_sub(opened_at) < self.config.observe.as_millis() as u64 {
            return;
        }
        let need = (wave.members.len() as f64 * self.config.min_success_fraction).ceil() as usize;
        if wave.ok_hosts.len() < need {
            return;
        }
        if open + 1 < st.waves.len() {
            st.waves[open + 1].opened_at_ms = Some(now);
            st.phase = RolloutPhase::Wave(open + 1);
        } else {
            st.phase = RolloutPhase::Complete;
            st.completed_at_ms = Some(now);
        }
    }

    /// Status snapshot (phase, per-wave counters, timing).
    pub fn status(&self) -> RolloutStatus {
        let st = self.state.lock();
        RolloutStatus {
            phase: st.phase,
            waves: st
                .waves
                .iter()
                .map(|w| WaveStatus {
                    members: w.members.len(),
                    ok: w.ok_hosts.len(),
                    err: w.err_hosts.len(),
                    opened_at_ms: w.opened_at_ms,
                })
                .collect(),
            completed_at_ms: st.completed_at_ms,
            halted_at_ms: st.halted_at_ms,
            halt_reason: st.halt_reason.clone(),
        }
    }
}

impl Drop for RolloutOrchestrator {
    fn drop(&mut self) {
        if let Some(h) = self.task.lock().take() {
            h.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("app{i:04}")).collect()
    }

    #[test]
    fn partition_covers_every_host_exactly_once() {
        let fleet = hosts(100);
        let plan = RolloutPlan {
            canary: 2,
            wave_pcts: vec![10, 25],
        };
        let waves = partition(&fleet, &plan);
        assert_eq!(waves.len(), 4);
        assert_eq!(waves[0].len(), 2);
        assert_eq!(waves[1].len(), 10);
        assert_eq!(waves[2].len(), 25);
        assert_eq!(waves[3].len(), 63);
        let mut seen = HashSet::new();
        for w in &waves {
            for h in w {
                assert!(seen.insert(h.clone()), "host {h} in two waves");
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn partition_handles_tiny_fleets_and_oversized_schedules() {
        let waves = partition(
            &hosts(3),
            &RolloutPlan {
                canary: 10,
                wave_pcts: vec![50, 50, 50],
            },
        );
        // Canary swallows the whole fleet.
        assert_eq!(waves, vec![hosts(3)]);
        assert!(partition(&[], &RolloutPlan::default()).is_empty());
    }

    fn rig(n: usize, config: RolloutConfig) -> (RolloutOrchestrator, Clock) {
        let clock = Clock::simulated();
        let ro = RolloutOrchestrator::new(
            clock.clone(),
            "fleetdb",
            DriverId(1),
            DriverId(2),
            &hosts(n),
            &RolloutPlan {
                canary: 1,
                wave_pcts: vec![20, 30],
            },
            config,
        );
        (ro, clock)
    }

    fn report_wave_ok(ro: &RolloutOrchestrator, wave: usize) {
        let st = ro.status();
        let mut offset = 0;
        for w in &st.waves[..wave] {
            offset += w.members;
        }
        for h in &hosts(offset + st.waves[wave].members)[offset..] {
            ro.report_activation(h, DriverId(2), true);
        }
    }

    #[test]
    fn waves_advance_on_healthy_gates_until_complete() {
        let config = RolloutConfig {
            observe: Duration::from_secs(10),
            min_reports: 2,
            ..RolloutConfig::default()
        };
        let (ro, clock) = rig(10, config);
        assert_eq!(ro.status().phase, RolloutPhase::Wave(0));
        // Only the canary resolves to the new driver.
        assert_eq!(ro.resolve("app0000"), DriverId(2));
        assert_eq!(ro.resolve("app0005"), DriverId(1));

        // Gate needs both the window and the success reports.
        clock.advance_ms(11_000);
        ro.evaluate();
        assert_eq!(ro.status().phase, RolloutPhase::Wave(0), "no reports yet");
        report_wave_ok(&ro, 0);
        ro.evaluate();
        assert_eq!(ro.status().phase, RolloutPhase::Wave(1));

        report_wave_ok(&ro, 1);
        ro.evaluate();
        assert_eq!(
            ro.status().phase,
            RolloutPhase::Wave(1),
            "window not elapsed"
        );
        clock.advance_ms(11_000);
        ro.evaluate();
        assert_eq!(ro.status().phase, RolloutPhase::Wave(2));

        report_wave_ok(&ro, 2);
        clock.advance_ms(11_000);
        ro.evaluate();
        report_wave_ok(&ro, 3);
        clock.advance_ms(11_000);
        ro.evaluate();
        let st = ro.status();
        assert_eq!(st.phase, RolloutPhase::Complete);
        assert!(st.completed_at_ms.is_some());
        // Wave open times are nondecreasing.
        let opens: Vec<u64> = st.waves.iter().map(|w| w.opened_at_ms.unwrap()).collect();
        assert!(opens.windows(2).all(|w| w[0] <= w[1]), "{opens:?}");
        assert_eq!(ro.resolve("app0005"), DriverId(2));
        assert!(ro.is_settled());
    }

    #[test]
    fn error_spike_halts_and_rolls_back() {
        let config = RolloutConfig {
            observe: Duration::from_secs(10),
            min_reports: 3,
            max_error_rate: 0.2,
            ..RolloutConfig::default()
        };
        let (ro, clock) = rig(10, config);
        report_wave_ok(&ro, 0);
        clock.advance_ms(11_000);
        ro.evaluate();
        assert_eq!(ro.status().phase, RolloutPhase::Wave(1));
        // Wave 1 (2 members) reports one ok, one failure; with the
        // canary's ok that is 1 err / 3 reports = 33% > 20%.
        ro.report_activation("app0001", DriverId(2), true);
        ro.report_activation("app0002", DriverId(2), false);
        ro.evaluate();
        let st = ro.status();
        assert_eq!(st.phase, RolloutPhase::RolledBack { failed_wave: 1 });
        assert!(st.halted_at_ms.is_some());
        assert!(st.halt_reason.as_deref().unwrap().contains("wave 1"));
        // Everyone — including the already-upgraded canary — resolves
        // back to the prior driver.
        for h in hosts(10) {
            assert_eq!(ro.resolve(&h), DriverId(1));
        }
        assert!(ro.is_settled());
    }

    #[test]
    fn halt_hook_fires_exactly_once_on_gate_trip() {
        let config = RolloutConfig {
            observe: Duration::from_secs(10),
            min_reports: 3,
            max_error_rate: 0.2,
            ..RolloutConfig::default()
        };
        let (ro, clock) = rig(10, config);
        let fired = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let seen = Arc::new(Mutex::new(Vec::new()));
        {
            let fired = fired.clone();
            let seen = seen.clone();
            ro.on_rollback(move |db| {
                fired.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                seen.lock().push(db.to_string());
            });
        }
        report_wave_ok(&ro, 0);
        clock.advance_ms(11_000);
        ro.evaluate();
        assert_eq!(fired.load(std::sync::atomic::Ordering::SeqCst), 0);
        ro.report_activation("app0001", DriverId(2), true);
        ro.report_activation("app0002", DriverId(2), false);
        ro.evaluate();
        assert_eq!(fired.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(seen.lock().as_slice(), ["fleetdb"]);
        // Further evaluations after the rollback must not re-fire.
        ro.evaluate();
        clock.advance_ms(11_000);
        ro.evaluate();
        assert_eq!(fired.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn duplicate_and_foreign_reports_are_ignored() {
        let (ro, _clock) = rig(10, RolloutConfig::default());
        ro.report_activation("app0000", DriverId(2), true);
        ro.report_activation("app0000", DriverId(2), false);
        ro.report_activation("app0000", DriverId(2), true);
        // Reports for the prior driver and from unknown hosts don't count.
        ro.report_activation("app0001", DriverId(1), false);
        ro.report_activation("stranger", DriverId(2), false);
        let st = ro.status();
        assert_eq!(st.waves[0].ok, 1);
        assert_eq!(st.waves[0].err, 0);
        assert_eq!(st.waves.iter().map(|w| w.err).sum::<usize>(), 0);
    }

    #[test]
    fn launch_drives_itself_on_the_scheduler() {
        let net = Network::new();
        let config = RolloutConfig {
            evaluate_every: Duration::from_secs(1),
            observe: Duration::from_secs(5),
            min_reports: 1,
            ..RolloutConfig::default()
        };
        let ro = RolloutOrchestrator::launch(
            &net,
            "fleetdb",
            DriverId(1),
            DriverId(2),
            &hosts(4),
            &RolloutPlan {
                canary: 1,
                wave_pcts: vec![50],
            },
            config,
        );
        // Waves: [app0000], [app0001, app0002], [app0003].
        report_wave_ok(&ro, 0);
        net.run_until(6_000);
        assert_eq!(ro.status().phase, RolloutPhase::Wave(1));
        report_wave_ok(&ro, 1);
        net.run_until(12_000);
        assert_eq!(ro.status().phase, RolloutPhase::Wave(2));
        report_wave_ok(&ro, 2);
        net.run_until(18_000);
        assert_eq!(ro.status().phase, RolloutPhase::Complete);
        // The evaluation task retired itself after settling.
        net.run_until(60_000);
        assert_eq!(net.scheduler().task_count(), 0);
    }
}
