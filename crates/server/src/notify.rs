//! Dedicated-channel hub: push notifications and failure detection
//! (paper §3.2 and §5.4.2).

use parking_lot::Mutex;

use netsim::{Addr, Pipe};

use drivolution_core::DrvNotice;

/// Holds the dedicated pipes bootloaders opened to this server and pushes
/// [`DrvNotice`]s down them.
#[derive(Debug, Default)]
pub struct NotifyHub {
    pipes: Mutex<Vec<(Addr, Pipe)>>,
}

impl NotifyHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        NotifyHub::default()
    }

    /// Registers a freshly accepted pipe.
    pub fn register(&self, from: Addr, pipe: Pipe) {
        self.pipes.lock().push((from, pipe));
    }

    /// Number of live channels.
    pub fn len(&self) -> usize {
        self.pipes.lock().len()
    }

    /// Whether no channel is connected.
    pub fn is_empty(&self) -> bool {
        self.pipes.lock().is_empty()
    }

    /// Pushes a notice to every live channel, pruning broken ones.
    /// Returns the client hosts whose channels were found broken — the
    /// failure-detector signal consumed by the license manager.
    pub fn broadcast(&self, notice: &DrvNotice) -> Vec<String> {
        let mut pipes = self.pipes.lock();
        let mut dead_hosts = Vec::new();
        pipes.retain(|(from, pipe)| {
            if pipe.send(notice.encode()).is_ok() {
                true
            } else {
                dead_hosts.push(from.host().to_string());
                false
            }
        });
        dead_hosts
    }

    /// Drops channels whose peer closed, without sending anything.
    /// Returns the hosts that disappeared.
    pub fn reap_closed(&self) -> Vec<String> {
        let mut pipes = self.pipes.lock();
        let mut dead_hosts = Vec::new();
        pipes.retain(|(from, pipe)| {
            if pipe.is_open() {
                true
            } else {
                dead_hosts.push(from.host().to_string());
                false
            }
        });
        dead_hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe_pair() -> (Pipe, Pipe) {
        Pipe::pair(Addr::new("client", 1), Addr::new("server", 1070))
    }

    #[test]
    fn broadcast_reaches_live_channels() {
        let hub = NotifyHub::new();
        let (client_end, server_end) = pipe_pair();
        hub.register(Addr::new("client", 1), server_end);
        assert_eq!(hub.len(), 1);
        let dead = hub.broadcast(&DrvNotice::DriverAvailable {
            database: "orders".into(),
        });
        assert!(dead.is_empty());
        let msg = client_end.try_recv().unwrap().unwrap();
        assert_eq!(
            DrvNotice::decode(msg).unwrap(),
            DrvNotice::DriverAvailable {
                database: "orders".into()
            }
        );
    }

    #[test]
    fn broken_channels_are_pruned_and_reported() {
        let hub = NotifyHub::new();
        let (client_end, server_end) = pipe_pair();
        hub.register(Addr::new("crashed-host", 1), server_end);
        client_end.close();
        let dead = hub.broadcast(&DrvNotice::DriverRevoked {
            database: "orders".into(),
        });
        assert_eq!(dead, vec!["crashed-host".to_string()]);
        assert!(hub.is_empty());
    }

    #[test]
    fn reap_detects_closures_without_sending() {
        let hub = NotifyHub::new();
        let (client_end, server_end) = pipe_pair();
        hub.register(Addr::new("c1", 1), server_end);
        assert!(hub.reap_closed().is_empty());
        drop(client_end);
        assert_eq!(hub.reap_closed(), vec!["c1".to_string()]);
    }
}
