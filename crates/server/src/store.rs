//! The SQL-backed driver store: the paper's Tables 1–2 as real database
//! tables, queried with the paper's statements (Sample code 1–2).
//!
//! The store is generic over *how* SQL reaches a database:
//! [`EmbeddedExec`] talks to an in-process [`MiniDb`] (in-database and
//! standalone servers), [`RemoteExec`] goes through a legacy RDBC driver
//! connection (the external server of §4.1.3).

use std::sync::Arc;

use parking_lot::Mutex;

use driverkit::Connection;
use drivolution_core::{
    ApiName, ApiVersion, BinaryFormat, ClientIdentity, DriverId, DriverQuery, DriverRecord,
    DriverVersion, DrvError, DrvResult, ExpirationPolicy, PermissionRule, RenewPolicy,
    TransferMethod,
};
use minidb::{MiniDb, Params, QueryResult, RowSet, Value};

/// DDL for the drivers table — the paper's Table 1, verbatim columns.
pub const DRIVERS_DDL: &str = "CREATE TABLE information_schema.drivers (\
 driver_id INTEGER NOT NULL PRIMARY KEY,\
 api_name VARCHAR NOT NULL,\
 api_version_major INTEGER,\
 api_version_minor INTEGER,\
 platform VARCHAR,\
 driver_version_major INTEGER,\
 driver_version_minor INTEGER,\
 driver_version_micro INTEGER,\
 binary_code BLOB NOT NULL,\
 binary_format VARCHAR NOT NULL)";

/// DDL for the permission table — the paper's Table 2, verbatim columns.
pub const PERMISSIONS_DDL: &str = "CREATE TABLE information_schema.driver_permission (\
 user VARCHAR,\
 client_ip VARCHAR,\
 database VARCHAR,\
 driver_id INTEGER NOT NULL REFERENCES information_schema.drivers(driver_id),\
 driver_options VARCHAR,\
 start_date TIMESTAMP,\
 end_date TIMESTAMP,\
 lease_time_in_ms BIGINT,\
 renew_policy INTEGER,\
 expiration_policy INTEGER,\
 transfer_method INTEGER)";

/// DDL for the lease log ("Leases can be stored in a table that has the
/// same format as the distribution table", §4.1.1).
pub const LEASES_DDL: &str = "CREATE TABLE information_schema.leases (\
 user VARCHAR,\
 client_ip VARCHAR,\
 database VARCHAR,\
 driver_id INTEGER,\
 granted_at TIMESTAMP,\
 lease_time_in_ms BIGINT)";

/// Executes SQL somewhere — embedded engine or remote legacy connection.
pub trait SqlExec: Send + Sync {
    /// Runs one parameterized statement.
    ///
    /// # Errors
    ///
    /// [`DrvError::Internal`] wrapping the underlying failure.
    fn exec(&self, sql: &str, params: &Params) -> DrvResult<QueryResult>;
}

/// Direct in-process execution against a [`MiniDb`].
pub struct EmbeddedExec {
    db: Arc<MiniDb>,
}

impl std::fmt::Debug for EmbeddedExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddedExec").finish_non_exhaustive()
    }
}

impl EmbeddedExec {
    /// Wraps an embedded database.
    pub fn new(db: Arc<MiniDb>) -> Self {
        EmbeddedExec { db }
    }
}

impl SqlExec for EmbeddedExec {
    fn exec(&self, sql: &str, params: &Params) -> DrvResult<QueryResult> {
        let mut session = self.db.admin_session();
        self.db
            .execute(&mut session, sql, params)
            .map_err(|e| DrvError::Internal(format!("store: {e}")))
    }
}

/// Execution through a legacy RDBC connection — the external Drivolution
/// server path (Figure 2).
pub struct RemoteExec {
    conn: Mutex<Box<dyn Connection>>,
}

impl std::fmt::Debug for RemoteExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteExec").finish_non_exhaustive()
    }
}

impl RemoteExec {
    /// Wraps a connected legacy-driver connection.
    pub fn new(conn: Box<dyn Connection>) -> Self {
        RemoteExec {
            conn: Mutex::new(conn),
        }
    }
}

impl SqlExec for RemoteExec {
    fn exec(&self, sql: &str, params: &Params) -> DrvResult<QueryResult> {
        let mut conn = self.conn.lock();
        let r = if params.is_empty() {
            conn.execute(sql)
        } else {
            conn.execute_params(sql, params)
        };
        r.map_err(|e| DrvError::Internal(format!("store (remote): {e}")))
    }
}

/// The driver store.
pub struct DriverStore {
    exec: Box<dyn SqlExec>,
}

impl std::fmt::Debug for DriverStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriverStore").finish_non_exhaustive()
    }
}

fn opt_str(v: &Value) -> Option<String> {
    v.as_str().map(str::to_string)
}

fn opt_i64(v: &Value) -> Option<i64> {
    v.as_i64()
}

fn opt_i32(v: &Value) -> Option<i32> {
    v.as_i64().map(|n| n as i32)
}

impl DriverStore {
    /// Creates a store over an executor. Call
    /// [`DriverStore::install_schema`] once on a fresh database.
    pub fn new(exec: Box<dyn SqlExec>) -> Self {
        DriverStore { exec }
    }

    /// Creates the three information-schema tables (idempotent: existing
    /// tables are left untouched).
    ///
    /// # Errors
    ///
    /// [`DrvError::Internal`] on non-"already exists" failures.
    pub fn install_schema(&self) -> DrvResult<()> {
        for ddl in [DRIVERS_DDL, PERMISSIONS_DDL, LEASES_DDL] {
            match self.exec.exec(ddl, &Params::new()) {
                Ok(_) => {}
                Err(e) if e.to_string().contains("already exists") => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Installs a driver — the paper's one-step upgrade: "simple INSERT
    /// statements".
    ///
    /// # Errors
    ///
    /// Duplicate ids or schema violations as [`DrvError::Internal`].
    pub fn add_driver(&self, rec: &DriverRecord) -> DrvResult<()> {
        let mut p = Params::new();
        p.insert("id".into(), Value::Integer(rec.id.0));
        p.insert("api".into(), Value::str(rec.api_name.as_str()));
        p.insert("vmaj".into(), Value::from(rec.api_version.major));
        p.insert("vmin".into(), Value::from(rec.api_version.minor));
        p.insert("plat".into(), Value::from(rec.platform.clone()));
        p.insert("dmaj".into(), Value::from(rec.version.map(|v| v.major)));
        p.insert("dmin".into(), Value::from(rec.version.map(|v| v.minor)));
        p.insert("dmic".into(), Value::from(rec.version.map(|v| v.micro)));
        p.insert("code".into(), Value::Blob(rec.binary.clone()));
        p.insert("fmt".into(), Value::str(rec.format.as_str()));
        self.exec.exec(
            "INSERT INTO information_schema.drivers VALUES \
             ($id, $api, $vmaj, $vmin, $plat, $dmaj, $dmin, $dmic, $code, $fmt)",
            &p,
        )?;
        Ok(())
    }

    /// Removes a driver row (permissions referencing it must be removed
    /// first; the REFERENCES constraint enforces this).
    ///
    /// # Errors
    ///
    /// Foreign-key violations as [`DrvError::Internal`].
    pub fn remove_driver(&self, id: DriverId) -> DrvResult<u64> {
        let mut p = Params::new();
        p.insert("id".into(), Value::Integer(id.0));
        self.exec
            .exec(
                "DELETE FROM information_schema.drivers WHERE driver_id = $id",
                &p,
            )?
            .affected()
            .map_err(|e| DrvError::Internal(e.to_string()))
    }

    /// Adds a permission/distribution rule.
    ///
    /// # Errors
    ///
    /// Foreign-key violations (unknown driver) as [`DrvError::Internal`].
    pub fn add_permission(&self, rule: &PermissionRule) -> DrvResult<()> {
        let mut p = Params::new();
        p.insert("user".into(), Value::from(rule.user.clone()));
        p.insert("ip".into(), Value::from(rule.client_ip.clone()));
        p.insert("db".into(), Value::from(rule.database.clone()));
        p.insert("id".into(), Value::Integer(rule.driver_id.0));
        p.insert("opts".into(), Value::from(rule.driver_options.clone()));
        p.insert(
            "start".into(),
            rule.start_date.map(Value::Timestamp).unwrap_or(Value::Null),
        );
        p.insert(
            "end".into(),
            rule.end_date.map(Value::Timestamp).unwrap_or(Value::Null),
        );
        p.insert(
            "lease".into(),
            rule.lease_time_ms.map(Value::BigInt).unwrap_or(Value::Null),
        );
        p.insert(
            "renew".into(),
            Value::Integer(rule.renew_policy.code() as i64),
        );
        p.insert(
            "exp".into(),
            Value::Integer(rule.expiration_policy.code() as i64),
        );
        p.insert(
            "xfer".into(),
            Value::Integer(rule.transfer_method.code() as i64),
        );
        self.exec.exec(
            "INSERT INTO information_schema.driver_permission VALUES \
             ($user, $ip, $db, $id, $opts, $start, $end, $lease, $renew, $exp, $xfer)",
            &p,
        )?;
        Ok(())
    }

    /// Deletes all permissions for a driver (step one of revocation).
    ///
    /// # Errors
    ///
    /// Store failures as [`DrvError::Internal`].
    pub fn remove_permissions(&self, id: DriverId) -> DrvResult<u64> {
        let mut p = Params::new();
        p.insert("id".into(), Value::Integer(id.0));
        self.exec
            .exec(
                "DELETE FROM information_schema.driver_permission WHERE driver_id = $id",
                &p,
            )?
            .affected()
            .map_err(|e| DrvError::Internal(e.to_string()))
    }

    /// Expires a driver by setting `end_date` to now on its rules — the
    /// paper's "setting the end_date to the current_date" (§4.1.1) and
    /// the master/slave failover trigger (Figure 4, "marking the DBmaster
    /// driver as expired").
    ///
    /// # Errors
    ///
    /// Store failures as [`DrvError::Internal`].
    pub fn expire_driver(&self, id: DriverId, now_ms: i64) -> DrvResult<u64> {
        let mut p = Params::new();
        p.insert("id".into(), Value::Integer(id.0));
        p.insert("now".into(), Value::Timestamp(now_ms));
        self.exec
            .exec(
                "UPDATE information_schema.driver_permission \
                 SET start_date = 0, end_date = $now WHERE driver_id = $id",
                &p,
            )?
            .affected()
            .map_err(|e| DrvError::Internal(e.to_string()))
    }

    fn row_to_record(row: &[Value]) -> DrvResult<DriverRecord> {
        let api_version = ApiVersion {
            major: opt_i32(&row[2]),
            minor: opt_i32(&row[3]),
        };
        let version = match (opt_i32(&row[5]), opt_i32(&row[6]), opt_i32(&row[7])) {
            (Some(ma), mi, mc) => Some(DriverVersion::new(ma, mi.unwrap_or(0), mc.unwrap_or(0))),
            _ => None,
        };
        Ok(DriverRecord {
            id: DriverId(
                row[0].as_i64().ok_or_else(|| {
                    DrvError::Internal("drivers.driver_id is not an integer".into())
                })?,
            ),
            api_name: ApiName::new(row[1].as_str().unwrap_or_default()),
            api_version,
            platform: opt_str(&row[4]),
            version,
            format: BinaryFormat::parse(row[9].as_str().unwrap_or_default())?,
            // Shared handle onto the stored blob: every renewal re-reads
            // the driver row, so this must not copy the binary.
            binary: row[8].as_blob_shared().unwrap_or_default(),
        })
    }

    fn row_to_rule(row: &[Value]) -> DrvResult<PermissionRule> {
        Ok(PermissionRule {
            user: opt_str(&row[0]),
            client_ip: opt_str(&row[1]),
            database: opt_str(&row[2]),
            driver_id: DriverId(row[3].as_i64().unwrap_or(0)),
            driver_options: opt_str(&row[4]),
            start_date: opt_i64(&row[5]),
            end_date: opt_i64(&row[6]),
            lease_time_ms: opt_i64(&row[7]),
            renew_policy: RenewPolicy::from_code(row[8].as_i64().unwrap_or(0) as i32)?,
            expiration_policy: ExpirationPolicy::from_code(row[9].as_i64().unwrap_or(0) as i32)?,
            transfer_method: TransferMethod::from_code(row[10].as_i64().unwrap_or(-1) as i32)?,
        })
    }

    /// Fetches one driver row by id.
    ///
    /// # Errors
    ///
    /// [`DrvError::NoMatchingDriver`] when absent.
    pub fn record(&self, id: DriverId) -> DrvResult<DriverRecord> {
        let mut p = Params::new();
        p.insert("id".into(), Value::Integer(id.0));
        let rows = self.select(
            "SELECT * FROM information_schema.drivers WHERE driver_id = $id",
            &p,
        )?;
        let row = rows
            .rows
            .first()
            .ok_or_else(|| DrvError::NoMatchingDriver(format!("driver {id} not found")))?;
        Self::row_to_record(row)
    }

    /// All driver rows, ordered by id.
    ///
    /// # Errors
    ///
    /// Store failures as [`DrvError::Internal`].
    pub fn records(&self) -> DrvResult<Vec<DriverRecord>> {
        let rows = self.select(
            "SELECT * FROM information_schema.drivers ORDER BY driver_id",
            &Params::new(),
        )?;
        rows.rows.iter().map(|r| Self::row_to_record(r)).collect()
    }

    /// All permission rules, in insertion order.
    ///
    /// # Errors
    ///
    /// Store failures as [`DrvError::Internal`].
    pub fn rules(&self) -> DrvResult<Vec<PermissionRule>> {
        let rows = self.select(
            "SELECT * FROM information_schema.driver_permission",
            &Params::new(),
        )?;
        rows.rows.iter().map(|r| Self::row_to_rule(r)).collect()
    }

    /// Whether any permission rules exist (if none, the server acts as an
    /// open distribution point, Sample code 1 only).
    ///
    /// # Errors
    ///
    /// Store failures as [`DrvError::Internal`].
    pub fn has_rules(&self) -> DrvResult<bool> {
        let rows = self.select(
            "SELECT count(*) FROM information_schema.driver_permission",
            &Params::new(),
        )?;
        Ok(rows.rows[0][0].as_i64().unwrap_or(0) > 0)
    }

    /// The permitted driver ids for a client — the paper's **Sample
    /// code 2**, executed as real SQL.
    ///
    /// # Errors
    ///
    /// Store failures as [`DrvError::Internal`].
    pub fn permitted_driver_ids(
        &self,
        who: &ClientIdentity,
    ) -> DrvResult<Vec<(DriverId, PermissionRule)>> {
        let mut p = Params::new();
        p.insert("user_database".into(), Value::str(who.database.clone()));
        p.insert("client_user".into(), Value::str(who.user.clone()));
        p.insert("client_client_ip".into(), Value::str(who.client_ip.clone()));
        let rows = self.select(
            "SELECT * FROM information_schema.driver_permission \
             WHERE (database IS NULL OR $user_database LIKE database) \
             AND (user IS NULL OR $client_user LIKE user) \
             AND (client_ip IS NULL OR $client_client_ip LIKE client_ip) \
             AND (start_date IS NULL OR end_date IS NULL \
                  OR now() BETWEEN start_date AND end_date)",
            &p,
        )?;
        rows.rows
            .iter()
            .map(|r| Self::row_to_rule(r).map(|rule| (rule.driver_id, rule)))
            .collect()
    }

    /// Drivers matching the client's API/platform and preferences — the
    /// paper's **Sample code 1**, executed as real SQL, with the paper's
    /// retry-without-preferences fallback.
    ///
    /// # Errors
    ///
    /// Store failures as [`DrvError::Internal`].
    pub fn matching_drivers(&self, q: &DriverQuery) -> DrvResult<Vec<DriverRecord>> {
        let mut p = Params::new();
        p.insert(
            "client_api_name".into(),
            Value::str(q.api_name.to_ascii_uppercase()),
        );
        p.insert(
            "client_platform".into(),
            Value::str(q.client_platform.clone()),
        );
        p.insert(
            "client_api_major".into(),
            Value::from(q.api_version.and_then(|v| v.major)),
        );
        p.insert(
            "client_api_minor".into(),
            Value::from(q.api_version.and_then(|v| v.minor)),
        );
        let base = "SELECT * FROM information_schema.drivers \
             WHERE api_name LIKE $client_api_name \
             AND (platform IS NULL OR platform LIKE $client_platform \
                  OR $client_platform LIKE platform) \
             AND ($client_api_major IS NULL OR api_version_major IS NULL \
                  OR api_version_major = $client_api_major) \
             AND ($client_api_minor IS NULL OR api_version_minor IS NULL \
                  OR api_version_minor = $client_api_minor)";
        // With preferences first…
        let mut with_pref = String::from(base);
        if let Some(format) = q.preferred_format {
            p.insert("client_format".into(), Value::str(format.as_str()));
            with_pref.push_str(" AND binary_format LIKE $client_format");
        }
        if let Some(v) = q.preferred_version {
            p.insert("client_dmaj".into(), Value::from(v.major));
            p.insert("client_dmin".into(), Value::from(v.minor));
            p.insert("client_dmic".into(), Value::from(v.micro));
            with_pref.push_str(
                " AND (driver_version_major IS NULL OR (driver_version_major = $client_dmaj \
                 AND driver_version_minor = $client_dmin \
                 AND driver_version_micro = $client_dmic))",
            );
        }
        with_pref.push_str(" ORDER BY driver_id");
        let rows = self.select(&with_pref, &p)?;
        let rows = if rows.rows.is_empty() {
            // "If this statement is unsuccessful, a simple SELECT without
            // preferences can be issued." (§4.1.1)
            self.select(&format!("{base} ORDER BY driver_id"), &p)?
        } else {
            rows
        };
        rows.rows.iter().map(|r| Self::row_to_record(r)).collect()
    }

    /// Logs a granted lease (§4.1.1: "used only for logging purposes, but
    /// also to retrieve client information when a lease must be renewed").
    ///
    /// # Errors
    ///
    /// Store failures as [`DrvError::Internal`].
    pub fn log_lease(
        &self,
        who: &ClientIdentity,
        driver: DriverId,
        granted_at_ms: i64,
        lease_ms: i64,
    ) -> DrvResult<()> {
        let mut p = Params::new();
        p.insert("user".into(), Value::str(who.user.clone()));
        p.insert("ip".into(), Value::str(who.client_ip.clone()));
        p.insert("db".into(), Value::str(who.database.clone()));
        p.insert("id".into(), Value::Integer(driver.0));
        p.insert("at".into(), Value::Timestamp(granted_at_ms));
        p.insert("ms".into(), Value::BigInt(lease_ms));
        self.exec.exec(
            "INSERT INTO information_schema.leases VALUES ($user, $ip, $db, $id, $at, $ms)",
            &p,
        )?;
        Ok(())
    }

    /// Number of lease-log rows (for tests and reports).
    ///
    /// # Errors
    ///
    /// Store failures as [`DrvError::Internal`].
    pub fn lease_count(&self) -> DrvResult<i64> {
        let rows = self.select(
            "SELECT count(*) FROM information_schema.leases",
            &Params::new(),
        )?;
        Ok(rows.rows[0][0].as_i64().unwrap_or(0))
    }

    fn select(&self, sql: &str, params: &Params) -> DrvResult<RowSet> {
        self.exec
            .exec(sql, params)?
            .rows()
            .map_err(|e| DrvError::Internal(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use drivolution_core::matching::{self, MatchMode};
    use netsim::Clock;

    fn store_with_clock(clock: Clock) -> DriverStore {
        let db = Arc::new(MiniDb::with_clock("drvstore", clock));
        let s = DriverStore::new(Box::new(EmbeddedExec::new(db)));
        s.install_schema().unwrap();
        s
    }

    fn store() -> DriverStore {
        store_with_clock(Clock::simulated())
    }

    fn rec(id: i64) -> DriverRecord {
        DriverRecord::new(
            DriverId(id),
            ApiName::rdbc(),
            BinaryFormat::Djar,
            Bytes::from(vec![id as u8; 16]),
        )
    }

    fn query(user: &str) -> DriverQuery {
        DriverQuery::new(
            ClientIdentity::new(user, "10.0.0.1", "orders"),
            "RDBC",
            "linux-x86_64",
        )
    }

    #[test]
    fn schema_installs_idempotently() {
        let s = store();
        s.install_schema().unwrap();
    }

    #[test]
    fn add_and_fetch_driver_roundtrip() {
        let s = store();
        let r = rec(1)
            .with_platform("linux-%")
            .with_version(DriverVersion::new(1, 2, 3))
            .with_api_version(ApiVersion::exact(1, 0));
        s.add_driver(&r).unwrap();
        let back = s.record(DriverId(1)).unwrap();
        assert_eq!(back, r);
        assert!(s.record(DriverId(9)).is_err());
        assert_eq!(s.records().unwrap().len(), 1);
    }

    #[test]
    fn duplicate_driver_id_rejected() {
        let s = store();
        s.add_driver(&rec(1)).unwrap();
        assert!(s.add_driver(&rec(1)).is_err());
    }

    #[test]
    fn permissions_enforce_foreign_key() {
        let s = store();
        let rule = PermissionRule::any(DriverId(5));
        assert!(s.add_permission(&rule).is_err());
        s.add_driver(&rec(5)).unwrap();
        s.add_permission(&rule).unwrap();
        // Driver with live permissions cannot be deleted.
        assert!(s.remove_driver(DriverId(5)).is_err());
        s.remove_permissions(DriverId(5)).unwrap();
        assert_eq!(s.remove_driver(DriverId(5)).unwrap(), 1);
    }

    #[test]
    fn sample_code_2_runs_as_sql() {
        let s = store();
        s.add_driver(&rec(1)).unwrap();
        s.add_driver(&rec(2)).unwrap();
        s.add_permission(&PermissionRule::any(DriverId(1)).for_user("dba%"))
            .unwrap();
        s.add_permission(&PermissionRule::any(DriverId(2)).for_database("orders"))
            .unwrap();
        let who = ClientIdentity::new("dba7", "10.0.0.1", "orders");
        let ids: Vec<i64> = s
            .permitted_driver_ids(&who)
            .unwrap()
            .into_iter()
            .map(|(id, _)| id.0)
            .collect();
        assert_eq!(ids, vec![1, 2]);
        let who = ClientIdentity::new("app", "10.0.0.1", "hr");
        let ids = s.permitted_driver_ids(&who).unwrap();
        assert!(ids.is_empty());
    }

    #[test]
    fn date_windows_in_sql_follow_the_clock() {
        let clock = Clock::simulated();
        let s = store_with_clock(clock.clone());
        s.add_driver(&rec(1)).unwrap();
        s.add_permission(&PermissionRule::any(DriverId(1)).valid_between(Some(100), Some(200)))
            .unwrap();
        let who = ClientIdentity::new("u", "h", "orders");
        assert!(s.permitted_driver_ids(&who).unwrap().is_empty()); // t=0
        clock.advance_ms(150);
        assert_eq!(s.permitted_driver_ids(&who).unwrap().len(), 1);
        clock.advance_ms(100); // t=250
        assert!(s.permitted_driver_ids(&who).unwrap().is_empty());
    }

    #[test]
    fn expire_driver_closes_the_window() {
        let clock = Clock::simulated();
        let s = store_with_clock(clock.clone());
        s.add_driver(&rec(1)).unwrap();
        s.add_permission(&PermissionRule::any(DriverId(1))).unwrap();
        let who = ClientIdentity::new("u", "h", "orders");
        clock.advance_ms(500);
        assert_eq!(s.permitted_driver_ids(&who).unwrap().len(), 1);
        s.expire_driver(DriverId(1), clock.now_ms() as i64 - 1)
            .unwrap();
        assert!(s.permitted_driver_ids(&who).unwrap().is_empty());
    }

    #[test]
    fn sample_code_1_runs_as_sql_with_fallback() {
        let s = store();
        s.add_driver(&rec(1).with_version(DriverVersion::new(1, 0, 0)))
            .unwrap();
        s.add_driver(
            &rec(2)
                .with_platform("windows-%")
                .with_version(DriverVersion::new(2, 0, 0)),
        )
        .unwrap();
        // Platform filter: linux client sees driver 1 only.
        let found = s.matching_drivers(&query("app")).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id, DriverId(1));
        // Version preference satisfied.
        let mut q = query("app");
        q.preferred_version = Some(DriverVersion::new(1, 0, 0));
        assert_eq!(s.matching_drivers(&q).unwrap()[0].id, DriverId(1));
        // Unsatisfiable preference falls back to the plain statement.
        q.preferred_version = Some(DriverVersion::new(9, 9, 9));
        assert_eq!(s.matching_drivers(&q).unwrap()[0].id, DriverId(1));
    }

    #[test]
    fn sql_and_memory_matchmaking_agree() {
        let s = store();
        let records = vec![
            rec(1).with_platform("linux-%"),
            rec(2).with_platform("windows-%"),
            rec(3),
        ];
        for r in &records {
            s.add_driver(r).unwrap();
        }
        let rules = vec![
            PermissionRule::any(DriverId(1)).for_user("app%"),
            PermissionRule::any(DriverId(3)).for_user("dba%"),
        ];
        for r in &rules {
            s.add_permission(r).unwrap();
        }
        for user in ["app1", "dba1", "other"] {
            let q = query(user);
            // SQL path.
            let sql_ids: Vec<i64> = {
                let permitted = s.permitted_driver_ids(&q.identity).unwrap();
                s.matching_drivers(&q)
                    .unwrap()
                    .into_iter()
                    .filter(|r| permitted.iter().any(|(id, _)| *id == r.id))
                    .map(|r| r.id.0)
                    .collect()
            };
            // Memory path.
            let mem_ids: Vec<i64> =
                matching::candidates(&records, &rules, &q, 0, MatchMode::FirstMatch)
                    .into_iter()
                    .map(|m| m.record.id.0)
                    .collect();
            assert_eq!(sql_ids, mem_ids, "disagreement for user {user}");
        }
    }

    #[test]
    fn lease_logging() {
        let s = store();
        s.add_driver(&rec(1)).unwrap();
        let who = ClientIdentity::new("u", "h", "orders");
        assert_eq!(s.lease_count().unwrap(), 0);
        s.log_lease(&who, DriverId(1), 0, 3_600_000).unwrap();
        s.log_lease(&who, DriverId(1), 10, 3_600_000).unwrap();
        assert_eq!(s.lease_count().unwrap(), 2);
    }

    #[test]
    fn remote_exec_path_works_end_to_end() {
        use driverkit::{legacy_driver, ConnectProps, DbUrl};
        use minidb::wire::DbServer;
        use netsim::{Addr, Network};

        let net = Network::new();
        let db = Arc::new(MiniDb::with_clock("legacy", net.clock().clone()));
        net.bind_arc(Addr::new("db", 5432), Arc::new(DbServer::new(db)))
            .unwrap();
        // The external server connects via a v2 legacy driver (params
        // require protocol v2).
        let d = legacy_driver(&net, &Addr::new("drvsrv", 1), 2).unwrap();
        let conn = d
            .connect(
                &DbUrl::direct(Addr::new("db", 5432), "legacy"),
                &ConnectProps::user("admin", "admin"),
            )
            .unwrap();
        let s = DriverStore::new(Box::new(RemoteExec::new(conn)));
        s.install_schema().unwrap();
        s.add_driver(&rec(1)).unwrap();
        assert_eq!(s.records().unwrap().len(), 1);
        assert_eq!(s.record(DriverId(1)).unwrap().binary.len(), 16);
    }
}
