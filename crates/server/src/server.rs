//! The Drivolution server: answers bootstrap/renewal/extension requests,
//! stages and transfers driver files, enforces permissions and licenses,
//! and pushes upgrade notices (paper §3–§4).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use netsim::{Addr, Clock, NetError, Network, Pipe, Service, TaskControl};

use drivolution_core::chunk::ChunkSet;
use drivolution_core::matching::{self, MatchMode};
use drivolution_core::pack::{pack_driver, unpack_driver};
use drivolution_core::proto::{ChunkPlan, DrvErrCode, DrvMsg, DrvOffer, DrvRequest, RequestKind};
use drivolution_core::transfer;
use drivolution_core::{
    fnv1a64, Certificate, ChunkingParams, ClientIdentity, DriverId, DriverQuery, DriverRecord,
    DrvError, DrvNotice, DrvResult, ExpirationPolicy, PermissionRule, RenewPolicy, Signature,
    SigningKey, TransferMethod,
};
use drivolution_depot::{ContentIndex, DeltaPlan};

use crate::assemble::Assembler;
use crate::directory::{ComplaintOutcome, DirectoryConfig, MirrorDirectory};
use crate::license::{LicenseManager, DEFAULT_LICENSE_SHARDS};
use crate::notify::NotifyHub;
use crate::rollout::RolloutOrchestrator;
use crate::store::DriverStore;

/// Which matchmaking implementation the server uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MatchPath {
    /// Run the paper's SQL (Sample code 1–2) against the store.
    #[default]
    Sql,
    /// Use the in-memory engine (`drivolution_core::matching`).
    Memory,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Lease granted when no permission rule overrides it (paper §3.2:
    /// "settings ranging from an hour to a day are suitable" — default one
    /// hour).
    pub default_lease_ms: u64,
    /// Renew policy when no rule overrides it.
    pub default_renew: RenewPolicy,
    /// Expiration policy when no rule overrides it.
    pub default_expiration: ExpirationPolicy,
    /// Transfer method when the rule says `Any` (paper default: sealed).
    pub default_transfer: TransferMethod,
    /// Tie-breaking among matching drivers.
    pub match_mode: MatchMode,
    /// SQL or in-memory matchmaking.
    pub match_path: MatchPath,
    /// Databases this server distributes drivers for; `None` = any.
    pub serves: Option<Vec<String>>,
    /// When set, offers carry signatures over the driver bytes.
    pub signing: Option<SigningKey>,
    /// Customize driver feature sets to request options (§5.4.1).
    pub customize: bool,
    /// Free license seats when a dedicated channel breaks (§5.4.2).
    pub release_licenses_on_disconnect: bool,
    /// Chunking params for the server's content-addressed depot index
    /// (content-defined by default). Delta plans themselves are derived
    /// under each client's advertised params, so this only governs how
    /// the server pre-indexes installed drivers.
    pub depot_chunking: ChunkingParams,
    /// Answer depot-equipped clients (requests carrying a `HAVE`
    /// summary) with zero-transfer revalidations and chunked delta
    /// offers. Clients without a depot are unaffected.
    pub delta_offers: bool,
    /// Mirror-directory timing and ranking knobs (heartbeat cadence,
    /// quarantine/eviction thresholds, candidates per plan).
    pub directory: DirectoryConfig,
    /// License-table shard count. Requests hash to a shard by
    /// `client_host` (stable FNV), so replay stays seed-reproducible;
    /// more shards means less lock contention under fleet-scale renewal
    /// storms. Clamped to at least 1.
    pub license_shards: usize,
    /// Cadence of the background maintenance task registered by
    /// [`DrivolutionServer::register_maintenance`]: expired-seat pruning
    /// and broken-channel reaping run at this interval instead of on the
    /// request path.
    pub maintenance_every_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            default_lease_ms: 3_600_000,
            default_renew: RenewPolicy::Renew,
            default_expiration: ExpirationPolicy::AfterCommit,
            default_transfer: TransferMethod::Sealed,
            match_mode: MatchMode::FirstMatch,
            match_path: MatchPath::Sql,
            serves: None,
            signing: None,
            customize: false,
            release_licenses_on_disconnect: true,
            depot_chunking: ChunkingParams::default(),
            delta_offers: true,
            directory: DirectoryConfig::default(),
            license_shards: DEFAULT_LICENSE_SHARDS,
            maintenance_every_ms: 30_000,
        }
    }
}

/// Counters exposed for the benchmark harnesses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// `DRIVOLUTION_REQUEST`s handled.
    pub requests: u64,
    /// Offers sent (including same-driver renewals).
    pub offers: u64,
    /// Same-driver renewals among the offers.
    pub renewals: u64,
    /// `DRIVOLUTION_ERROR`s sent.
    pub errors: u64,
    /// Driver files served.
    pub files: u64,
    /// Total raw driver bytes served.
    pub file_bytes: u64,
    /// Offers answered as zero-transfer depot revalidations.
    pub revalidations: u64,
    /// Offers answered with a chunked delta plan.
    pub delta_offers: u64,
    /// `CHUNK_REQUEST`s served.
    pub chunk_requests: u64,
    /// Raw chunk bytes served.
    pub chunk_bytes: u64,
    /// `MIRROR_ANNOUNCE`s handled.
    pub mirror_announces: u64,
    /// `MIRROR_HEARTBEAT`s handled.
    pub mirror_heartbeats: u64,
    /// `MIRROR_COMPLAINT`s handled (corruption strikes recorded).
    pub mirror_complaints: u64,
    /// Mirrors demoted by corroborated complaint strikes.
    pub mirror_demotions: u64,
    /// `ACTIVATION_REPORT`s handled.
    pub activation_reports: u64,
    /// Failed activations among the reports.
    pub activation_failures: u64,
    /// Delta offers answered from the memoized plan cache.
    pub plan_hits: u64,
    /// Delta plans computed from scratch (cache misses).
    pub plan_misses: u64,
    /// `RENEW_BATCH` frames handled.
    pub batch_frames: u64,
    /// Renewal entries carried inside those batch frames (coalesced
    /// requests that did not cost an individual network round trip).
    pub batched_renewals: u64,
}

#[derive(Debug)]
struct Staged {
    bytes: Bytes,
    method: TransferMethod,
}

// Memoized offer metadata for one driver row; usable only while `bytes`
// still equals the served binary.
struct OfferMeta {
    bytes: Bytes,
    digest: u64,
    signature: Option<Signature>,
}

/// Events emitted by administrative operations — the replication hook the
/// cluster middleware subscribes to (§5.3.2: "When a new driver is added
/// to a Drivolution server, it is instantly replicated to other
/// Drivolution servers").
#[derive(Clone, Debug, PartialEq)]
pub enum AdminEvent {
    /// A driver row was inserted.
    DriverAdded(DriverRecord),
    /// A permission rule was inserted.
    RuleAdded(PermissionRule),
    /// A driver's permissions were expired.
    DriverExpired(DriverId),
}

type EventHook = Arc<dyn Fn(&AdminEvent) + Send + Sync>;

/// A Drivolution server instance. Bind it on the network with
/// [`netsim::Network::bind_arc`]; the in-database / external / standalone
/// variants differ only in the [`DriverStore`] executor behind it.
pub struct DrivolutionServer {
    name: String,
    store: DriverStore,
    config: ServerConfig,
    clock: Clock,
    cert: Certificate,
    licenses: LicenseManager,
    assembler: Assembler,
    hub: NotifyHub,
    staged: Mutex<HashMap<String, Staged>>,
    stage_counter: AtomicU64,
    depot: ContentIndex,
    directory: MirrorDirectory,
    stats: Mutex<ServerStats>,
    rollout: Mutex<Option<Arc<RolloutOrchestrator>>>,
    /// Memoized per-driver offer metadata (content digest + signature),
    /// keyed by the served bytes themselves so direct SQL writes to the
    /// drivers table can never serve a stale digest: a hit requires the
    /// cached [`Bytes`] to match the record's, checked by pointer first
    /// and by content on reallocation.
    offer_meta: Mutex<HashMap<DriverId, OfferMeta>>,
    /// Network handle for forwarding plan-cache counters into
    /// [`netsim::NetStats`]; attached by the deployment variants.
    net: Mutex<Option<Network>>,
    hooks: Mutex<Vec<EventHook>>,
    /// When true, admin operations skip event hooks (used while applying
    /// replicated events to avoid loops).
    applying_replica: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for DrivolutionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrivolutionServer")
            .field("name", &self.name)
            .field("config", &self.config.match_path)
            .finish()
    }
}

impl DrivolutionServer {
    /// Creates a server over a store. `name` doubles as the certificate
    /// host for sealed transfers.
    pub fn new(
        name: impl Into<String>,
        store: DriverStore,
        clock: Clock,
        mut config: ServerConfig,
    ) -> Self {
        // Structurally invalid params would panic manifest construction
        // on the first install; fall back to the default chunking.
        if config.depot_chunking.validate().is_err() {
            config.depot_chunking = ChunkingParams::default();
        }
        let name = name.into();
        let cert = Certificate::issue(name.clone(), 1);
        let directory = MirrorDirectory::new(clock.clone(), config.directory);
        let license_shards = config.license_shards.max(1);
        DrivolutionServer {
            name,
            store,
            config,
            clock,
            cert,
            licenses: LicenseManager::with_shards(license_shards),
            assembler: Assembler::new(),
            hub: NotifyHub::new(),
            staged: Mutex::new(HashMap::new()),
            stage_counter: AtomicU64::new(0),
            depot: ContentIndex::new(),
            directory,
            stats: Mutex::new(ServerStats::default()),
            rollout: Mutex::new(None),
            offer_meta: Mutex::new(HashMap::new()),
            net: Mutex::new(None),
            hooks: Mutex::new(Vec::new()),
            applying_replica: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Server name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The certificate bootloaders must pin for sealed transfers.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// The backing store (admin operations go through the server methods
    /// below so replication hooks fire).
    pub fn store(&self) -> &DriverStore {
        &self.store
    }

    /// The license manager (§5.4.2).
    pub fn licenses(&self) -> &LicenseManager {
        &self.licenses
    }

    /// The extension-package assembler (§5.4.1).
    pub fn assembler(&self) -> &Assembler {
        &self.assembler
    }

    /// Number of connected dedicated channels.
    pub fn channel_count(&self) -> usize {
        self.hub.len()
    }

    /// Snapshot of the protocol counters.
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock()
    }

    /// The server's content-addressed depot index (installed driver
    /// images and their chunks).
    pub fn depot(&self) -> &ContentIndex {
        &self.depot
    }

    /// The chunking params the server's depot index uses.
    pub fn depot_chunking(&self) -> ChunkingParams {
        self.config.depot_chunking
    }

    /// The mirror directory: every registered mirror with its zone,
    /// health, coverage, and load.
    pub fn mirror_directory(&self) -> &MirrorDirectory {
        &self.directory
    }

    /// Manually pins a depot mirror (`host:port`) into the directory.
    /// Pinned mirrors are exempt from heartbeat expiry; re-registering
    /// the same location is a no-op (no duplicate round-robin slots).
    /// Mirrors that can speak the announce protocol should use
    /// `MIRROR_ANNOUNCE` instead and get the full health lifecycle.
    pub fn register_mirror(&self, location: impl Into<String>) {
        self.directory.announce(&location.into(), None, true);
    }

    /// Attaches a staged-rollout orchestrator. While attached, every
    /// request touching one of its two managed drivers is resolved
    /// through [`RolloutOrchestrator::resolve`], so offers are
    /// version-targeted per wave membership and a halted rollout rolls
    /// clients back on their next renewal. The orchestrator's rollback
    /// hook is wired to an upgrade notice: a tripped health gate pushes
    /// `DRIVER_AVAILABLE` down every dedicated channel so clients
    /// re-renew (and start draining the failed version) immediately.
    pub fn attach_rollout(self: &Arc<Self>, rollout: Arc<RolloutOrchestrator>) {
        let weak = Arc::downgrade(self);
        rollout.on_rollback(move |database| {
            if let Some(srv) = weak.upgrade() {
                srv.notify_upgrade(database);
            }
        });
        *self.rollout.lock() = Some(rollout);
    }

    /// Detaches the current rollout orchestrator, if any.
    pub fn detach_rollout(&self) -> Option<Arc<RolloutOrchestrator>> {
        self.rollout.lock().take()
    }

    /// The attached rollout orchestrator, if any.
    pub fn rollout(&self) -> Option<Arc<RolloutOrchestrator>> {
        self.rollout.lock().clone()
    }

    /// Attaches the network whose [`netsim::NetStats`] should mirror the
    /// server's delta-plan cache counters. The deployment variants call
    /// this automatically.
    pub fn attach_network(&self, net: Network) {
        *self.net.lock() = Some(net);
    }

    /// Subscribes to admin events (replication hook).
    pub fn subscribe(&self, hook: EventHook) {
        self.hooks.lock().push(hook);
    }

    fn emit(&self, event: AdminEvent) {
        if self.applying_replica.load(Ordering::SeqCst) {
            return;
        }
        for h in self.hooks.lock().iter() {
            h(&event);
        }
    }

    // --- administrative operations (the DBA's single step, §3.2) -------

    /// Installs a driver row. One INSERT — the paper's entire upgrade
    /// procedure on the server side.
    ///
    /// # Errors
    ///
    /// Store failures (duplicate id, schema violations).
    pub fn install_driver(&self, record: &DriverRecord) -> DrvResult<()> {
        self.store.add_driver(record)?;
        self.depot
            .insert(record.binary.clone(), &self.config.depot_chunking);
        self.emit(AdminEvent::DriverAdded(record.clone()));
        Ok(())
    }

    /// Adds a permission rule.
    ///
    /// # Errors
    ///
    /// Store failures (unknown driver id).
    pub fn add_rule(&self, rule: &PermissionRule) -> DrvResult<()> {
        self.store.add_permission(rule)?;
        self.emit(AdminEvent::RuleAdded(rule.clone()));
        Ok(())
    }

    /// Expires a driver's permissions as of now.
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn expire_driver(&self, id: DriverId) -> DrvResult<u64> {
        let n = self
            .store
            .expire_driver(id, self.clock.now_ms() as i64 - 1)?;
        self.emit(AdminEvent::DriverExpired(id));
        Ok(n)
    }

    /// Applies a replicated admin event from a peer server without
    /// re-emitting it.
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn apply_replicated(&self, event: &AdminEvent) -> DrvResult<()> {
        self.applying_replica.store(true, Ordering::SeqCst);
        let r = match event {
            AdminEvent::DriverAdded(rec) => {
                self.depot
                    .insert(rec.binary.clone(), &self.config.depot_chunking);
                self.store.add_driver(rec)
            }
            AdminEvent::RuleAdded(rule) => self.store.add_permission(rule),
            AdminEvent::DriverExpired(id) => self
                .store
                .expire_driver(*id, self.clock.now_ms() as i64 - 1)
                .map(|_| ()),
        };
        self.applying_replica.store(false, Ordering::SeqCst);
        r
    }

    /// Pushes a "new driver available" notice down every dedicated
    /// channel, triggering immediate renewals (§3.2).
    pub fn notify_upgrade(&self, database: &str) {
        let dead = self.hub.broadcast(&DrvNotice::DriverAvailable {
            database: database.to_string(),
        });
        self.handle_dead_hosts(dead);
    }

    /// Pushes a revocation notice.
    pub fn notify_revoke(&self, database: &str) {
        let dead = self.hub.broadcast(&DrvNotice::DriverRevoked {
            database: database.to_string(),
        });
        self.handle_dead_hosts(dead);
    }

    fn handle_dead_hosts(&self, dead: Vec<String>) {
        if self.config.release_licenses_on_disconnect {
            for host in dead {
                self.licenses.release_host(&host);
            }
        }
    }

    /// Reaps broken dedicated channels and frees their license seats.
    /// Returns the number of freed seats.
    ///
    /// Runs on the maintenance cadence registered by
    /// [`register_maintenance`](Self::register_maintenance), never on the
    /// request path: `handle()` does zero ambient channel scans.
    pub fn detect_failures(&self) -> usize {
        let dead = self.hub.reap_closed();
        let mut freed = 0;
        if self.config.release_licenses_on_disconnect {
            for host in dead {
                freed += self.licenses.release_host(&host);
            }
        }
        freed
    }

    /// Registers the server's background maintenance on the network's
    /// scheduler: expired license seats are pruned and broken dedicated
    /// channels reaped every [`ServerConfig::maintenance_every_ms`],
    /// instead of on every request. The deployment variants call this
    /// automatically. The task holds only a weak reference and retires
    /// itself once the server is dropped.
    pub fn register_maintenance(self: &Arc<Self>, net: &Network) {
        let me = Arc::downgrade(self);
        net.scheduler().every(
            std::time::Duration::from_millis(self.config.maintenance_every_ms.max(1)),
            std::time::Duration::ZERO,
            format!("server-maintenance:{}", self.name),
            move || {
                let Some(srv) = me.upgrade() else {
                    return Ok(TaskControl::Done);
                };
                srv.licenses.prune_expired(srv.clock.now_ms());
                if srv.config.release_licenses_on_disconnect {
                    srv.detect_failures();
                }
                Ok(TaskControl::Continue)
            },
        );
    }

    // --- request handling ----------------------------------------------

    fn serves(&self, database: &str) -> bool {
        match &self.config.serves {
            None => true,
            Some(list) => list.iter().any(|d| d == database),
        }
    }

    fn query_of(&self, from: &Addr, req: &DrvRequest) -> DriverQuery {
        DriverQuery {
            identity: ClientIdentity::new(&req.user, from.host(), &req.database),
            api_name: req.api_name.clone(),
            api_version: req.api_version,
            client_platform: req.client_platform.clone(),
            preferred_format: req.preferred_format,
            preferred_version: req.preferred_version,
        }
    }

    fn find_match(&self, q: &DriverQuery) -> DrvResult<(DriverRecord, Option<PermissionRule>)> {
        let now = self.clock.now_ms() as i64;
        match self.config.match_path {
            MatchPath::Memory => {
                let records = self.store.records()?;
                let rules = self.store.rules()?;
                let m = matching::find_driver(&records, &rules, q, now, self.config.match_mode)?;
                Ok((m.record.clone(), m.rule.cloned()))
            }
            MatchPath::Sql => {
                let matching_records = self.store.matching_drivers(q)?;
                if !self.store.has_rules()? {
                    let rec = matching_records.into_iter().next().ok_or_else(|| {
                        DrvError::NoMatchingDriver(format!(
                            "no driver for API {} on {}",
                            q.api_name, q.client_platform
                        ))
                    })?;
                    return Ok((rec, None));
                }
                let permitted = self.store.permitted_driver_ids(&q.identity)?;
                let mut granted: Vec<(DriverRecord, PermissionRule)> = matching_records
                    .into_iter()
                    .filter_map(|rec| {
                        permitted
                            .iter()
                            .find(|(id, _)| *id == rec.id)
                            .map(|(_, rule)| (rec, rule.clone()))
                    })
                    .collect();
                if self.config.match_mode == MatchMode::Ranked {
                    granted.sort_by(|a, b| {
                        let fmt_rank = |r: &DriverRecord| match q.preferred_format {
                            Some(f) if r.format == f => 0,
                            _ => 1,
                        };
                        fmt_rank(&a.0)
                            .cmp(&fmt_rank(&b.0))
                            .then_with(|| b.0.version.cmp(&a.0.version))
                            .then_with(|| a.0.id.cmp(&b.0.id))
                    });
                }
                let (rec, rule) = granted.into_iter().next().ok_or_else(|| {
                    DrvError::NoMatchingDriver(format!(
                        "no permitted driver for user {} from {}",
                        q.identity.user, q.identity.client_ip
                    ))
                })?;
                Ok((rec, Some(rule)))
            }
        }
    }

    /// Whether the client's *current* driver still matches its query and
    /// permissions; returns the record and rule when it does.
    fn current_still_granted(
        &self,
        q: &DriverQuery,
        current: DriverId,
    ) -> DrvResult<Option<(DriverRecord, Option<PermissionRule>)>> {
        let matching = self.store.matching_drivers(q)?;
        let Some(rec) = matching.into_iter().find(|r| r.id == current) else {
            return Ok(None);
        };
        if !self.store.has_rules()? {
            return Ok(Some((rec, None)));
        }
        let permitted = self.store.permitted_driver_ids(&q.identity)?;
        Ok(permitted
            .into_iter()
            .find(|(id, _)| *id == current)
            .map(|(_, rule)| (rec, Some(rule))))
    }

    fn stage(&self, bytes: Bytes, method: TransferMethod) -> String {
        let n = self.stage_counter.fetch_add(1, Ordering::SeqCst);
        let location = format!("stage/{n}");
        self.staged
            .lock()
            .insert(location.clone(), Staged { bytes, method });
        location
    }

    /// Content digest and signature for the bytes served in an offer,
    /// memoized per driver. Correctness never depends on invalidation: a
    /// cached entry is used only when its bytes equal the record's —
    /// same allocation in the common read-through case (blobs are shared
    /// [`Bytes`] all the way from storage), equal content after the
    /// drivers row was rewritten in place.
    fn offer_meta_for(&self, id: DriverId, bytes: &Bytes) -> (u64, Option<Signature>) {
        {
            let cache = self.offer_meta.lock();
            if let Some(m) = cache.get(&id) {
                let same_alloc = m.bytes.as_ptr() == bytes.as_ptr() && m.bytes.len() == bytes.len();
                if same_alloc || m.bytes == *bytes {
                    return (m.digest, m.signature);
                }
            }
        }
        let digest = fnv1a64(bytes);
        let signature = self.config.signing.as_ref().map(|k| k.sign(bytes));
        self.offer_meta.lock().insert(
            id,
            OfferMeta {
                bytes: bytes.clone(),
                digest,
                signature,
            },
        );
        (digest, signature)
    }

    fn offer_for(
        &self,
        record: &DriverRecord,
        rule: Option<&PermissionRule>,
        req: &DrvRequest,
        same_driver: bool,
        advertise_only: bool,
    ) -> DrvResult<DrvOffer> {
        let lease_ms = rule
            .and_then(|r| r.lease_time_ms)
            .map(|ms| ms.max(1) as u64)
            .unwrap_or(self.config.default_lease_ms);
        let renew = rule
            .map(|r| r.renew_policy)
            .unwrap_or(self.config.default_renew);
        let expiration = rule
            .map(|r| r.expiration_policy)
            .unwrap_or(self.config.default_expiration);
        let method = rule
            .map(|r| r.transfer_method)
            .unwrap_or(TransferMethod::Any)
            .resolve(req.transfer_method.resolve(self.config.default_transfer));

        // Assemble the bytes to serve: possibly a customized image.
        let mut bytes = record.binary.clone();
        let mut customized = false;
        if self.config.customize && !req.options.is_empty() && !same_driver {
            let image = unpack_driver(record.format, bytes.clone())?;
            let custom = self.assembler.customize(&image, &req.options)?;
            bytes = pack_driver(record.format, &custom);
            customized = true;
        }

        // Digest + signature are O(bytes): memoize them per driver so a
        // fleet of same-tick renewals hashes the binary once, not once
        // per client. Per-client customized images bypass the cache.
        let (content_digest, signature) = if customized {
            (
                fnv1a64(&bytes),
                self.config.signing.as_ref().map(|k| k.sign(&bytes)),
            )
        } else {
            self.offer_meta_for(record.id, &bytes)
        };
        let size = bytes.len() as u64;

        // Depot-aware delivery (clients advertising a HAVE summary):
        // exact cached content revalidates with zero transfer; content
        // indexed in the server depot upgrades via a chunk delta when the
        // client already holds some of its chunks. The delta manifest is
        // derived under the *client's* chunking params — boundaries are a
        // pure function of (bytes, params), so both sides agree without
        // negotiation and a client chunking differently from the server
        // no longer silently degrades to a full transfer. Everything
        // else (and every depot-less client) takes the staged full-file
        // path. Advertise-only discovers skip all of it: they grant
        // nothing, so they must not move the depot counters or consume
        // mirror round-robin slots.
        let mut chunked: Option<ChunkPlan> = None;
        let mut delivery_resolved = same_driver;
        if !same_driver && !advertise_only {
            if let Some(have) = &req.have {
                if have.images.contains(&content_digest) {
                    self.stats.lock().revalidations += 1;
                    delivery_resolved = true;
                } else if self.config.delta_offers
                    && have.params.delta_safe()
                    && !have.chunks.is_empty()
                {
                    // The plan (manifest derivation + missing-chunk set) is
                    // memoized in the content index, so a fleet-wide wave
                    // of clients on the same prior version computes it
                    // once instead of per client.
                    if let Some((plan, hit)) =
                        self.depot
                            .delta_plan(content_digest, &have.params, &have.chunks)
                    {
                        {
                            let mut st = self.stats.lock();
                            if hit {
                                st.plan_hits += 1;
                            } else {
                                st.plan_misses += 1;
                            }
                        }
                        if let Some(net) = self.net.lock().as_ref() {
                            if hit {
                                net.stats().record_plan_hit();
                            } else {
                                net.stats().record_plan_miss();
                            }
                        }
                        let DeltaPlan { manifest, missing } = plan;
                        if missing.len() < manifest.chunk_count() {
                            // Candidates are ranked for *this* delta:
                            // mirrors already holding the missing chunks
                            // come first, so a fresh release does not
                            // trigger a read-through storm on the
                            // primary.
                            let mirrors = self.directory.candidates(req.zone.as_deref(), &missing);
                            chunked = Some(ChunkPlan {
                                manifest,
                                missing,
                                mirrors,
                            });
                            self.stats.lock().delta_offers += 1;
                            delivery_resolved = true;
                        }
                    }
                }
            }
        }
        let location = if delivery_resolved {
            String::new()
        } else {
            self.stage(bytes, method)
        };
        let mut options: Vec<(String, String)> = Vec::new();
        if let Some(r) = rule {
            if let Some(opts) = &r.driver_options {
                for kv in opts.split(',').filter(|s| !s.is_empty()) {
                    if let Some((k, v)) = kv.split_once('=') {
                        options.push((k.trim().to_string(), v.trim().to_string()));
                    }
                }
            }
        }
        Ok(DrvOffer {
            driver_id: record.id,
            driver_version: record.version,
            same_driver,
            lease_ms,
            renew_policy: renew,
            expiration_policy: expiration,
            format: record.format,
            location,
            size,
            transfer_method: method,
            options,
            signature,
            content_digest: Some(content_digest),
            chunked,
        })
    }

    fn handle_request(
        &self,
        from: &Addr,
        req: &DrvRequest,
        advertise_only: bool,
    ) -> DrvResult<DrvMsg> {
        if !self.serves(&req.database) {
            return Err(DrvError::InvalidDatabase(req.database.clone()));
        }
        let q = self.query_of(from, req);
        let now = self.clock.now_ms();

        // Extension fetch: graft the package onto the base driver's image
        // and serve the enriched driver (§5.4.1).
        if let RequestKind::Extension { base, name } = &req.kind {
            let record = self.store.record(*base)?;
            let mut image = unpack_driver(record.format, record.binary.clone())?;
            // Keep the client's customized feature set, then graft the
            // requested package on top.
            if self.config.customize && !req.options.is_empty() {
                image = self.assembler.customize(&image, &req.options)?;
            }
            let enriched = self.assembler.with_extension(&image, name)?;
            let bytes = pack_driver(record.format, &enriched);
            let enriched_record = DriverRecord {
                binary: bytes,
                ..record
            };
            let rule = self
                .store
                .permitted_driver_ids(&q.identity)?
                .into_iter()
                .find(|(id, _)| id == base)
                .map(|(_, r)| r);
            // Serve the enriched package as-is: re-applying option
            // customization would strip the package just grafted on.
            let plain_req = DrvRequest {
                options: Vec::new(),
                ..req.clone()
            };
            let offer = self.offer_for(
                &enriched_record,
                rule.as_ref(),
                &plain_req,
                false,
                advertise_only,
            )?;
            return Ok(DrvMsg::Offer(offer));
        }

        let (mut record, mut rule) = self.find_match(&q)?;

        // Staged rollout: when an orchestrator governs this database and
        // the matched driver is one of its two managed versions, the
        // orchestrator decides which version this host should run right
        // now. Swapping the matched record *before* the renewal logic
        // means wave-gated upgrades and post-halt rollbacks both fall out
        // of the ordinary Table-4 path below.
        let mut rollout_managed = false;
        if let Some(ro) = self.rollout.lock().clone() {
            if ro.database() == req.database && ro.manages(record.id) {
                rollout_managed = true;
                let target = ro.resolve(from.host());
                if target != record.id {
                    if let Ok(target_rec) = self.store.record(target) {
                        let target_rule = self
                            .store
                            .permitted_driver_ids(&q.identity)?
                            .into_iter()
                            .find(|(id, _)| *id == target)
                            .map(|(_, r)| r);
                        record = target_rec;
                        rule = target_rule.or(rule);
                    }
                }
            }
        }

        // Renewal logic (Table 4).
        let same_driver = match &req.kind {
            RequestKind::Renewal { current } => {
                let renew = rule
                    .as_ref()
                    .map(|r| r.renew_policy)
                    .unwrap_or(self.config.default_renew);
                match renew {
                    RenewPolicy::Revoke => {
                        return Err(DrvError::LeaseExpired(format!(
                            "driver {} revoked, no replacement offered",
                            current
                        )))
                    }
                    RenewPolicy::Upgrade => record.id == *current,
                    RenewPolicy::Renew => {
                        if record.id == *current {
                            true
                        } else if rollout_managed {
                            // The rollout control plane is authoritative
                            // for its managed drivers: a keep-current
                            // RENEW rule must not pin a client to a
                            // version the orchestrator rolled forward or
                            // back.
                            false
                        } else if let Some((cur_rec, cur_rule)) =
                            self.current_still_granted(&q, *current)?
                        {
                            // RENEW: "continue to use the same driver" —
                            // the current driver is still granted, so keep
                            // it even though a different driver matches
                            // first.
                            record = cur_rec;
                            rule = cur_rule;
                            true
                        } else {
                            false
                        }
                    }
                }
            }
            _ => false,
        };

        if !advertise_only {
            let lease_ms = rule
                .as_ref()
                .and_then(|r| r.lease_time_ms)
                .map(|ms| ms.max(1) as u64)
                .unwrap_or(self.config.default_lease_ms);
            self.licenses
                .acquire(record.id, &req.user, from.host(), lease_ms, now)?;
            self.store
                .log_lease(&q.identity, record.id, now as i64, lease_ms as i64)?;
        }
        let offer = self.offer_for(&record, rule.as_ref(), req, same_driver, advertise_only)?;
        Ok(DrvMsg::Offer(offer))
    }

    fn handle_file_request(&self, location: &str, method: TransferMethod) -> DrvResult<DrvMsg> {
        let staged =
            self.staged.lock().remove(location).ok_or_else(|| {
                DrvError::TransferFailed(format!("unknown location {location:?}"))
            })?;
        if method != staged.method {
            // Re-stage: the client asked with the wrong method; keep the
            // file available for a corrected request.
            let size = staged.bytes.len();
            self.staged.lock().insert(location.to_string(), staged);
            let _ = size;
            return Err(DrvError::TransferFailed(format!(
                "transfer method mismatch for {location:?}"
            )));
        }
        let raw_len = staged.bytes.len() as u64;
        let payload = transfer::wrap(staged.method, &staged.bytes, Some(&self.cert))?;
        {
            let mut st = self.stats.lock();
            st.files += 1;
            st.file_bytes += raw_len;
        }
        Ok(DrvMsg::FileData { payload })
    }

    fn handle_chunk_request(&self, digests: &[u64], method: TransferMethod) -> DrvResult<DrvMsg> {
        let method = method.resolve(self.config.default_transfer);
        let mut chunks = Vec::with_capacity(digests.len());
        for d in digests {
            let bytes = self
                .depot
                .chunk(*d)
                .ok_or_else(|| DrvError::TransferFailed(format!("unknown chunk {d:016x}")))?;
            chunks.push((*d, bytes));
        }
        let set = ChunkSet { chunks };
        let raw_len = set.payload_bytes();
        let payload = transfer::wrap(method, &set.encode(), Some(&self.cert))?;
        {
            let mut st = self.stats.lock();
            st.chunk_requests += 1;
            st.chunk_bytes += raw_len;
        }
        Ok(DrvMsg::ChunkData { payload })
    }

    /// Handles one decoded protocol message (exposed for in-process
    /// embedding; the network path goes through [`Service::call`]).
    pub fn handle(&self, from: &Addr, msg: DrvMsg) -> DrvMsg {
        let result = match &msg {
            DrvMsg::Request(req) => {
                self.stats.lock().requests += 1;
                self.handle_request(from, req, false)
            }
            DrvMsg::Discover(req) => {
                self.stats.lock().requests += 1;
                self.handle_request(from, req, true)
            }
            DrvMsg::RenewBatch { entries } => {
                {
                    let mut st = self.stats.lock();
                    st.batch_frames += 1;
                    st.batched_renewals += entries.len() as u64;
                    st.requests += entries.len() as u64;
                }
                let mut replies = Vec::with_capacity(entries.len());
                for (host, req) in entries {
                    // License seats belong to the originating client, not
                    // the aggregator that forwarded the frame.
                    let origin = Addr::new(host.clone(), from.port());
                    match self.handle_request(&origin, req, false) {
                        Ok(DrvMsg::Offer(offer)) => {
                            let mut st = self.stats.lock();
                            st.offers += 1;
                            if offer.same_driver {
                                st.renewals += 1;
                            }
                            drop(st);
                            replies.push(Ok(offer));
                        }
                        Ok(other) => {
                            self.stats.lock().errors += 1;
                            let e = DrvError::Internal(format!(
                                "non-offer reply to batched renewal: {other:?}"
                            ));
                            replies.push(Err((DrvErrCode::classify(&e), e.to_string())));
                        }
                        Err(e) => {
                            self.stats.lock().errors += 1;
                            replies.push(Err((DrvErrCode::classify(&e), e.to_string())));
                        }
                    }
                }
                Ok(DrvMsg::OfferBatch { replies })
            }
            DrvMsg::FileRequest {
                location,
                transfer_method,
            } => self.handle_file_request(location, *transfer_method),
            DrvMsg::ChunkRequest {
                digests,
                transfer_method,
            } => self.handle_chunk_request(digests, *transfer_method),
            DrvMsg::Release {
                database: _,
                user,
                driver,
            } => {
                self.licenses.release(*driver, user, from.host());
                Ok(DrvMsg::ReleaseOk)
            }
            DrvMsg::MirrorAnnounce { location, zone } => {
                self.stats.lock().mirror_announces += 1;
                self.directory.announce(location, zone.clone(), false);
                Ok(DrvMsg::MirrorAck { known: true })
            }
            DrvMsg::MirrorHeartbeat {
                location,
                chunk_count,
                served_bytes,
                load,
                coverage,
            } => {
                self.stats.lock().mirror_heartbeats += 1;
                let known = self.directory.heartbeat(
                    location,
                    *chunk_count,
                    *served_bytes,
                    *load,
                    coverage,
                );
                Ok(DrvMsg::MirrorAck { known })
            }
            DrvMsg::MirrorComplaint {
                location,
                digest: _,
                detail: _,
            } => {
                let outcome = self.directory.complaint(location, from.host());
                {
                    let mut st = self.stats.lock();
                    st.mirror_complaints += 1;
                    if outcome == ComplaintOutcome::Demoted {
                        st.mirror_demotions += 1;
                    }
                }
                Ok(DrvMsg::MirrorAck {
                    known: outcome != ComplaintOutcome::Unknown,
                })
            }
            DrvMsg::ActivationReport {
                database,
                driver,
                version: _,
                ok,
                detail: _,
            } => {
                {
                    let mut st = self.stats.lock();
                    st.activation_reports += 1;
                    if !ok {
                        st.activation_failures += 1;
                    }
                }
                if let Some(ro) = self.rollout.lock().clone() {
                    if ro.database() == *database {
                        ro.report_activation(from.host(), *driver, *ok);
                    }
                }
                Ok(DrvMsg::ActivationAck)
            }
            other => Err(DrvError::Codec(format!(
                "unexpected client message {other:?}"
            ))),
        };
        match result {
            Ok(m) => {
                let mut st = self.stats.lock();
                if let DrvMsg::Offer(o) = &m {
                    st.offers += 1;
                    if o.same_driver {
                        st.renewals += 1;
                    }
                }
                m
            }
            Err(e) => {
                self.stats.lock().errors += 1;
                DrvMsg::error_from(&e)
            }
        }
    }
}

impl Service for DrivolutionServer {
    fn call(&self, from: &Addr, request: Bytes) -> Result<Bytes, NetError> {
        let msg = DrvMsg::decode(request).map_err(|e| NetError::Protocol(e.to_string()))?;
        Ok(self.handle(from, msg).encode())
    }

    fn accept_pipe(&self, from: &Addr, pipe: Pipe) -> Result<(), NetError> {
        self.hub.register(from.clone(), pipe);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::EmbeddedExec;
    use drivolution_core::{ApiName, BinaryFormat, ChannelTrust, DriverImage, DriverVersion};
    use minidb::MiniDb;

    fn record(id: i64, proto: u16, version: DriverVersion) -> DriverRecord {
        let image = DriverImage::new(format!("drv-{id}"), version, proto);
        let bytes = pack_driver(BinaryFormat::Djar, &image);
        DriverRecord::new(DriverId(id), ApiName::rdbc(), BinaryFormat::Djar, bytes)
            .with_version(version)
    }

    fn server_with(config: ServerConfig) -> (DrivolutionServer, Clock) {
        let clock = Clock::simulated();
        let db = Arc::new(MiniDb::with_clock("orders", clock.clone()));
        let store = DriverStore::new(Box::new(EmbeddedExec::new(db)));
        store.install_schema().unwrap();
        let srv = DrivolutionServer::new("drv1", store, clock.clone(), config);
        (srv, clock)
    }

    fn client() -> Addr {
        Addr::new("app-host", 9)
    }

    fn bootstrap_req() -> DrvRequest {
        DrvRequest::bootstrap("orders", "app", "RDBC", "linux-x86_64")
    }

    fn expect_offer(msg: DrvMsg) -> DrvOffer {
        match msg {
            DrvMsg::Offer(o) => o,
            other => panic!("expected offer, got {other:?}"),
        }
    }

    #[test]
    fn bootstrap_request_offer_file_flow() {
        let (srv, _clock) = server_with(ServerConfig::default());
        srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
            .unwrap();
        let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(bootstrap_req())));
        assert_eq!(offer.driver_id, DriverId(1));
        assert!(!offer.same_driver);
        assert_eq!(offer.transfer_method, TransferMethod::Sealed);
        assert!(offer.size > 0);

        // Download the file over the sealed channel.
        let reply = srv.handle(
            &client(),
            DrvMsg::FileRequest {
                location: offer.location.clone(),
                transfer_method: offer.transfer_method,
            },
        );
        let DrvMsg::FileData { payload } = reply else {
            panic!("{reply:?}")
        };
        let mut trust = ChannelTrust::new();
        trust.pin(srv.certificate());
        let raw = transfer::unwrap(offer.transfer_method, payload, &trust).unwrap();
        let image = unpack_driver(offer.format, raw).unwrap();
        assert_eq!(image.name, "drv-1");

        // The staged file is single-use.
        let again = srv.handle(
            &client(),
            DrvMsg::FileRequest {
                location: offer.location,
                transfer_method: offer.transfer_method,
            },
        );
        assert!(matches!(again, DrvMsg::Error { .. }));

        let st = srv.stats();
        assert_eq!(st.requests, 1);
        assert_eq!(st.offers, 1);
        assert_eq!(st.files, 1);
        assert_eq!(srv.store().lease_count().unwrap(), 1);
    }

    #[test]
    fn unknown_database_gets_invalid_database_error() {
        let (srv, _c) = server_with(ServerConfig {
            serves: Some(vec!["orders".into()]),
            ..ServerConfig::default()
        });
        let mut req = bootstrap_req();
        req.database = "hr".into();
        let reply = srv.handle(&client(), DrvMsg::Request(req));
        let DrvMsg::Error { code, .. } = reply else {
            panic!()
        };
        assert_eq!(code, drivolution_core::proto::DrvErrCode::InvalidDatabase);
    }

    #[test]
    fn no_driver_yields_no_matching_driver_error() {
        let (srv, _c) = server_with(ServerConfig::default());
        let reply = srv.handle(&client(), DrvMsg::Request(bootstrap_req()));
        let DrvMsg::Error { code, message } = reply else {
            panic!()
        };
        assert_eq!(code, drivolution_core::proto::DrvErrCode::NoMatchingDriver);
        assert!(message.contains("RDBC"));
    }

    #[test]
    fn renewal_same_driver_offers_without_file() {
        let (srv, _c) = server_with(ServerConfig::default());
        srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
            .unwrap();
        let mut req = bootstrap_req();
        req.kind = RequestKind::Renewal {
            current: DriverId(1),
        };
        let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(req)));
        assert!(offer.same_driver);
        assert!(offer.location.is_empty());
        assert_eq!(srv.stats().renewals, 1);
    }

    #[test]
    fn renewal_with_newer_driver_offers_upgrade() {
        let (srv, _c) = server_with(ServerConfig {
            default_renew: RenewPolicy::Upgrade,
            ..ServerConfig::default()
        });
        srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
            .unwrap();
        srv.install_driver(&record(2, 2, DriverVersion::new(2, 0, 0)))
            .unwrap();
        // Permission rules route everyone to driver 2 now.
        srv.add_rule(
            &PermissionRule::any(DriverId(2))
                .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
        )
        .unwrap();
        let mut req = bootstrap_req();
        req.kind = RequestKind::Renewal {
            current: DriverId(1),
        };
        let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(req)));
        assert_eq!(offer.driver_id, DriverId(2));
        assert!(!offer.same_driver);
        assert!(!offer.location.is_empty());
    }

    #[test]
    fn renewal_under_revoke_policy_errors() {
        let (srv, _c) = server_with(ServerConfig::default());
        srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
            .unwrap();
        srv.add_rule(
            &PermissionRule::any(DriverId(1))
                .with_policies(RenewPolicy::Revoke, ExpirationPolicy::AfterClose),
        )
        .unwrap();
        let mut req = bootstrap_req();
        req.kind = RequestKind::Renewal {
            current: DriverId(1),
        };
        let reply = srv.handle(&client(), DrvMsg::Request(req));
        let DrvMsg::Error { code, .. } = reply else {
            panic!("{reply:?}")
        };
        assert_eq!(code, drivolution_core::proto::DrvErrCode::NoDriverAvailable);
    }

    #[test]
    fn permission_rules_carry_lease_policies_and_options() {
        let (srv, _c) = server_with(ServerConfig::default());
        srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
            .unwrap();
        srv.add_rule(
            &PermissionRule::any(DriverId(1))
                .with_lease_ms(60_000)
                .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::Immediate)
                .with_transfer(TransferMethod::Checksum)
                .with_options("fetch_size=100, lang=fr"),
        )
        .unwrap();
        let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(bootstrap_req())));
        assert_eq!(offer.lease_ms, 60_000);
        assert_eq!(offer.renew_policy, RenewPolicy::Upgrade);
        assert_eq!(offer.expiration_policy, ExpirationPolicy::Immediate);
        assert_eq!(offer.transfer_method, TransferMethod::Checksum);
        assert_eq!(
            offer.options,
            vec![
                ("fetch_size".to_string(), "100".to_string()),
                ("lang".to_string(), "fr".to_string())
            ]
        );
    }

    #[test]
    fn signing_produces_verifiable_offers() {
        let key = SigningKey::from_seed(7);
        let vk = key.verifying_key();
        let (srv, _c) = server_with(ServerConfig {
            signing: Some(key),
            default_transfer: TransferMethod::Plain,
            ..ServerConfig::default()
        });
        srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
            .unwrap();
        let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(bootstrap_req())));
        let sig = offer.signature.expect("signed offer");
        let reply = srv.handle(
            &client(),
            DrvMsg::FileRequest {
                location: offer.location,
                transfer_method: offer.transfer_method,
            },
        );
        let DrvMsg::FileData { payload } = reply else {
            panic!()
        };
        let raw = transfer::unwrap(TransferMethod::Plain, payload, &ChannelTrust::new()).unwrap();
        vk.verify(&raw, &sig).unwrap();
    }

    #[test]
    fn discover_advertises_without_staging_or_licensing() {
        let (srv, _c) = server_with(ServerConfig::default());
        srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
            .unwrap();
        srv.licenses().set_limit(DriverId(1), 1);
        // Two discovers do not consume licenses or stage files.
        for _ in 0..2 {
            let offer = expect_offer(srv.handle(&client(), DrvMsg::Discover(bootstrap_req())));
            assert!(offer.location.is_empty() || !offer.location.is_empty());
        }
        assert_eq!(srv.licenses().available(DriverId(1), 0), Some(1));
        assert_eq!(srv.store().lease_count().unwrap(), 0);
    }

    #[test]
    fn license_exhaustion_denies_offers() {
        let (srv, _c) = server_with(ServerConfig::default());
        srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
            .unwrap();
        srv.licenses().set_limit(DriverId(1), 1);
        let first = srv.handle(&Addr::new("h1", 1), DrvMsg::Request(bootstrap_req()));
        expect_offer(first);
        let second = srv.handle(&Addr::new("h2", 1), DrvMsg::Request(bootstrap_req()));
        let DrvMsg::Error { code, .. } = second else {
            panic!()
        };
        assert_eq!(code, drivolution_core::proto::DrvErrCode::PermissionDenied);
        // Release frees the seat.
        let rel = srv.handle(
            &Addr::new("h1", 1),
            DrvMsg::Release {
                database: "orders".into(),
                user: "app".into(),
                driver: DriverId(1),
            },
        );
        assert_eq!(rel, DrvMsg::ReleaseOk);
        expect_offer(srv.handle(&Addr::new("h2", 1), DrvMsg::Request(bootstrap_req())));
    }

    #[test]
    fn extension_request_serves_enriched_driver() {
        let (srv, _c) = server_with(ServerConfig {
            default_transfer: TransferMethod::Plain,
            ..ServerConfig::default()
        });
        srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
            .unwrap();
        srv.assembler().register(drivolution_core::Extension::Gis);
        let mut req = bootstrap_req();
        req.kind = RequestKind::Extension {
            base: DriverId(1),
            name: "gis".into(),
        };
        let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(req)));
        let reply = srv.handle(
            &client(),
            DrvMsg::FileRequest {
                location: offer.location,
                transfer_method: offer.transfer_method,
            },
        );
        let DrvMsg::FileData { payload } = reply else {
            panic!()
        };
        let raw = transfer::unwrap(TransferMethod::Plain, payload, &ChannelTrust::new()).unwrap();
        let image = unpack_driver(offer.format, raw).unwrap();
        assert!(image.extension("gis").is_some());
    }

    #[test]
    fn customization_trims_feature_set() {
        let (srv, _c) = server_with(ServerConfig {
            customize: true,
            default_transfer: TransferMethod::Plain,
            ..ServerConfig::default()
        });
        // Base driver bundles French and German NLS.
        let mut image = DriverImage::new("fat", DriverVersion::new(1, 0, 0), 1);
        image.extensions = vec![
            drivolution_core::Extension::Nls {
                locale: "fr_FR".into(),
            },
            drivolution_core::Extension::Nls {
                locale: "de_DE".into(),
            },
        ];
        let bytes = pack_driver(BinaryFormat::Djar, &image);
        srv.install_driver(&DriverRecord::new(
            DriverId(1),
            ApiName::rdbc(),
            BinaryFormat::Djar,
            bytes,
        ))
        .unwrap();
        let mut req = bootstrap_req();
        req.options = vec![("locale".into(), "fr_FR".into())];
        let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(req)));
        let reply = srv.handle(
            &client(),
            DrvMsg::FileRequest {
                location: offer.location,
                transfer_method: offer.transfer_method,
            },
        );
        let DrvMsg::FileData { payload } = reply else {
            panic!()
        };
        let raw = transfer::unwrap(TransferMethod::Plain, payload, &ChannelTrust::new()).unwrap();
        let custom = unpack_driver(offer.format, raw).unwrap();
        assert!(custom.extension("nls-fr_FR").is_some());
        assert!(custom.extension("nls-de_DE").is_none());
    }

    #[test]
    fn admin_events_fire_and_replication_does_not_loop() {
        let (srv, _c) = server_with(ServerConfig::default());
        let events: Arc<Mutex<Vec<AdminEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = events.clone();
        srv.subscribe(Arc::new(move |e| sink.lock().push(e.clone())));
        let rec = record(1, 1, DriverVersion::new(1, 0, 0));
        srv.install_driver(&rec).unwrap();
        srv.add_rule(&PermissionRule::any(DriverId(1))).unwrap();
        srv.expire_driver(DriverId(1)).unwrap();
        assert_eq!(events.lock().len(), 3);

        // Applying a replicated event must not re-emit.
        let (peer, _c2) = server_with(ServerConfig::default());
        let peer_events: Arc<Mutex<Vec<AdminEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = peer_events.clone();
        peer.subscribe(Arc::new(move |e| sink.lock().push(e.clone())));
        peer.apply_replicated(&AdminEvent::DriverAdded(rec))
            .unwrap();
        assert!(peer_events.lock().is_empty());
        assert_eq!(peer.store().records().unwrap().len(), 1);
    }

    #[test]
    fn have_with_exact_digest_gets_zero_transfer_revalidation() {
        let (srv, _c) = server_with(ServerConfig::default());
        let rec = record(1, 1, DriverVersion::new(1, 0, 0));
        srv.install_driver(&rec).unwrap();
        let digest = fnv1a64(&rec.binary);

        let mut req = bootstrap_req();
        req.have = Some(drivolution_core::HaveSummary {
            images: vec![digest],
            params: srv.config.depot_chunking,
            chunks: Vec::new(),
        });
        let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(req)));
        assert_eq!(offer.content_digest, Some(digest));
        assert!(offer.location.is_empty(), "revalidation must not stage");
        assert!(offer.chunked.is_none());
        assert!(!offer.same_driver);
        assert_eq!(offer.size, rec.binary.len() as u64);
        let st = srv.stats();
        assert_eq!(st.revalidations, 1);
        assert_eq!(st.files, 0);
    }

    fn padded_record(id: i64, version: DriverVersion) -> DriverRecord {
        let image = DriverImage::new("drv-delta", version, 1);
        let bytes =
            drivolution_core::pack::pack_driver_padded(BinaryFormat::Djar, &image, 64 * 1024);
        DriverRecord::new(DriverId(id), ApiName::rdbc(), BinaryFormat::Djar, bytes)
            .with_version(version)
    }

    #[test]
    fn have_with_old_version_chunks_gets_delta_offer() {
        let (srv, _c) = server_with(ServerConfig::default());
        // v1 and v2 share the 64 KiB padding blob; only the image entry
        // differs (same encoded length, so chunk boundaries line up).
        let v1 = padded_record(1, DriverVersion::new(1, 0, 0));
        let v2 = padded_record(2, DriverVersion::new(2, 0, 0));
        assert_eq!(v1.binary.len(), v2.binary.len());
        srv.install_driver(&v2).unwrap();

        // The client depot holds v1: its HAVE lists v1's chunks.
        let v1_manifest =
            drivolution_core::ChunkManifest::of_with(&v1.binary, &srv.config.depot_chunking);
        let mut req = bootstrap_req();
        req.have = Some(drivolution_core::HaveSummary {
            images: vec![v1_manifest.content_digest],
            params: srv.config.depot_chunking,
            chunks: v1_manifest.chunks.clone(),
        });
        let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(req)));
        let plan = offer.chunked.expect("delta offer expected");
        assert!(offer.location.is_empty(), "delta must not stage a file");
        assert!(
            plan.missing.len() < plan.manifest.chunk_count() / 4,
            "only the edited chunks should travel: {}/{}",
            plan.missing.len(),
            plan.manifest.chunk_count()
        );
        assert_eq!(srv.stats().delta_offers, 1);

        // The missing chunks are servable via CHUNK_REQUEST.
        let reply = srv.handle(
            &client(),
            DrvMsg::ChunkRequest {
                digests: plan.missing.clone(),
                transfer_method: TransferMethod::Checksum,
            },
        );
        let DrvMsg::ChunkData { payload } = reply else {
            panic!("{reply:?}")
        };
        let raw = transfer::unwrap(
            TransferMethod::Checksum,
            payload,
            &drivolution_core::ChannelTrust::new(),
        )
        .unwrap();
        let set = ChunkSet::decode(raw).unwrap();
        assert_eq!(set.chunks.len(), plan.missing.len());
        assert!(srv.stats().chunk_bytes < v2.binary.len() as u64 / 4);
    }

    #[test]
    fn unknown_chunk_request_is_an_error() {
        let (srv, _c) = server_with(ServerConfig::default());
        let reply = srv.handle(
            &client(),
            DrvMsg::ChunkRequest {
                digests: vec![0xdead_beef],
                transfer_method: TransferMethod::Checksum,
            },
        );
        assert!(matches!(reply, DrvMsg::Error { .. }));
    }

    #[test]
    fn registered_mirrors_rank_into_delta_offers_and_rotate() {
        let (srv, _c) = server_with(ServerConfig::default());
        let v2 = padded_record(2, DriverVersion::new(2, 0, 0));
        srv.install_driver(&v2).unwrap();
        srv.register_mirror("mirror1:1071");
        srv.register_mirror("mirror2:1071");

        let v1 = padded_record(1, DriverVersion::new(1, 0, 0));
        let v1_manifest =
            drivolution_core::ChunkManifest::of_with(&v1.binary, &srv.config.depot_chunking);
        let have = drivolution_core::HaveSummary {
            images: vec![v1_manifest.content_digest],
            params: srv.config.depot_chunking,
            chunks: v1_manifest.chunks.clone(),
        };
        let mut seen = Vec::new();
        for _ in 0..2 {
            let mut req = bootstrap_req();
            req.have = Some(have.clone());
            let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(req)));
            seen.push(offer.chunked.unwrap().mirrors);
        }
        // Every plan carries both candidates; equal-rank mirrors rotate
        // so consecutive clients lead with different replicas.
        assert_eq!(seen[0].len(), 2);
        assert_eq!(seen[1].len(), 2);
        assert!(seen[0].iter().all(|m| m.healthy));
        assert_ne!(seen[0][0].location, seen[1][0].location);
    }

    #[test]
    fn duplicate_mirror_registration_does_not_duplicate_candidates() {
        // Regression: register_mirror used to push blindly into a Vec,
        // so re-registering a location gave it extra round-robin slots.
        let (srv, _c) = server_with(ServerConfig::default());
        srv.register_mirror("mirror1:1071");
        srv.register_mirror("mirror1:1071");
        srv.register_mirror("mirror2:1071");
        assert_eq!(srv.mirror_directory().len(), 2);
        let c = srv.mirror_directory().candidates(None, &[]);
        assert_eq!(c.len(), 2);
        assert_ne!(c[0].location, c[1].location);
    }

    #[test]
    fn announce_and_heartbeat_drive_the_directory_lifecycle() {
        use crate::directory::MirrorHealth;
        let (srv, clock) = server_with(ServerConfig::default());
        let from = Addr::new("mirror1", 1071);
        let reply = srv.handle(
            &from,
            DrvMsg::MirrorAnnounce {
                location: "mirror1:1071".into(),
                zone: Some("east".into()),
            },
        );
        assert_eq!(reply, DrvMsg::MirrorAck { known: true });

        // A heartbeat for an unknown mirror asks it to re-announce.
        let reply = srv.handle(
            &from,
            DrvMsg::MirrorHeartbeat {
                location: "ghost:1071".into(),
                chunk_count: 0,
                served_bytes: 0,
                load: 0,
                coverage: Vec::new(),
            },
        );
        assert_eq!(reply, DrvMsg::MirrorAck { known: false });

        // Silence past the quarantine threshold drops the mirror from
        // plans; a fresh heartbeat resurrects it.
        clock.advance_ms(16_000);
        assert_eq!(
            srv.mirror_directory().entry("mirror1:1071").unwrap().health,
            MirrorHealth::Quarantined
        );
        assert!(srv
            .mirror_directory()
            .candidates(Some("east"), &[])
            .is_empty());
        let reply = srv.handle(
            &from,
            DrvMsg::MirrorHeartbeat {
                location: "mirror1:1071".into(),
                chunk_count: 7,
                served_bytes: 4096,
                load: 2,
                coverage: vec![0x1, 0x2],
            },
        );
        assert_eq!(reply, DrvMsg::MirrorAck { known: true });
        let entry = srv.mirror_directory().entry("mirror1:1071").unwrap();
        assert_eq!(entry.health, MirrorHealth::Healthy);
        assert_eq!(entry.chunk_count, 7);
        let st = srv.stats();
        assert_eq!(st.mirror_announces, 1);
        assert_eq!(st.mirror_heartbeats, 2);
    }

    #[test]
    fn delta_offers_rank_same_zone_mirrors_first_for_zoned_clients() {
        let (srv, _c) = server_with(ServerConfig::default());
        let v2 = padded_record(2, DriverVersion::new(2, 0, 0));
        srv.install_driver(&v2).unwrap();
        for (loc, zone) in [("m-east:1071", "east"), ("m-west:1071", "west")] {
            srv.handle(
                &client(),
                DrvMsg::MirrorAnnounce {
                    location: loc.into(),
                    zone: Some(zone.into()),
                },
            );
        }
        let v1 = padded_record(1, DriverVersion::new(1, 0, 0));
        let v1_manifest =
            drivolution_core::ChunkManifest::of_with(&v1.binary, &srv.config.depot_chunking);
        for (zone, want_first) in [("east", "m-east:1071"), ("west", "m-west:1071")] {
            let mut req = bootstrap_req();
            req.zone = Some(zone.into());
            req.have = Some(drivolution_core::HaveSummary {
                images: vec![v1_manifest.content_digest],
                params: srv.config.depot_chunking,
                chunks: v1_manifest.chunks.clone(),
            });
            let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(req)));
            let plan = offer.chunked.expect("delta offer");
            assert_eq!(plan.mirrors[0].location, want_first, "zone {zone}");
            assert_eq!(plan.mirrors.len(), 2);
        }
    }

    #[test]
    fn rollout_orchestrator_targets_offers_per_wave_and_takes_reports() {
        use crate::rollout::{RolloutConfig, RolloutOrchestrator, RolloutPlan};

        let (srv, clock) = server_with(ServerConfig {
            default_renew: RenewPolicy::Upgrade,
            ..ServerConfig::default()
        });
        let srv = Arc::new(srv);
        srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
            .unwrap();
        srv.install_driver(&record(2, 2, DriverVersion::new(2, 0, 0)))
            .unwrap();
        let hosts: Vec<String> = (0..4).map(|i| format!("host{i}")).collect();
        let ro = Arc::new(RolloutOrchestrator::new(
            clock.clone(),
            "orders",
            DriverId(1),
            DriverId(2),
            &hosts,
            &RolloutPlan {
                canary: 1,
                wave_pcts: vec![50],
            },
            RolloutConfig::default(),
        ));
        srv.attach_rollout(ro.clone());

        // Only the canary's renewal upgrades; the rest keep driver 1 even
        // though driver 2 matches first.
        let renew = |host: &str| {
            let mut req = bootstrap_req();
            req.kind = RequestKind::Renewal {
                current: DriverId(1),
            };
            expect_offer(srv.handle(&Addr::new(host, 9), DrvMsg::Request(req)))
        };
        let canary_offer = renew("host0");
        assert_eq!(canary_offer.driver_id, DriverId(2));
        assert!(!canary_offer.same_driver);
        let held_offer = renew("host3");
        assert_eq!(held_offer.driver_id, DriverId(1));
        assert!(held_offer.same_driver, "held-back host renews in place");

        // The canary's activation report lands in the orchestrator and
        // the counters.
        let ack = srv.handle(
            &Addr::new("host0", 9),
            DrvMsg::ActivationReport {
                database: "orders".into(),
                driver: DriverId(2),
                version: Some(DriverVersion::new(2, 0, 0)),
                ok: true,
                detail: String::new(),
            },
        );
        assert_eq!(ack, DrvMsg::ActivationAck);
        assert_eq!(ro.status().waves[0].ok, 1);
        let st = srv.stats();
        assert_eq!(st.activation_reports, 1);
        assert_eq!(st.activation_failures, 0);
        srv.detach_rollout();
    }

    #[test]
    fn plain_renewal_never_touches_channel_state() {
        let (srv, _c) = server_with(ServerConfig::default());
        srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
            .unwrap();
        srv.licenses().set_limit(DriverId(1), 4);
        // A dedicated channel whose peer has gone away, still holding a
        // license seat.
        let (client_end, server_end) =
            Pipe::pair(Addr::new("crashed-host", 1), Addr::new("drv1", 1070));
        srv.hub.register(Addr::new("crashed-host", 1), server_end);
        expect_offer(srv.handle(
            &Addr::new("crashed-host", 1),
            DrvMsg::Request(bootstrap_req()),
        ));
        drop(client_end);

        // A plain renewal is matchmaking + licensing only: the broken
        // channel stays registered and its seat stays held, because
        // failure detection belongs to the maintenance task, not the
        // request path.
        let mut req = bootstrap_req();
        req.kind = RequestKind::Renewal {
            current: DriverId(1),
        };
        let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(req)));
        assert!(offer.same_driver);
        assert_eq!(srv.hub.len(), 1, "handle() must not reap channels");
        assert_eq!(srv.licenses().available(DriverId(1), 0), Some(2));

        // The maintenance path reaps the channel and frees its seat.
        assert_eq!(srv.detect_failures(), 1);
        assert_eq!(srv.hub.len(), 0);
        assert_eq!(srv.licenses().available(DriverId(1), 0), Some(3));
    }

    #[test]
    fn renew_batch_grants_seats_to_entry_hosts_not_the_aggregator() {
        let (srv, _c) = server_with(ServerConfig::default());
        srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
            .unwrap();
        srv.licenses().set_limit(DriverId(1), 2);
        let renew_req = || {
            let mut req = bootstrap_req();
            req.kind = RequestKind::Renewal {
                current: DriverId(1),
            };
            req
        };
        let entries = vec![
            ("app0".to_string(), renew_req()),
            ("app1".to_string(), renew_req()),
            ("app2".to_string(), renew_req()),
        ];
        let reply = srv.handle(&Addr::new("aggregator", 7), DrvMsg::RenewBatch { entries });
        let DrvMsg::OfferBatch { replies } = reply else {
            panic!("expected offer batch, got {reply:?}")
        };
        assert_eq!(replies.len(), 3);
        for r in &replies[0..2] {
            let Ok(o) = r else {
                panic!("expected offer, got {r:?}")
            };
            assert!(o.same_driver);
        }
        let Err((code, _)) = &replies[2] else {
            panic!("third entry should exhaust the 2 seats")
        };
        assert_eq!(*code, DrvErrCode::PermissionDenied);
        // Seats belong to the per-entry client hosts, not the forwarding
        // aggregator's address.
        assert_eq!(
            srv.licenses().holders(DriverId(1)),
            vec![
                ("app".to_string(), "app0".to_string()),
                ("app".to_string(), "app1".to_string()),
            ]
        );
        let st = srv.stats();
        assert_eq!((st.batch_frames, st.batched_renewals), (1, 3));
        assert_eq!(
            (st.requests, st.offers, st.renewals, st.errors),
            (3, 2, 2, 1)
        );
    }

    #[test]
    fn memory_and_sql_match_paths_agree_through_server() {
        for path in [MatchPath::Sql, MatchPath::Memory] {
            let (srv, _c) = server_with(ServerConfig {
                match_path: path,
                ..ServerConfig::default()
            });
            srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
                .unwrap();
            srv.install_driver(&record(2, 2, DriverVersion::new(2, 0, 0)))
                .unwrap();
            srv.add_rule(&PermissionRule::any(DriverId(2)).for_user("app"))
                .unwrap();
            let offer = expect_offer(srv.handle(&client(), DrvMsg::Request(bootstrap_req())));
            assert_eq!(offer.driver_id, DriverId(2), "path {path:?}");
        }
    }
}
