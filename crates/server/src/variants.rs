//! The three deployment variants of the Drivolution server (paper §4):
//! in-database (§4.1.2), external (§4.1.3), and standalone (§4.1.4).
//!
//! All three produce the same [`DrivolutionServer`]; they differ in where
//! the driver tables live and how SQL reaches them.

use std::sync::Arc;

use netsim::{Addr, Network};

use driverkit::{legacy_driver, ConnectProps, DbUrl};
use drivolution_core::{DrvError, DrvResult};
use minidb::MiniDb;

use crate::server::{DrivolutionServer, ServerConfig};
use crate::store::{DriverStore, EmbeddedExec, RemoteExec};

/// In-database server (§4.1.2): the driver tables live in the production
/// database itself; the Drivolution service listens on a separate port of
/// the same host ("the Drivolution Server can listen on a different port
/// than the database engine to allow legacy drivers to access the
/// database using existing technology").
///
/// # Errors
///
/// Schema installation or bind failures.
pub fn attach_in_database(
    net: &Network,
    db: Arc<MiniDb>,
    drv_addr: Addr,
    mut config: ServerConfig,
) -> DrvResult<Arc<DrivolutionServer>> {
    let store = DriverStore::new(Box::new(EmbeddedExec::new(db.clone())));
    store.install_schema()?;
    // An in-database server serves exactly its own database.
    config.serves = Some(vec![db.name().to_string()]);
    let srv = Arc::new(DrivolutionServer::new(
        drv_addr.host().to_string(),
        store,
        net.clock().clone(),
        config,
    ));
    srv.attach_network(net.clone());
    srv.register_maintenance(net);
    net.bind_arc(drv_addr, srv.clone())
        .map_err(DrvError::from)?;
    Ok(srv)
}

/// External server (§4.1.3): the legacy database does not speak
/// Drivolution, so a separate process holds the driver tables *in that
/// database*, reached through a legacy RDBC driver. "When the legacy
/// driver becomes obsolete, only the Drivolution server driver needs to
/// be updated (that is a single machine)."
///
/// # Errors
///
/// Legacy connect, schema installation, or bind failures.
pub fn launch_external(
    net: &Network,
    legacy_db: &DbUrl,
    admin: &ConnectProps,
    legacy_proto: u16,
    drv_addr: Addr,
    mut config: ServerConfig,
) -> DrvResult<Arc<DrivolutionServer>> {
    let driver = legacy_driver(net, &drv_addr, legacy_proto)
        .map_err(|e| DrvError::Internal(e.to_string()))?;
    let conn = driver
        .connect(legacy_db, admin)
        .map_err(|e| DrvError::Internal(format!("external server legacy connect: {e}")))?;
    let store = DriverStore::new(Box::new(RemoteExec::new(conn)));
    store.install_schema()?;
    config.serves = Some(vec![legacy_db.database().to_string()]);
    let srv = Arc::new(DrivolutionServer::new(
        drv_addr.host().to_string(),
        store,
        net.clock().clone(),
        config,
    ));
    srv.attach_network(net.clone());
    srv.register_maintenance(net);
    net.bind_arc(drv_addr, srv.clone())
        .map_err(DrvError::from)?;
    Ok(srv)
}

/// Standalone server (§4.1.4): a dedicated service distributing drivers
/// for many databases, backed by "an embedded database that does not
/// require driver upgrades".
///
/// # Errors
///
/// Schema installation or bind failures.
pub fn launch_standalone(
    net: &Network,
    drv_addr: Addr,
    config: ServerConfig,
) -> DrvResult<Arc<DrivolutionServer>> {
    let embedded = Arc::new(MiniDb::with_clock(
        format!("{}-drivolution-store", drv_addr.host()),
        net.clock().clone(),
    ));
    let store = DriverStore::new(Box::new(EmbeddedExec::new(embedded)));
    store.install_schema()?;
    let srv = Arc::new(DrivolutionServer::new(
        drv_addr.host().to_string(),
        store,
        net.clock().clone(),
        config,
    ));
    srv.attach_network(net.clone());
    srv.register_maintenance(net);
    net.bind_arc(drv_addr, srv.clone())
        .map_err(DrvError::from)?;
    Ok(srv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivolution_core::pack::pack_driver;
    use drivolution_core::proto::{DrvMsg, DrvRequest};
    use drivolution_core::{
        ApiName, BinaryFormat, DriverId, DriverImage, DriverRecord, DriverVersion, DRIVOLUTION_PORT,
    };
    use minidb::wire::DbServer;

    fn driver_record(id: i64) -> DriverRecord {
        let image = DriverImage::new(format!("drv-{id}"), DriverVersion::new(1, 0, 0), 1);
        DriverRecord::new(
            DriverId(id),
            ApiName::rdbc(),
            BinaryFormat::Djar,
            pack_driver(BinaryFormat::Djar, &image),
        )
    }

    fn request_via_net(net: &Network, to: &Addr, db: &str) -> DrvMsg {
        request_via_net_from(net, "client", to, db)
    }

    fn request_via_net_from(net: &Network, host: &str, to: &Addr, db: &str) -> DrvMsg {
        let req = DrvRequest::bootstrap(db, "app", "RDBC", "linux-x86_64");
        let reply = net
            .request(&Addr::new(host, 1), to, DrvMsg::Request(req).encode())
            .unwrap();
        DrvMsg::decode(reply).unwrap()
    }

    #[test]
    fn in_database_server_serves_its_own_db_only() {
        let net = Network::new();
        let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
        net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))
            .unwrap();
        let drv_addr = Addr::new("db1", DRIVOLUTION_PORT);
        let srv = attach_in_database(&net, db, drv_addr.clone(), ServerConfig::default()).unwrap();
        srv.install_driver(&driver_record(1)).unwrap();

        assert!(matches!(
            request_via_net(&net, &drv_addr, "orders"),
            DrvMsg::Offer(_)
        ));
        assert!(matches!(
            request_via_net(&net, &drv_addr, "hr"),
            DrvMsg::Error { .. }
        ));
        // The driver tables are visible inside the production database.
        let mut s = srv.store();
        let _ = &mut s;
        assert_eq!(srv.store().records().unwrap().len(), 1);
    }

    #[test]
    fn external_server_stores_drivers_in_the_legacy_db() {
        let net = Network::new();
        let legacy = Arc::new(MiniDb::with_clock("legacydb", net.clock().clone()));
        net.bind_arc(
            Addr::new("legacy-host", 5432),
            Arc::new(DbServer::new(legacy.clone())),
        )
        .unwrap();
        let drv_addr = Addr::new("drv-host", DRIVOLUTION_PORT);
        let srv = launch_external(
            &net,
            &DbUrl::direct(Addr::new("legacy-host", 5432), "legacydb"),
            &ConnectProps::user("admin", "admin"),
            2,
            drv_addr.clone(),
            ServerConfig::default(),
        )
        .unwrap();
        srv.install_driver(&driver_record(1)).unwrap();
        // The driver row physically lives in the legacy database.
        assert_eq!(legacy.table_len("information_schema.drivers").unwrap(), 1);
        assert!(matches!(
            request_via_net(&net, &drv_addr, "legacydb"),
            DrvMsg::Offer(_)
        ));
    }

    #[test]
    fn maintenance_task_reaps_broken_channels_on_schedule() {
        let net = Network::new();
        let drv_addr = Addr::new("drv", DRIVOLUTION_PORT);
        let srv = launch_standalone(&net, drv_addr.clone(), ServerConfig::default()).unwrap();
        srv.install_driver(&driver_record(1)).unwrap();
        srv.licenses().set_limit(DriverId(1), 1);
        // A client opens a dedicated channel, takes the only seat, then
        // crashes (its pipe end drops).
        let pipe = net.connect_pipe(&Addr::new("c1", 1), &drv_addr).unwrap();
        assert!(matches!(
            request_via_net_from(&net, "c1", &drv_addr, "orders"),
            DrvMsg::Offer(_)
        ));
        let now = net.clock().now_ms();
        assert_eq!(srv.licenses().available(DriverId(1), now), Some(0));
        drop(pipe);

        // Nothing on the request path frees the seat; the registered
        // maintenance task does, on its 30s cadence.
        net.run_until(now + 31_000);
        assert_eq!(
            srv.licenses().available(DriverId(1), net.clock().now_ms()),
            Some(1)
        );
    }

    #[test]
    fn standalone_server_serves_many_databases() {
        let net = Network::new();
        let drv_addr = Addr::new("drv", DRIVOLUTION_PORT);
        let srv = launch_standalone(&net, drv_addr.clone(), ServerConfig::default()).unwrap();
        srv.install_driver(&driver_record(1)).unwrap();
        srv.install_driver(&{
            let mut r = driver_record(2);
            r.binary = pack_driver(
                BinaryFormat::Djar,
                &DriverImage::new("drv-2", DriverVersion::new(2, 0, 0), 2),
            );
            r
        })
        .unwrap();
        // Permission rules route per database.
        srv.add_rule(&drivolution_core::PermissionRule::any(DriverId(1)).for_database("orders"))
            .unwrap();
        srv.add_rule(&drivolution_core::PermissionRule::any(DriverId(2)).for_database("hr"))
            .unwrap();
        let DrvMsg::Offer(o1) = request_via_net(&net, &drv_addr, "orders") else {
            panic!()
        };
        let DrvMsg::Offer(o2) = request_via_net(&net, &drv_addr, "hr") else {
            panic!()
        };
        assert_eq!(o1.driver_id, DriverId(1));
        assert_eq!(o2.driver_id, DriverId(2));
    }
}
