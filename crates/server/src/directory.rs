//! The CDN-style mirror directory.
//!
//! Mirrors register through `MIRROR_ANNOUNCE`, prove liveness (and
//! report chunk coverage and load) through `MIRROR_HEARTBEAT`, and get
//! ranked per requesting client: healthy before overdue, same-zone
//! before cross-zone, lightly loaded before busy, with a rotation
//! tiebreak so equal candidates share traffic. A mirror whose
//! heartbeats stop is quarantined (dropped from plans) and, after a
//! longer silence, evicted entirely.
//!
//! Mirrors registered manually via
//! [`crate::DrivolutionServer::register_mirror`] are *pinned*: they are
//! exempt from heartbeat expiry, matching the hand-configured tier that
//! predates the announce protocol.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use netsim::Clock;

use drivolution_core::MirrorCandidate;

/// Health lifecycle of a directory entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MirrorHealth {
    /// Heartbeating on schedule (or pinned).
    Healthy,
    /// Heartbeat overdue but below the quarantine threshold; offered
    /// last, flagged unhealthy in plans.
    Overdue,
    /// Silent past the quarantine threshold; excluded from plans until
    /// it heartbeats or re-announces.
    Quarantined,
}

/// One registered mirror as the directory sees it.
#[derive(Clone, Debug)]
pub struct MirrorEntry {
    /// `host:port` the mirror serves `CHUNK_REQUEST`s on.
    pub location: String,
    /// Zone the mirror announced itself in.
    pub zone: Option<String>,
    /// Virtual time of the last announce or heartbeat.
    pub last_seen_ms: u64,
    /// Chunk coverage from the last heartbeat.
    pub chunk_count: u64,
    /// Cumulative served bytes from the last heartbeat.
    pub served_bytes: u64,
    /// Requests served between the last two heartbeats (ranking load).
    pub load: u32,
    /// Pinned entries (manual registration) never expire.
    pub pinned: bool,
    /// Current health classification (refreshed by every sweep).
    pub health: MirrorHealth,
}

/// Directory timing and ranking knobs.
#[derive(Clone, Copy, Debug)]
pub struct DirectoryConfig {
    /// Expected heartbeat cadence. An entry is `Overdue` after missing
    /// two beats.
    pub heartbeat_interval_ms: u64,
    /// Silence after which an entry is quarantined (excluded from
    /// plans).
    pub quarantine_after_ms: u64,
    /// Silence after which a quarantined entry is evicted entirely.
    pub evict_after_ms: u64,
    /// Maximum candidates ranked into one chunk plan.
    pub max_candidates: usize,
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        DirectoryConfig {
            heartbeat_interval_ms: 5_000,
            quarantine_after_ms: 15_000,
            evict_after_ms: 120_000,
            max_candidates: 3,
        }
    }
}

/// Health-aware, locality-aware registry of depot mirrors.
#[derive(Debug)]
pub struct MirrorDirectory {
    clock: Clock,
    config: DirectoryConfig,
    entries: Mutex<HashMap<String, MirrorEntry>>,
    rotation: AtomicU64,
}

impl MirrorDirectory {
    /// An empty directory on the given clock.
    pub fn new(clock: Clock, config: DirectoryConfig) -> Self {
        MirrorDirectory {
            clock,
            config,
            entries: Mutex::new(HashMap::new()),
            rotation: AtomicU64::new(0),
        }
    }

    /// Registers (or refreshes) a mirror from an announce. Announcing an
    /// already-known location updates its zone and clears quarantine —
    /// duplicates never create a second entry. Returns `true` when the
    /// location was new.
    pub fn announce(&self, location: &str, zone: Option<String>, pinned: bool) -> bool {
        let now = self.clock.now_ms();
        let mut entries = self.entries.lock();
        match entries.get_mut(location) {
            Some(e) => {
                e.zone = zone;
                e.last_seen_ms = now;
                e.pinned = e.pinned || pinned;
                e.health = MirrorHealth::Healthy;
                false
            }
            None => {
                entries.insert(
                    location.to_string(),
                    MirrorEntry {
                        location: location.to_string(),
                        zone,
                        last_seen_ms: now,
                        chunk_count: 0,
                        served_bytes: 0,
                        load: 0,
                        pinned,
                        health: MirrorHealth::Healthy,
                    },
                );
                true
            }
        }
    }

    /// Applies a heartbeat. Returns `false` for unknown locations (the
    /// mirror was evicted or never announced; it should re-announce).
    pub fn heartbeat(
        &self,
        location: &str,
        chunk_count: u64,
        served_bytes: u64,
        load: u32,
    ) -> bool {
        let now = self.clock.now_ms();
        let mut entries = self.entries.lock();
        match entries.get_mut(location) {
            Some(e) => {
                e.last_seen_ms = now;
                e.chunk_count = chunk_count;
                e.served_bytes = served_bytes;
                e.load = load;
                e.health = MirrorHealth::Healthy;
                true
            }
            None => false,
        }
    }

    /// Reclassifies every entry against the current clock and evicts
    /// mirrors silent past the eviction threshold. Runs implicitly on
    /// every [`candidates`](Self::candidates) call.
    pub fn sweep(&self) {
        let now = self.clock.now_ms();
        let mut entries = self.entries.lock();
        entries.retain(|_, e| {
            if e.pinned {
                return true;
            }
            let silence = now.saturating_sub(e.last_seen_ms);
            e.health = if silence > self.config.quarantine_after_ms {
                MirrorHealth::Quarantined
            } else if silence > 2 * self.config.heartbeat_interval_ms {
                MirrorHealth::Overdue
            } else {
                MirrorHealth::Healthy
            };
            silence <= self.config.evict_after_ms
        });
    }

    /// Ranks the directory for a client in `client_zone`: healthy before
    /// overdue, same-zone before cross-zone, lightly loaded before busy;
    /// ties rotate per call so equal mirrors share traffic. Quarantined
    /// mirrors are excluded. At most `max_candidates` are returned.
    pub fn candidates(&self, client_zone: Option<&str>) -> Vec<MirrorCandidate> {
        self.sweep();
        let entries = self.entries.lock();
        let mut live: Vec<&MirrorEntry> = entries
            .values()
            .filter(|e| e.health != MirrorHealth::Quarantined)
            .collect();
        // Deterministic base order, then a per-call rotation so clients
        // with identical rank keys don't all pile onto one mirror.
        live.sort_by(|a, b| a.location.cmp(&b.location));
        let n = live.len();
        if n == 0 {
            return Vec::new();
        }
        let shift = (self.rotation.fetch_add(1, Ordering::Relaxed) as usize) % n;
        live.rotate_left(shift);
        live.sort_by_key(|e| {
            let zone_miss = match (client_zone, e.zone.as_deref()) {
                (Some(c), Some(z)) => c != z,
                // Without zone information on either side, treat the
                // mirror as local rather than penalizing it.
                _ => false,
            };
            (e.health != MirrorHealth::Healthy, zone_miss, e.load)
        });
        live.into_iter()
            .take(self.config.max_candidates)
            .map(|e| MirrorCandidate {
                location: e.location.clone(),
                zone: e.zone.clone(),
                healthy: e.health == MirrorHealth::Healthy,
            })
            .collect()
    }

    /// Number of registered (non-evicted) mirrors.
    pub fn len(&self) -> usize {
        self.sweep();
        self.entries.lock().len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.sweep();
        self.entries.lock().is_empty()
    }

    /// Snapshot of one entry.
    pub fn entry(&self, location: &str) -> Option<MirrorEntry> {
        self.sweep();
        self.entries.lock().get(location).cloned()
    }

    /// Snapshot of every entry, sorted by location.
    pub fn snapshot(&self) -> Vec<MirrorEntry> {
        self.sweep();
        let mut v: Vec<MirrorEntry> = self.entries.lock().values().cloned().collect();
        v.sort_by(|a, b| a.location.cmp(&b.location));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directory() -> (MirrorDirectory, Clock) {
        let clock = Clock::simulated();
        let dir = MirrorDirectory::new(clock.clone(), DirectoryConfig::default());
        (dir, clock)
    }

    #[test]
    fn announce_dedupes_by_location() {
        let (dir, _c) = directory();
        assert!(dir.announce("m1:1071", Some("east".into()), false));
        assert!(!dir.announce("m1:1071", Some("west".into()), false));
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.entry("m1:1071").unwrap().zone.as_deref(), Some("west"));
    }

    #[test]
    fn heartbeat_refreshes_and_unknown_mirrors_are_told_to_reannounce() {
        let (dir, clock) = directory();
        dir.announce("m1:1071", None, false);
        clock.advance_ms(4_000);
        assert!(dir.heartbeat("m1:1071", 42, 1000, 3));
        let e = dir.entry("m1:1071").unwrap();
        assert_eq!(e.chunk_count, 42);
        assert_eq!(e.load, 3);
        assert_eq!(e.last_seen_ms, 4_000);
        assert!(!dir.heartbeat("ghost:1071", 0, 0, 0));
    }

    #[test]
    fn silence_quarantines_then_evicts() {
        let (dir, clock) = directory();
        dir.announce("m1:1071", None, false);
        clock.advance_ms(11_000); // two missed beats
        assert_eq!(dir.entry("m1:1071").unwrap().health, MirrorHealth::Overdue);
        clock.advance_ms(5_000); // past quarantine_after
        assert_eq!(
            dir.entry("m1:1071").unwrap().health,
            MirrorHealth::Quarantined
        );
        assert!(dir.candidates(None).is_empty());
        // A heartbeat resurrects it.
        assert!(dir.heartbeat("m1:1071", 1, 1, 0));
        assert_eq!(dir.entry("m1:1071").unwrap().health, MirrorHealth::Healthy);
        // Long silence evicts.
        clock.advance_ms(200_000);
        assert!(dir.entry("m1:1071").is_none());
        assert_eq!(dir.len(), 0);
    }

    #[test]
    fn pinned_mirrors_survive_any_silence() {
        let (dir, clock) = directory();
        dir.announce("pinned:1071", None, true);
        clock.advance_ms(10_000_000);
        let c = dir.candidates(None);
        assert_eq!(c.len(), 1);
        assert!(c[0].healthy);
    }

    #[test]
    fn ranking_prefers_healthy_then_same_zone_then_light_load() {
        let (dir, clock) = directory();
        dir.announce("busy-east:1071", Some("east".into()), false);
        dir.announce("idle-east:1071", Some("east".into()), false);
        dir.announce("idle-west:1071", Some("west".into()), false);
        dir.announce("stale-east:1071", Some("east".into()), false);
        clock.advance_ms(12_000); // everyone overdue now...
        dir.heartbeat("busy-east:1071", 10, 10, 50);
        dir.heartbeat("idle-east:1071", 10, 10, 1);
        dir.heartbeat("idle-west:1071", 10, 10, 0);
        // ...except stale-east, which stays overdue (not yet quarantined).
        let c = dir.candidates(Some("east"));
        assert_eq!(c.len(), 3, "max_candidates caps the plan");
        assert_eq!(c[0].location, "idle-east:1071");
        assert_eq!(c[1].location, "busy-east:1071");
        assert_eq!(c[2].location, "idle-west:1071");
        assert!(c.iter().all(|m| m.healthy));

        // A west client ranks its own zone first.
        let c = dir.candidates(Some("west"));
        assert_eq!(c[0].location, "idle-west:1071");
    }

    #[test]
    fn equal_candidates_rotate_across_calls() {
        let (dir, _c) = directory();
        dir.announce("m1:1071", None, false);
        dir.announce("m2:1071", None, false);
        let first: Vec<String> = (0..2)
            .map(|_| dir.candidates(None)[0].location.clone())
            .collect();
        assert_ne!(first[0], first[1], "rotation must spread equal mirrors");
    }
}
