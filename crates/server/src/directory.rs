//! The CDN-style mirror directory.
//!
//! Mirrors register through `MIRROR_ANNOUNCE`, prove liveness (and
//! report chunk coverage and load) through `MIRROR_HEARTBEAT`, and get
//! ranked per requesting client: healthy before overdue, same-zone
//! before cross-zone, better chunk coverage of the requested delta
//! before worse (a read-through miss on a fresh release costs a trip to
//! the primary), lightly loaded before busy, with a rotation tiebreak so
//! equal candidates share traffic. A mirror whose heartbeats stop is
//! quarantined (dropped from plans) and, after a longer silence, evicted
//! entirely.
//!
//! Silence is not the only failure mode: a *byzantine* mirror answers
//! promptly with wrong bytes. Clients detect that locally (digest and
//! checksum verification) and file `MIRROR_COMPLAINT` frames; the
//! directory keeps a sticky per-mirror strike ledger and demotes a
//! mirror once corroborated complaints cross the configured thresholds.
//! Demotion is permanent — unlike quarantine it survives re-announce,
//! heartbeats, and sweeps.
//!
//! Heartbeats normally arrive from the mirror's own scheduler task
//! (registered at [`drivolution_depot::MirrorDepot::launch`] on the
//! network's [`netsim::Scheduler`]); the directory only ever *observes*
//! silence — it never drives anything.
//!
//! Mirrors registered manually via
//! [`crate::DrivolutionServer::register_mirror`] are *pinned*: they are
//! exempt from heartbeat expiry, matching the hand-configured tier that
//! predates the announce protocol.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use netsim::Clock;

use drivolution_core::MirrorCandidate;
use drivolution_depot::MirrorTiming;

/// Health lifecycle of a directory entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MirrorHealth {
    /// Heartbeating on schedule (or pinned).
    Healthy,
    /// Heartbeat overdue but below the quarantine threshold; offered
    /// last, flagged unhealthy in plans.
    Overdue,
    /// Silent past the quarantine threshold; excluded from plans until
    /// it heartbeats or re-announces.
    Quarantined,
}

/// One registered mirror as the directory sees it.
#[derive(Clone, Debug)]
pub struct MirrorEntry {
    /// `host:port` the mirror serves `CHUNK_REQUEST`s on.
    pub location: String,
    /// Zone the mirror announced itself in.
    pub zone: Option<String>,
    /// Virtual time of the last announce or heartbeat.
    pub last_seen_ms: u64,
    /// Chunk coverage count from the last heartbeat.
    pub chunk_count: u64,
    /// Chunk digests the mirror reported holding in its last heartbeat
    /// (capped at the protocol's coverage limit by the sender).
    pub coverage: BTreeSet<u64>,
    /// Cumulative served bytes from the last heartbeat.
    pub served_bytes: u64,
    /// Requests served between the last two heartbeats (ranking load).
    pub load: u32,
    /// Pinned entries (manual registration) never expire.
    pub pinned: bool,
    /// Current health classification (refreshed by every sweep).
    pub health: MirrorHealth,
    /// Corruption complaints recorded against this mirror
    /// (`MIRROR_COMPLAINT` frames). Sticky: never cleared by announce,
    /// heartbeat, or sweep.
    pub strikes: u32,
    /// Distinct client hosts that filed those strikes — demotion needs
    /// corroboration, so one confused client can't take a mirror down.
    pub complainants: BTreeSet<String>,
    /// `true` once the strike ledger crossed both demotion thresholds.
    /// Demoted mirrors are dropped from every plan and cannot re-enter
    /// by re-announcing; distinct from silence-quarantine, which heals.
    pub demoted: bool,
}

/// Directory timing and ranking knobs. The timing side is the server
/// half of the contract whose client half is
/// [`drivolution_depot::MirrorTiming`]: `heartbeat_interval` defaults to
/// the same `Duration` mirrors schedule their heartbeat task with.
#[derive(Clone, Copy, Debug)]
pub struct DirectoryConfig {
    /// Expected heartbeat cadence. An entry is `Overdue` after missing
    /// two beats.
    pub heartbeat_interval: Duration,
    /// Silence after which an entry is quarantined (excluded from
    /// plans).
    pub quarantine_after: Duration,
    /// Silence after which a quarantined entry is evicted entirely.
    pub evict_after: Duration,
    /// Maximum candidates ranked into one chunk plan.
    pub max_candidates: usize,
    /// Corruption strikes required before a mirror is demoted.
    pub demote_strikes: u32,
    /// Distinct complaining client hosts required before a mirror is
    /// demoted (corroboration — a single client's complaints never
    /// demote on their own).
    pub demote_reporters: u32,
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        DirectoryConfig {
            heartbeat_interval: MirrorTiming::default().heartbeat_every,
            quarantine_after: Duration::from_secs(15),
            evict_after: Duration::from_secs(120),
            max_candidates: 3,
            demote_strikes: 2,
            demote_reporters: 2,
        }
    }
}

/// What [`MirrorDirectory::complaint`] did with one complaint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComplaintOutcome {
    /// The complaint named a location the directory has never seen.
    Unknown,
    /// The strike was recorded; the mirror stays in rotation (below
    /// threshold, or already demoted).
    Recorded,
    /// This strike crossed both thresholds: the mirror was demoted now.
    Demoted,
}

fn ms(d: Duration) -> u64 {
    d.as_millis() as u64
}

/// Health-aware, locality- and coverage-aware registry of depot mirrors.
#[derive(Debug)]
pub struct MirrorDirectory {
    clock: Clock,
    config: DirectoryConfig,
    entries: Mutex<BTreeMap<String, MirrorEntry>>,
    rotation: AtomicU64,
}

impl MirrorDirectory {
    /// An empty directory on the given clock.
    pub fn new(clock: Clock, config: DirectoryConfig) -> Self {
        MirrorDirectory {
            clock,
            config,
            entries: Mutex::new(BTreeMap::new()),
            rotation: AtomicU64::new(0),
        }
    }

    /// Registers (or refreshes) a mirror from an announce. Announcing an
    /// already-known location updates its zone and clears *silence*
    /// quarantine — duplicates never create a second entry. The
    /// corruption strike ledger (and a demotion) is sticky: a byzantine
    /// mirror cannot launder its record by re-announcing. Returns `true`
    /// when the location was new.
    pub fn announce(&self, location: &str, zone: Option<String>, pinned: bool) -> bool {
        let now = self.clock.now_ms();
        let mut entries = self.entries.lock();
        match entries.get_mut(location) {
            Some(e) => {
                e.zone = zone;
                e.last_seen_ms = now;
                e.pinned = e.pinned || pinned;
                // Silence heals; strikes and demotion deliberately do
                // not — only the ledger's own thresholds govern them.
                e.health = MirrorHealth::Healthy;
                false
            }
            None => {
                entries.insert(
                    location.to_string(),
                    MirrorEntry {
                        location: location.to_string(),
                        zone,
                        last_seen_ms: now,
                        chunk_count: 0,
                        coverage: BTreeSet::new(),
                        served_bytes: 0,
                        load: 0,
                        pinned,
                        health: MirrorHealth::Healthy,
                        strikes: 0,
                        complainants: BTreeSet::new(),
                        demoted: false,
                    },
                );
                true
            }
        }
    }

    /// Records a `MIRROR_COMPLAINT` from `reporter` (the complaining
    /// client's host) against `location`. The mirror is demoted — struck
    /// from every future plan, immune to re-announce — once it has
    /// accumulated at least `demote_strikes` strikes from at least
    /// `demote_reporters` *distinct* reporters. Complaints against
    /// locations the directory has never seen are ignored (a client
    /// cannot pre-poison a mirror that has not announced).
    pub fn complaint(&self, location: &str, reporter: &str) -> ComplaintOutcome {
        let mut entries = self.entries.lock();
        let Some(e) = entries.get_mut(location) else {
            return ComplaintOutcome::Unknown;
        };
        e.strikes = e.strikes.saturating_add(1);
        e.complainants.insert(reporter.to_string());
        if !e.demoted
            && e.strikes >= self.config.demote_strikes
            && e.complainants.len() >= self.config.demote_reporters as usize
        {
            e.demoted = true;
            ComplaintOutcome::Demoted
        } else {
            ComplaintOutcome::Recorded
        }
    }

    /// Applies a heartbeat. Returns `false` for unknown locations (the
    /// mirror was evicted or never announced; it should re-announce).
    pub fn heartbeat(
        &self,
        location: &str,
        chunk_count: u64,
        served_bytes: u64,
        load: u32,
        coverage: &[u64],
    ) -> bool {
        let now = self.clock.now_ms();
        let mut entries = self.entries.lock();
        match entries.get_mut(location) {
            Some(e) => {
                e.last_seen_ms = now;
                e.chunk_count = chunk_count;
                e.coverage = coverage.iter().copied().collect();
                e.served_bytes = served_bytes;
                e.load = load;
                e.health = MirrorHealth::Healthy;
                true
            }
            None => false,
        }
    }

    /// Reclassifies every entry against the current clock and evicts
    /// mirrors silent past the eviction threshold. Runs implicitly on
    /// every [`candidates`](Self::candidates) call.
    pub fn sweep(&self) {
        let now = self.clock.now_ms();
        let mut entries = self.entries.lock();
        entries.retain(|_, e| {
            if e.pinned {
                return true;
            }
            let silence = now.saturating_sub(e.last_seen_ms);
            e.health = if silence > ms(self.config.quarantine_after) {
                MirrorHealth::Quarantined
            } else if silence > 2 * ms(self.config.heartbeat_interval) {
                MirrorHealth::Overdue
            } else {
                MirrorHealth::Healthy
            };
            // Demoted entries are retained forever: evicting one would
            // let the offender re-announce with a clean strike ledger.
            e.demoted || silence <= ms(self.config.evict_after)
        });
    }

    /// Ranks the directory for a client in `client_zone` that must fetch
    /// the chunks in `wanted`: healthy before overdue, same-zone before
    /// cross-zone, fewer coverage misses of `wanted` before more (a
    /// mirror already holding the release's chunks serves them without a
    /// read-through storm on the primary), lightly loaded before busy;
    /// ties rotate per call so equal mirrors share traffic. Quarantined
    /// and demoted mirrors are excluded. At most `max_candidates` are
    /// returned.
    ///
    /// Mirrors that never reported coverage (pinned entries, legacy
    /// heartbeats) count as missing everything in `wanted`, which ranks
    /// them after a replica with known coverage but ahead of nothing —
    /// exactly the read-through behavior they would exhibit.
    pub fn candidates(&self, client_zone: Option<&str>, wanted: &[u64]) -> Vec<MirrorCandidate> {
        self.sweep();
        let entries = self.entries.lock();
        let mut live: Vec<&MirrorEntry> = entries
            .values()
            .filter(|e| e.health != MirrorHealth::Quarantined && !e.demoted)
            .collect();
        // Deterministic base order, then a per-call rotation so clients
        // with identical rank keys don't all pile onto one mirror.
        live.sort_by(|a, b| a.location.cmp(&b.location));
        let n = live.len();
        if n == 0 {
            return Vec::new();
        }
        let shift = (self.rotation.fetch_add(1, Ordering::Relaxed) as usize) % n;
        live.rotate_left(shift);
        // Cached keys: the coverage-miss count is an O(|wanted|) scan
        // per entry and must not be recomputed per comparison.
        live.sort_by_cached_key(|e| {
            let zone_miss = match (client_zone, e.zone.as_deref()) {
                (Some(c), Some(z)) => c != z,
                // Without zone information on either side, treat the
                // mirror as local rather than penalizing it.
                _ => false,
            };
            let misses = wanted.iter().filter(|d| !e.coverage.contains(d)).count();
            (e.health != MirrorHealth::Healthy, zone_miss, misses, e.load)
        });
        live.into_iter()
            .take(self.config.max_candidates)
            .map(|e| MirrorCandidate {
                location: e.location.clone(),
                zone: e.zone.clone(),
                healthy: e.health == MirrorHealth::Healthy,
            })
            .collect()
    }

    /// Number of registered (non-evicted) mirrors.
    pub fn len(&self) -> usize {
        self.sweep();
        self.entries.lock().len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.sweep();
        self.entries.lock().is_empty()
    }

    /// Snapshot of one entry.
    pub fn entry(&self, location: &str) -> Option<MirrorEntry> {
        self.sweep();
        self.entries.lock().get(location).cloned()
    }

    /// Snapshot of every entry, sorted by location.
    pub fn snapshot(&self) -> Vec<MirrorEntry> {
        self.sweep();
        self.entries.lock().values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directory() -> (MirrorDirectory, Clock) {
        let clock = Clock::simulated();
        let dir = MirrorDirectory::new(clock.clone(), DirectoryConfig::default());
        (dir, clock)
    }

    #[test]
    fn announce_dedupes_by_location() {
        let (dir, _c) = directory();
        assert!(dir.announce("m1:1071", Some("east".into()), false));
        assert!(!dir.announce("m1:1071", Some("west".into()), false));
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.entry("m1:1071").unwrap().zone.as_deref(), Some("west"));
    }

    #[test]
    fn heartbeat_refreshes_and_unknown_mirrors_are_told_to_reannounce() {
        let (dir, clock) = directory();
        dir.announce("m1:1071", None, false);
        clock.advance_ms(4_000);
        assert!(dir.heartbeat("m1:1071", 42, 1000, 3, &[0xa, 0xb]));
        let e = dir.entry("m1:1071").unwrap();
        assert_eq!(e.chunk_count, 42);
        assert_eq!(e.load, 3);
        assert_eq!(e.last_seen_ms, 4_000);
        assert!(e.coverage.contains(&0xa) && e.coverage.contains(&0xb));
        assert!(!dir.heartbeat("ghost:1071", 0, 0, 0, &[]));
    }

    #[test]
    fn silence_quarantines_then_evicts() {
        let (dir, clock) = directory();
        dir.announce("m1:1071", None, false);
        clock.advance_ms(11_000); // two missed beats
        assert_eq!(dir.entry("m1:1071").unwrap().health, MirrorHealth::Overdue);
        clock.advance_ms(5_000); // past quarantine_after
        assert_eq!(
            dir.entry("m1:1071").unwrap().health,
            MirrorHealth::Quarantined
        );
        assert!(dir.candidates(None, &[]).is_empty());
        // A heartbeat resurrects it.
        assert!(dir.heartbeat("m1:1071", 1, 1, 0, &[]));
        assert_eq!(dir.entry("m1:1071").unwrap().health, MirrorHealth::Healthy);
        // Long silence evicts.
        clock.advance_ms(200_000);
        assert!(dir.entry("m1:1071").is_none());
        assert_eq!(dir.len(), 0);
    }

    #[test]
    fn pinned_mirrors_survive_any_silence() {
        let (dir, clock) = directory();
        dir.announce("pinned:1071", None, true);
        clock.advance_ms(10_000_000);
        let c = dir.candidates(None, &[]);
        assert_eq!(c.len(), 1);
        assert!(c[0].healthy);
    }

    #[test]
    fn ranking_prefers_healthy_then_same_zone_then_light_load() {
        let (dir, clock) = directory();
        dir.announce("busy-east:1071", Some("east".into()), false);
        dir.announce("idle-east:1071", Some("east".into()), false);
        dir.announce("idle-west:1071", Some("west".into()), false);
        dir.announce("stale-east:1071", Some("east".into()), false);
        clock.advance_ms(12_000); // everyone overdue now...
        dir.heartbeat("busy-east:1071", 10, 10, 50, &[]);
        dir.heartbeat("idle-east:1071", 10, 10, 1, &[]);
        dir.heartbeat("idle-west:1071", 10, 10, 0, &[]);
        // ...except stale-east, which stays overdue (not yet quarantined).
        let c = dir.candidates(Some("east"), &[]);
        assert_eq!(c.len(), 3, "max_candidates caps the plan");
        assert_eq!(c[0].location, "idle-east:1071");
        assert_eq!(c[1].location, "busy-east:1071");
        assert_eq!(c[2].location, "idle-west:1071");
        assert!(c.iter().all(|m| m.healthy));

        // A west client ranks its own zone first.
        let c = dir.candidates(Some("west"), &[]);
        assert_eq!(c[0].location, "idle-west:1071");
    }

    #[test]
    fn coverage_of_the_wanted_chunks_outranks_load() {
        let (dir, _c) = directory();
        dir.announce("cold:1071", None, false);
        dir.announce("warm:1071", None, false);
        // The warm mirror holds the new release's chunks but is busier;
        // the cold one is idle but would read through for everything.
        dir.heartbeat("cold:1071", 0, 0, 0, &[]);
        dir.heartbeat("warm:1071", 3, 0, 40, &[0x1, 0x2, 0x3]);
        let c = dir.candidates(None, &[0x1, 0x2]);
        assert_eq!(c[0].location, "warm:1071");
        // With no wanted chunks (full-coverage request), load decides
        // again.
        let c = dir.candidates(None, &[]);
        assert_eq!(c[0].location, "cold:1071");
        // Partial coverage still beats none.
        dir.heartbeat("cold:1071", 1, 0, 0, &[0x1]);
        let c = dir.candidates(None, &[0x1, 0x2, 0x3]);
        assert_eq!(c[0].location, "warm:1071", "2 misses lose to 0 misses");
    }

    #[test]
    fn zone_locality_still_outranks_coverage() {
        let (dir, _c) = directory();
        dir.announce("near:1071", Some("east".into()), false);
        dir.announce("far-warm:1071", Some("west".into()), false);
        dir.heartbeat("near:1071", 0, 0, 0, &[]);
        dir.heartbeat("far-warm:1071", 2, 0, 0, &[0x1, 0x2]);
        let c = dir.candidates(Some("east"), &[0x1, 0x2]);
        assert_eq!(
            c[0].location, "near:1071",
            "read-through in-zone beats a warm cross-zone trip"
        );
    }

    #[test]
    fn equal_candidates_rotate_across_calls() {
        let (dir, _c) = directory();
        dir.announce("m1:1071", None, false);
        dir.announce("m2:1071", None, false);
        let first: Vec<String> = (0..2)
            .map(|_| dir.candidates(None, &[])[0].location.clone())
            .collect();
        assert_ne!(first[0], first[1], "rotation must spread equal mirrors");
    }

    #[test]
    fn corroborated_complaints_demote_and_drop_from_plans() {
        let (dir, _c) = directory();
        dir.announce("evil:1071", None, false);
        dir.announce("honest:1071", None, false);
        // One reporter, even striking twice, is not corroboration.
        assert_eq!(dir.complaint("evil:1071", "app1"), ComplaintOutcome::Recorded);
        assert_eq!(dir.complaint("evil:1071", "app1"), ComplaintOutcome::Recorded);
        assert!(!dir.entry("evil:1071").unwrap().demoted);
        assert_eq!(dir.candidates(None, &[]).len(), 2);
        // A second distinct reporter crosses both thresholds.
        assert_eq!(dir.complaint("evil:1071", "app2"), ComplaintOutcome::Demoted);
        let e = dir.entry("evil:1071").unwrap();
        assert!(e.demoted);
        assert_eq!(e.strikes, 3);
        let c = dir.candidates(None, &[]);
        assert_eq!(c.len(), 1, "demoted mirror leaves the plan");
        assert_eq!(c[0].location, "honest:1071");
        // Further strikes just accumulate.
        assert_eq!(dir.complaint("evil:1071", "app3"), ComplaintOutcome::Recorded);
        // Unseen locations cannot be pre-poisoned.
        assert_eq!(dir.complaint("ghost:1071", "app1"), ComplaintOutcome::Unknown);
    }

    #[test]
    fn strikes_and_demotion_are_sticky_across_reannounce() {
        // Regression: a byzantine mirror must not launder its strike
        // ledger (or escape demotion) by re-announcing — announce only
        // ever heals *silence* quarantine.
        let (dir, _c) = directory();
        dir.announce("evil:1071", Some("east".into()), false);
        dir.complaint("evil:1071", "app1");
        assert!(!dir.announce("evil:1071", Some("east".into()), false));
        assert_eq!(dir.entry("evil:1071").unwrap().strikes, 1, "strike survived");
        dir.complaint("evil:1071", "app2");
        assert!(dir.entry("evil:1071").unwrap().demoted);
        assert!(!dir.announce("evil:1071", Some("west".into()), false));
        let e = dir.entry("evil:1071").unwrap();
        assert!(e.demoted, "demotion survives re-announce");
        assert!(dir.candidates(Some("west"), &[]).is_empty());
        // Heartbeats don't launder it either.
        assert!(dir.heartbeat("evil:1071", 9, 9, 0, &[]));
        assert!(dir.entry("evil:1071").unwrap().demoted);
    }

    #[test]
    fn demoted_entries_survive_eviction_sweeps() {
        // Eviction would let the offender re-announce as a brand-new
        // entry with a clean ledger; demoted entries are retained.
        let (dir, clock) = directory();
        dir.announce("evil:1071", None, false);
        dir.complaint("evil:1071", "app1");
        dir.complaint("evil:1071", "app2");
        assert!(dir.entry("evil:1071").unwrap().demoted);
        clock.advance_ms(1_000_000); // far past evict_after
        dir.sweep();
        let e = dir.entry("evil:1071").expect("retained");
        assert!(e.demoted);
        assert_eq!(e.strikes, 2);
        // And re-announcing still lands on the demoted entry.
        assert!(!dir.announce("evil:1071", None, false));
        assert!(dir.entry("evil:1071").unwrap().demoted);
    }

    #[test]
    fn directory_and_mirror_default_timing_agree() {
        assert_eq!(
            DirectoryConfig::default().heartbeat_interval,
            MirrorTiming::default().heartbeat_every,
            "a default-launched mirror must never go overdue on a healthy network"
        );
    }
}
