//! # drivolution-server — driver distribution service
//!
//! The server side of the Drivolution reproduction: driver and permission
//! tables stored as real SQL tables (queried with the paper's Sample
//! code 1–2), the `DRIVOLUTION_REQUEST`/`OFFER`/`ERROR` protocol, staged
//! file transfer with plain/checksum/sealed security, license management
//! (§5.4.2), on-demand driver assembly (§5.4.1), push notification
//! channels, and replication hooks for cluster embedding (§5.3.2).
//!
//! Three deployment variants ([`variants`]):
//!
//! * [`attach_in_database`] — tables in the production DB, service on a
//!   second port of the same host;
//! * [`launch_external`] — tables in a legacy DB reached through a legacy
//!   RDBC driver;
//! * [`launch_standalone`] — a dedicated service with an embedded store,
//!   serving many databases.

#![warn(missing_docs)]

pub mod assemble;
pub mod directory;
pub mod license;
pub mod notify;
pub mod rollout;
pub mod server;
pub mod store;
pub mod variants;

pub use assemble::Assembler;
pub use directory::{
    ComplaintOutcome, DirectoryConfig, MirrorDirectory, MirrorEntry, MirrorHealth,
};
pub use license::LicenseManager;
pub use notify::NotifyHub;
pub use rollout::{
    partition, RolloutConfig, RolloutOrchestrator, RolloutPhase, RolloutPlan, RolloutStatus,
    WaveStatus,
};
pub use server::{AdminEvent, DrivolutionServer, MatchPath, ServerConfig, ServerStats};
pub use store::{DriverStore, EmbeddedExec, RemoteExec, SqlExec};
pub use variants::{attach_in_database, launch_external, launch_standalone};
