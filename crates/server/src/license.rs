//! Drivolution as a license server (paper §5.4.2).
//!
//! Licenses are modelled as capacity-limited drivers: the per-user DB2
//! licensing case. Checkout happens when a driver is offered; return
//! happens on explicit [`LicenseManager::release`] (bootloader gives the
//! lease back), on lease expiry (server-side pruning), or when the
//! client's dedicated channel breaks (failure detection).

use std::collections::BTreeMap;

use parking_lot::Mutex;

use drivolution_core::{DriverId, DrvError, DrvResult};

#[derive(Clone, Debug, PartialEq, Eq)]
struct Holder {
    user: String,
    client_host: String,
    expires_at_ms: u64,
}

/// Tracks per-driver license capacity and outstanding checkouts.
#[derive(Debug, Default)]
pub struct LicenseManager {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    limits: BTreeMap<DriverId, usize>,
    held: BTreeMap<DriverId, Vec<Holder>>,
}

impl LicenseManager {
    /// Creates a manager with no limits (all drivers unlimited).
    pub fn new() -> Self {
        LicenseManager::default()
    }

    /// Caps `driver` at `seats` concurrent holders.
    pub fn set_limit(&self, driver: DriverId, seats: usize) {
        self.inner.lock().limits.insert(driver, seats);
    }

    /// Remaining seats for `driver` (`None` = unlimited).
    pub fn available(&self, driver: DriverId, now_ms: u64) -> Option<usize> {
        let mut inner = self.inner.lock();
        Self::prune_locked(&mut inner, now_ms);
        let limit = *inner.limits.get(&driver)?;
        let used = inner.held.get(&driver).map(Vec::len).unwrap_or(0);
        Some(limit.saturating_sub(used))
    }

    /// Current holders of `driver` as `(user, client_host)` pairs.
    pub fn holders(&self, driver: DriverId) -> Vec<(String, String)> {
        self.inner
            .lock()
            .held
            .get(&driver)
            .map(|v| {
                v.iter()
                    .map(|h| (h.user.clone(), h.client_host.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Checks out one seat. A client renewing its own seat (same user and
    /// host) re-uses it rather than consuming a second one.
    ///
    /// # Errors
    ///
    /// [`DrvError::PermissionDenied`] when all seats are taken.
    pub fn acquire(
        &self,
        driver: DriverId,
        user: &str,
        client_host: &str,
        lease_ms: u64,
        now_ms: u64,
    ) -> DrvResult<()> {
        let mut inner = self.inner.lock();
        Self::prune_locked(&mut inner, now_ms);
        let Some(&limit) = inner.limits.get(&driver) else {
            return Ok(()); // unlimited driver
        };
        let holders = inner.held.entry(driver).or_default();
        if let Some(h) = holders
            .iter_mut()
            .find(|h| h.user == user && h.client_host == client_host)
        {
            h.expires_at_ms = now_ms.saturating_add(lease_ms);
            return Ok(());
        }
        if holders.len() >= limit {
            return Err(DrvError::PermissionDenied(format!(
                "no license available for {driver}: {limit} seats in use"
            )));
        }
        holders.push(Holder {
            user: user.to_string(),
            client_host: client_host.to_string(),
            expires_at_ms: now_ms.saturating_add(lease_ms),
        });
        Ok(())
    }

    /// Returns a seat explicitly (bootloader notifying unload: "The
    /// bootloader can notify the Drivolution server when the driver is
    /// unloaded to give back its lease").
    pub fn release(&self, driver: DriverId, user: &str, client_host: &str) -> bool {
        let mut inner = self.inner.lock();
        if let Some(holders) = inner.held.get_mut(&driver) {
            let before = holders.len();
            holders.retain(|h| !(h.user == user && h.client_host == client_host));
            return holders.len() != before;
        }
        false
    }

    /// Frees every seat held from `client_host` — the dedicated-channel
    /// failure detector: "If the Drivolution server and bootloader are
    /// using a dedicated connection, it can be used as a failure
    /// detector."
    pub fn release_host(&self, client_host: &str) -> usize {
        let mut inner = self.inner.lock();
        let mut freed = 0;
        for holders in inner.held.values_mut() {
            let before = holders.len();
            holders.retain(|h| h.client_host != client_host);
            freed += before - holders.len();
        }
        freed
    }

    /// Drops seats whose lease expired without renewal ("the Drivolution
    /// server can wait for the client lease to expire and … declare the
    /// driver freed").
    pub fn prune_expired(&self, now_ms: u64) -> usize {
        let mut inner = self.inner.lock();
        Self::prune_locked(&mut inner, now_ms)
    }

    fn prune_locked(inner: &mut Inner, now_ms: u64) -> usize {
        let mut freed = 0;
        for holders in inner.held.values_mut() {
            let before = holders.len();
            holders.retain(|h| h.expires_at_ms > now_ms);
            freed += before - holders.len();
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: DriverId = DriverId(1);

    #[test]
    fn unlimited_drivers_never_block() {
        let lm = LicenseManager::new();
        for i in 0..100 {
            lm.acquire(D, &format!("u{i}"), "h", 1000, 0).unwrap();
        }
        assert_eq!(lm.available(D, 0), None);
    }

    #[test]
    fn seats_are_enforced() {
        let lm = LicenseManager::new();
        lm.set_limit(D, 2);
        lm.acquire(D, "a", "h1", 1000, 0).unwrap();
        lm.acquire(D, "b", "h2", 1000, 0).unwrap();
        assert_eq!(lm.available(D, 0), Some(0));
        let e = lm.acquire(D, "c", "h3", 1000, 0).unwrap_err();
        assert!(matches!(e, DrvError::PermissionDenied(_)));
    }

    #[test]
    fn renewal_reuses_the_seat() {
        let lm = LicenseManager::new();
        lm.set_limit(D, 1);
        lm.acquire(D, "a", "h1", 1000, 0).unwrap();
        // Same client renews: fine, and the expiry moves out.
        lm.acquire(D, "a", "h1", 1000, 500).unwrap();
        assert_eq!(lm.available(D, 1400), Some(0));
        // Different client still blocked.
        assert!(lm.acquire(D, "b", "h2", 1000, 500).is_err());
    }

    #[test]
    fn explicit_release_frees_the_seat() {
        let lm = LicenseManager::new();
        lm.set_limit(D, 1);
        lm.acquire(D, "a", "h1", 1000, 0).unwrap();
        assert!(lm.release(D, "a", "h1"));
        assert!(!lm.release(D, "a", "h1"));
        lm.acquire(D, "b", "h2", 1000, 0).unwrap();
    }

    #[test]
    fn crashed_host_seats_are_freed_by_failure_detector() {
        let lm = LicenseManager::new();
        lm.set_limit(D, 2);
        lm.set_limit(DriverId(2), 1);
        lm.acquire(D, "a", "crashed", 1000, 0).unwrap();
        lm.acquire(DriverId(2), "a", "crashed", 1000, 0).unwrap();
        lm.acquire(D, "b", "alive", 1000, 0).unwrap();
        assert_eq!(lm.release_host("crashed"), 2);
        assert_eq!(lm.available(D, 0), Some(1));
        assert_eq!(lm.available(DriverId(2), 0), Some(1));
        assert_eq!(lm.holders(D), vec![("b".to_string(), "alive".to_string())]);
    }

    #[test]
    fn expired_seats_are_pruned() {
        let lm = LicenseManager::new();
        lm.set_limit(D, 1);
        lm.acquire(D, "a", "h1", 1000, 0).unwrap();
        // Not yet expired at 999.
        assert!(lm.acquire(D, "b", "h2", 1000, 999).is_err());
        // Expired at 1000 (lease granted at 0 for 1000ms).
        lm.acquire(D, "b", "h2", 1000, 1001).unwrap();
        assert_eq!(lm.prune_expired(1001), 0);
    }
}
