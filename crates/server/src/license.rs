//! Drivolution as a license server (paper §5.4.2).
//!
//! Licenses are modelled as capacity-limited drivers: the per-user DB2
//! licensing case. Checkout happens when a driver is offered; return
//! happens on explicit [`LicenseManager::release`] (bootloader gives the
//! lease back), on lease expiry (server-side pruning), or when the
//! client's dedicated channel breaks (failure detection).
//!
//! # Sharding
//!
//! Seat state is split across N shards keyed by a stable FNV-1a hash of
//! the client host, so a fleet-scale renewal storm takes N independent
//! locks instead of one global one and every prune scan is shard-local.
//! The hash is the workspace's own [`fnv1a64`], not a `RandomState`, so
//! shard placement — and therefore replay — is seed-reproducible.
//!
//! Each limited driver's seat count is sliced into per-shard
//! **sub-quotas** (`Σ quota == limit`, `used ≤ quota` per shard): a
//! renewal or checkout that fits its shard's slice grants under that one
//! shard lock. When a shard exhausts its slice the slow path locks every
//! shard in index order, prunes the driver's expired seats globally,
//! grants or denies against the *exact* fleet-wide count, and rebalances
//! the quotas so the hot shard inherits the spare capacity. Denials are
//! therefore only ever issued from the exact path — sharding is
//! observationally equivalent to a single global table (pinned by
//! `tests/license_shard_props.rs`).

use std::collections::BTreeMap;

use parking_lot::Mutex;

use drivolution_core::{fnv1a64, DriverId, DrvError, DrvResult};

/// Default shard count for [`LicenseManager::new`]. Eight keeps the
/// per-shard prune scans an order of magnitude smaller on a 10k-client
/// fleet while staying cheap for single-client tests.
pub const DEFAULT_LICENSE_SHARDS: usize = 8;

/// Seat table of one driver within one shard.
#[derive(Debug)]
struct Seats {
    /// `(user, client_host)` → lease expiry instant.
    holders: BTreeMap<(String, String), u64>,
    /// Earliest expiry among `holders` (may be stale-low after renewals
    /// and releases — that only costs a harmless re-scan). Prune scans
    /// are skipped entirely while `now < next_expiry`, which keeps the
    /// renewal fast path O(log seats) instead of O(seats).
    next_expiry: u64,
    /// This shard's slice of the driver's seat limit. Invariant while
    /// balanced: the slices sum to the limit and every shard's holder
    /// count stays within its slice, so an in-quota grant cannot
    /// oversubscribe the fleet-wide limit. A limit change that leaves
    /// the fleet oversubscribed zeroes every slice, forcing all grants
    /// through the exact slow path until a rebalance restores balance.
    quota: usize,
}

impl Default for Seats {
    fn default() -> Self {
        Seats {
            holders: BTreeMap::new(),
            next_expiry: u64::MAX,
            quota: 0,
        }
    }
}

impl Seats {
    /// Drops expired holders if any can have expired, maintaining
    /// `next_expiry`. Exact: after this returns, every remaining holder
    /// is unexpired at `now_ms`.
    fn prune(&mut self, now_ms: u64) -> usize {
        if self.holders.is_empty() {
            self.next_expiry = u64::MAX;
            return 0;
        }
        if now_ms < self.next_expiry {
            return 0;
        }
        let before = self.holders.len();
        self.holders.retain(|_, exp| *exp > now_ms);
        self.next_expiry = self.holders.values().copied().min().unwrap_or(u64::MAX);
        before - self.holders.len()
    }

    fn insert(&mut self, user: &str, client_host: &str, expires_at_ms: u64) {
        self.holders
            .insert((user.to_string(), client_host.to_string()), expires_at_ms);
        self.next_expiry = self.next_expiry.min(expires_at_ms);
    }
}

/// One lock's worth of seat state.
#[derive(Debug, Default)]
struct Shard {
    held: BTreeMap<DriverId, Seats>,
}

/// Tracks per-driver license capacity and outstanding checkouts,
/// sharded by client host (see the module docs).
#[derive(Debug)]
pub struct LicenseManager {
    limits: Mutex<BTreeMap<DriverId, usize>>,
    shards: Vec<Mutex<Shard>>,
}

impl Default for LicenseManager {
    fn default() -> Self {
        LicenseManager::with_shards(DEFAULT_LICENSE_SHARDS)
    }
}

impl LicenseManager {
    /// Creates a manager with no limits (all drivers unlimited) and the
    /// default shard count.
    pub fn new() -> Self {
        LicenseManager::default()
    }

    /// Creates a manager with `shards` seat shards (clamped to ≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1);
        LicenseManager {
            limits: Mutex::new(BTreeMap::new()),
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    /// Number of seat shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a client host's seats live in: stable FNV-1a of the
    /// host, so placement is identical across runs and processes.
    fn shard_for(&self, client_host: &str) -> Option<(usize, &Mutex<Shard>)> {
        let idx = (fnv1a64(client_host.as_bytes()) % self.shards.len() as u64) as usize;
        self.shards.get(idx).map(|m| (idx, m))
    }

    /// Caps `driver` at `seats` concurrent holders and re-slices the
    /// per-shard sub-quotas around the holders already seated.
    pub fn set_limit(&self, driver: DriverId, seats: usize) {
        self.limits.lock().insert(driver, seats);
        let mut guards: Vec<_> = self.shards.iter().map(|m| m.lock()).collect();
        let total: usize = guards
            .iter()
            .map(|g| g.held.get(&driver).map(|s| s.holders.len()).unwrap_or(0))
            .sum();
        if total >= seats {
            // Oversubscribed (limit lowered under live holders): zero
            // every slice so grants go through the exact path until
            // capacity frees up.
            for g in guards.iter_mut() {
                g.held.entry(driver).or_default().quota = 0;
            }
            return;
        }
        // Balanced: each shard keeps its current holders plus an even
        // slice of the spare capacity.
        let spare = seats - total;
        let n = guards.len();
        for (i, g) in guards.iter_mut().enumerate() {
            let seat = g.held.entry(driver).or_default();
            seat.quota = seat.holders.len() + spare / n + usize::from(i < spare % n);
        }
    }

    /// Remaining seats for `driver` (`None` = unlimited). **Read-only**:
    /// counts holders unexpired at `now_ms` without pruning, so stats
    /// and introspection never mutate seat state.
    pub fn available(&self, driver: DriverId, now_ms: u64) -> Option<usize> {
        let limit = *self.limits.lock().get(&driver)?;
        let used: usize = self
            .shards
            .iter()
            .map(|m| {
                m.lock()
                    .held
                    .get(&driver)
                    .map(|s| s.holders.values().filter(|exp| **exp > now_ms).count())
                    .unwrap_or(0)
            })
            .sum();
        Some(limit.saturating_sub(used))
    }

    /// Current holders of `driver` as `(user, client_host)` pairs,
    /// sorted. Read-only; includes seats whose lease has expired but has
    /// not been pruned yet.
    pub fn holders(&self, driver: DriverId) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        for m in &self.shards {
            if let Some(seats) = m.lock().held.get(&driver) {
                out.extend(seats.holders.keys().cloned());
            }
        }
        out.sort();
        out
    }

    /// Checks out one seat. A client renewing its own seat (same user and
    /// host) re-uses it rather than consuming a second one. Grants that
    /// fit the host shard's sub-quota take only that shard's lock; a
    /// shard that exhausted its slice falls back to the exact
    /// every-shard path, which also rebalances the slices toward it.
    ///
    /// # Errors
    ///
    /// [`DrvError::PermissionDenied`] when all seats are taken.
    pub fn acquire(
        &self,
        driver: DriverId,
        user: &str,
        client_host: &str,
        lease_ms: u64,
        now_ms: u64,
    ) -> DrvResult<()> {
        let Some(&limit) = self.limits.lock().get(&driver) else {
            return Ok(()); // unlimited driver
        };
        let Some((idx, cell)) = self.shard_for(client_host) else {
            return Ok(()); // unreachable: with_shards guarantees ≥ 1 shard
        };
        let expires_at_ms = now_ms.saturating_add(lease_ms);
        {
            let mut shard = cell.lock();
            let seats = shard.held.entry(driver).or_default();
            seats.prune(now_ms);
            let key = (user.to_string(), client_host.to_string());
            if let Some(exp) = seats.holders.get_mut(&key) {
                // Renewal in place: the seat is already this client's.
                *exp = expires_at_ms;
                seats.next_expiry = seats.next_expiry.min(expires_at_ms);
                return Ok(());
            }
            if seats.holders.len() < seats.quota {
                seats.insert(user, client_host, expires_at_ms);
                return Ok(());
            }
        }
        self.acquire_slow(driver, limit, idx, user, client_host, expires_at_ms, now_ms)
    }

    /// The exact path: every shard locked in index order, the driver's
    /// expired seats pruned fleet-wide, the grant/denial decided against
    /// the true total, and the sub-quotas rebalanced so the requesting
    /// shard inherits all spare capacity (it is the hot one).
    #[allow(clippy::too_many_arguments)]
    fn acquire_slow(
        &self,
        driver: DriverId,
        limit: usize,
        idx: usize,
        user: &str,
        client_host: &str,
        expires_at_ms: u64,
        now_ms: u64,
    ) -> DrvResult<()> {
        let mut guards: Vec<_> = self.shards.iter().map(|m| m.lock()).collect();
        let mut total = 0;
        for g in guards.iter_mut() {
            let seats = g.held.entry(driver).or_default();
            seats.prune(now_ms);
            total += seats.holders.len();
        }
        if total >= limit {
            return Err(DrvError::PermissionDenied(format!(
                "no license available for {driver}: {limit} seats in use"
            )));
        }
        let mut spare = limit;
        for (i, g) in guards.iter_mut().enumerate() {
            if i != idx {
                let seats = g.held.entry(driver).or_default();
                seats.quota = seats.holders.len();
                spare = spare.saturating_sub(seats.holders.len());
            }
        }
        for (i, g) in guards.iter_mut().enumerate() {
            if i == idx {
                let seats = g.held.entry(driver).or_default();
                seats.insert(user, client_host, expires_at_ms);
                seats.quota = spare;
            }
        }
        Ok(())
    }

    /// Returns a seat explicitly (bootloader notifying unload: "The
    /// bootloader can notify the Drivolution server when the driver is
    /// unloaded to give back its lease").
    pub fn release(&self, driver: DriverId, user: &str, client_host: &str) -> bool {
        let Some((_, cell)) = self.shard_for(client_host) else {
            return false;
        };
        let mut shard = cell.lock();
        if let Some(seats) = shard.held.get_mut(&driver) {
            return seats
                .holders
                .remove(&(user.to_string(), client_host.to_string()))
                .is_some();
        }
        false
    }

    /// Frees every seat held from `client_host` — the dedicated-channel
    /// failure detector: "If the Drivolution server and bootloader are
    /// using a dedicated connection, it can be used as a failure
    /// detector." Touches only the host's own shard.
    pub fn release_host(&self, client_host: &str) -> usize {
        let Some((_, cell)) = self.shard_for(client_host) else {
            return 0;
        };
        let mut shard = cell.lock();
        let mut freed = 0;
        for seats in shard.held.values_mut() {
            let before = seats.holders.len();
            seats.holders.retain(|(_, host), _| host != client_host);
            freed += before - seats.holders.len();
        }
        freed
    }

    /// Drops seats whose lease expired without renewal ("the Drivolution
    /// server can wait for the client lease to expire and … declare the
    /// driver freed"). Runs as a scheduled maintenance task, never on the
    /// request path.
    pub fn prune_expired(&self, now_ms: u64) -> usize {
        let mut freed = 0;
        for cell in &self.shards {
            let mut shard = cell.lock();
            for seats in shard.held.values_mut() {
                freed += seats.prune(now_ms);
            }
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: DriverId = DriverId(1);

    #[test]
    fn unlimited_drivers_never_block() {
        let lm = LicenseManager::new();
        for i in 0..100 {
            lm.acquire(D, &format!("u{i}"), "h", 1000, 0).unwrap();
        }
        assert_eq!(lm.available(D, 0), None);
    }

    #[test]
    fn seats_are_enforced() {
        let lm = LicenseManager::new();
        lm.set_limit(D, 2);
        lm.acquire(D, "a", "h1", 1000, 0).unwrap();
        lm.acquire(D, "b", "h2", 1000, 0).unwrap();
        assert_eq!(lm.available(D, 0), Some(0));
        let e = lm.acquire(D, "c", "h3", 1000, 0).unwrap_err();
        assert!(matches!(e, DrvError::PermissionDenied(_)));
    }

    #[test]
    fn renewal_reuses_the_seat() {
        let lm = LicenseManager::new();
        lm.set_limit(D, 1);
        lm.acquire(D, "a", "h1", 1000, 0).unwrap();
        // Same client renews: fine, and the expiry moves out.
        lm.acquire(D, "a", "h1", 1000, 500).unwrap();
        assert_eq!(lm.available(D, 1400), Some(0));
        // Different client still blocked.
        assert!(lm.acquire(D, "b", "h2", 1000, 500).is_err());
    }

    #[test]
    fn explicit_release_frees_the_seat() {
        let lm = LicenseManager::new();
        lm.set_limit(D, 1);
        lm.acquire(D, "a", "h1", 1000, 0).unwrap();
        assert!(lm.release(D, "a", "h1"));
        assert!(!lm.release(D, "a", "h1"));
        lm.acquire(D, "b", "h2", 1000, 0).unwrap();
    }

    #[test]
    fn crashed_host_seats_are_freed_by_failure_detector() {
        let lm = LicenseManager::new();
        lm.set_limit(D, 2);
        lm.set_limit(DriverId(2), 1);
        lm.acquire(D, "a", "crashed", 1000, 0).unwrap();
        lm.acquire(DriverId(2), "a", "crashed", 1000, 0).unwrap();
        lm.acquire(D, "b", "alive", 1000, 0).unwrap();
        assert_eq!(lm.release_host("crashed"), 2);
        assert_eq!(lm.available(D, 0), Some(1));
        assert_eq!(lm.available(DriverId(2), 0), Some(1));
        assert_eq!(lm.holders(D), vec![("b".to_string(), "alive".to_string())]);
    }

    #[test]
    fn expired_seats_are_pruned() {
        let lm = LicenseManager::new();
        lm.set_limit(D, 1);
        lm.acquire(D, "a", "h1", 1000, 0).unwrap();
        // Not yet expired at 999.
        assert!(lm.acquire(D, "b", "h2", 1000, 999).is_err());
        // Expired at 1000 (lease granted at 0 for 1000ms).
        lm.acquire(D, "b", "h2", 1000, 1001).unwrap();
        assert_eq!(lm.prune_expired(1001), 0);
    }

    #[test]
    fn available_is_read_only() {
        // The read path must never prune as a side effect: an expired
        // seat is excluded from the count but still visible to
        // `holders()` until an explicit prune.
        let lm = LicenseManager::with_shards(4);
        lm.set_limit(D, 3);
        lm.acquire(D, "a", "h1", 100, 0).unwrap();
        lm.acquire(D, "b", "h2", 10_000, 0).unwrap();
        // At t=5000 "a" is expired: the count ignores it…
        assert_eq!(lm.available(D, 5000), Some(2));
        // …but the seat table was not mutated.
        assert_eq!(
            lm.holders(D),
            vec![
                ("a".to_string(), "h1".to_string()),
                ("b".to_string(), "h2".to_string())
            ]
        );
        // Only the explicit prune drops it.
        assert_eq!(lm.prune_expired(5000), 1);
        assert_eq!(lm.holders(D), vec![("b".to_string(), "h2".to_string())]);
    }

    #[test]
    fn quota_rebalance_hands_spare_seats_to_the_exhausted_shard() {
        // 16 shards, 4 seats: most shards start with a zero slice, so
        // grants exercise the slow path and must still all succeed
        // until the true limit is reached.
        let lm = LicenseManager::with_shards(16);
        lm.set_limit(D, 4);
        for i in 0..4 {
            lm.acquire(D, "u", &format!("host-{i}"), 1000, 0).unwrap();
        }
        assert_eq!(lm.available(D, 0), Some(0));
        assert!(lm.acquire(D, "u", "host-extra", 1000, 0).is_err());
        // Releasing one seat makes exactly one new grant possible.
        assert!(lm.release(D, "u", "host-0"));
        lm.acquire(D, "u", "host-extra", 1000, 0).unwrap();
        assert!(lm.acquire(D, "u", "host-more", 1000, 0).is_err());
    }

    #[test]
    fn lowering_a_limit_under_live_holders_blocks_new_grants() {
        let lm = LicenseManager::with_shards(4);
        lm.set_limit(D, 4);
        for i in 0..4 {
            lm.acquire(D, "u", &format!("h{i}"), 1000, 0).unwrap();
        }
        lm.set_limit(D, 2);
        // Oversubscribed: no new grant, even though some shard may have
        // had spare quota before the change.
        assert!(lm.acquire(D, "u", "h-new", 1000, 0).is_err());
        // Draining below the new limit re-opens capacity.
        assert!(lm.release(D, "u", "h0"));
        assert!(lm.release(D, "u", "h1"));
        assert!(lm.release(D, "u", "h2"));
        lm.acquire(D, "u", "h-new", 1000, 0).unwrap();
    }
}
