//! Network addresses in the simulated network.
//!
//! An [`Addr`] is a `host:port` pair. Hosts are free-form names ("web-03",
//! "controller1"); the simulator does not model IP routing. Partitions and
//! host failures are expressed at host granularity, service bindings at
//! address granularity.

use std::fmt;
use std::str::FromStr;

use crate::error::NetError;

/// A `host:port` endpoint address in the simulated network.
///
/// # Examples
///
/// ```
/// use netsim::Addr;
///
/// let addr: Addr = "db1:5432".parse()?;
/// assert_eq!(addr.host(), "db1");
/// assert_eq!(addr.port(), 5432);
/// assert_eq!(addr.to_string(), "db1:5432");
/// # Ok::<(), netsim::NetError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr {
    host: String,
    port: u16,
}

impl Addr {
    /// Creates an address from a host name and port.
    pub fn new(host: impl Into<String>, port: u16) -> Self {
        Addr {
            host: host.into(),
            port,
        }
    }

    /// The host component.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The port component.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Returns a copy of this address with a different port, useful for
    /// deriving auxiliary service addresses (e.g. a Drivolution port next to
    /// a database port on the same host).
    pub fn with_port(&self, port: u16) -> Addr {
        Addr {
            host: self.host.clone(),
            port,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({}:{})", self.host, self.port)
    }
}

impl FromStr for Addr {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (host, port) = s
            .rsplit_once(':')
            .ok_or_else(|| NetError::BadAddress(s.to_string()))?;
        if host.is_empty() {
            return Err(NetError::BadAddress(s.to_string()));
        }
        let port: u16 = port
            .parse()
            .map_err(|_| NetError::BadAddress(s.to_string()))?;
        Ok(Addr::new(host, port))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let a: Addr = "controller1:25322".parse().unwrap();
        assert_eq!(a, Addr::new("controller1", 25322));
        assert_eq!(a.to_string().parse::<Addr>().unwrap(), a);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("nocolon".parse::<Addr>().is_err());
        assert!(":123".parse::<Addr>().is_err());
        assert!("host:notaport".parse::<Addr>().is_err());
        assert!("host:99999".parse::<Addr>().is_err());
    }

    #[test]
    fn with_port_keeps_host() {
        let a = Addr::new("db1", 5432);
        let b = a.with_port(7070);
        assert_eq!(b.host(), "db1");
        assert_eq!(b.port(), 7070);
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = vec![Addr::new("b", 1), Addr::new("a", 2), Addr::new("a", 1)];
        v.sort();
        assert_eq!(
            v,
            vec![Addr::new("a", 1), Addr::new("a", 2), Addr::new("b", 1)]
        );
    }
}
