//! The simulated network: service registry, request/response delivery,
//! broadcast, dedicated pipes, and fault application.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::NetError;
use crate::fault::FaultPlan;
use crate::pipe::Pipe;
use crate::sched::Scheduler;
use crate::stats::{FailureKind, NetStats};
use crate::topology::Topology;
use crate::{Addr, Clock};

/// The typed-ledger classification of one path or service error.
fn failure_kind(e: &NetError) -> FailureKind {
    match e {
        NetError::Timeout(_) => FailureKind::Dropped,
        NetError::Partitioned(_) => FailureKind::Partitioned,
        NetError::Unreachable(_) => FailureKind::Unreachable,
        _ => FailureKind::Refused,
    }
}

/// A network service bound at an [`Addr`].
///
/// Services handle synchronous request/response exchanges and may
/// optionally accept dedicated [`Pipe`]s (long-lived duplex channels used
/// for push notifications and failure detection).
pub trait Service: Send + Sync {
    /// Handles one request and produces one response.
    ///
    /// # Errors
    ///
    /// Implementations report application-level refusals via
    /// [`NetError::Refused`] or [`NetError::Protocol`].
    fn call(&self, from: &Addr, request: Bytes) -> Result<Bytes, NetError>;

    /// Accepts a dedicated pipe from `from`. The default implementation
    /// refuses pipes.
    ///
    /// # Errors
    ///
    /// [`NetError::PipesUnsupported`] unless overridden.
    fn accept_pipe(&self, from: &Addr, pipe: Pipe) -> Result<(), NetError> {
        drop(pipe);
        Err(NetError::PipesUnsupported(from.to_string()))
    }
}

/// A [`Service`] built from a plain function or closure.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use netsim::{Addr, FnService, Network};
///
/// let net = Network::new();
/// net.bind(
///     Addr::new("echo", 7),
///     FnService::new(|_from, req| Ok(req)),
/// )?;
/// let reply = net.request(
///     &Addr::new("client", 1),
///     &Addr::new("echo", 7),
///     Bytes::from_static(b"hello"),
/// )?;
/// assert_eq!(reply, Bytes::from_static(b"hello"));
/// # Ok::<(), netsim::NetError>(())
/// ```
pub struct FnService<F> {
    f: F,
}

impl<F> fmt::Debug for FnService<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnService").finish_non_exhaustive()
    }
}

impl<F> FnService<F>
where
    F: Fn(&Addr, Bytes) -> Result<Bytes, NetError> + Send + Sync,
{
    /// Wraps a closure as a [`Service`].
    pub fn new(f: F) -> Self {
        FnService { f }
    }
}

impl<F> Service for FnService<F>
where
    F: Fn(&Addr, Bytes) -> Result<Bytes, NetError> + Send + Sync,
{
    fn call(&self, from: &Addr, request: Bytes) -> Result<Bytes, NetError> {
        (self.f)(from, request)
    }
}

struct NetworkInner {
    services: RwLock<BTreeMap<Addr, Arc<dyn Service>>>,
    faults: Mutex<FaultPlan>,
    topology: RwLock<Topology>,
    stats: NetStats,
    clock: Clock,
    sched: Scheduler,
    rng: Mutex<StdRng>,
    /// Opt-in: pump due scheduler tasks after each outermost request.
    auto_pump: AtomicBool,
    /// Reentrancy guard: set while a pump (or an explicit `run_until`)
    /// is dispatching, so requests issued mid-dispatch defer to the
    /// outermost pump instead of recursing into the scheduler.
    pump_active: AtomicBool,
}

/// Handle to the in-process simulated network.
///
/// Cloning is cheap; all clones share the same service registry, fault
/// plan, statistics, and clock.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.inner.services.read().len();
        f.debug_struct("Network").field("services", &n).finish()
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl Network {
    /// Creates an empty network with a fresh simulated [`Clock`].
    pub fn new() -> Self {
        Network::with_clock(Clock::simulated())
    }

    /// Creates an empty network sharing the given clock.
    pub fn with_clock(clock: Clock) -> Self {
        Network {
            inner: Arc::new(NetworkInner {
                services: RwLock::new(BTreeMap::new()),
                faults: Mutex::new(FaultPlan::new()),
                topology: RwLock::new(Topology::new()),
                stats: NetStats::new(),
                sched: Scheduler::new(clock.clone()),
                clock,
                rng: Mutex::new(StdRng::seed_from_u64(0x5eed)),
                auto_pump: AtomicBool::new(false),
                pump_active: AtomicBool::new(false),
            }),
        }
    }

    /// The clock shared by every component on this network.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// The lifecycle task scheduler on this network's clock. Components
    /// (mirrors, bootloaders) register their periodic work here; a
    /// single [`Network::run_until`] pump drives it.
    pub fn scheduler(&self) -> &Scheduler {
        &self.inner.sched
    }

    /// Pumps the scheduler up to virtual time `target_ms`: registered
    /// tasks fire in deterministic `(due, registration)` order,
    /// interleaved with the link latency their message exchanges charge
    /// to the shared clock, and the clock ends at `target_ms` (or later
    /// if the final task overshot it). Returns the number of task
    /// executions. See [`Scheduler::run_until`].
    pub fn run_until(&self, target_ms: u64) -> u64 {
        let outermost = self.begin_pump();
        let fired = self.inner.sched.run_until(target_ms);
        if outermost {
            self.end_pump();
        }
        fired
    }

    /// Opts this network in or out of auto-pumping: when enabled, every
    /// *outermost* [`Network::request`] finishes by firing the scheduler
    /// tasks that became due while the exchange charged latency to the
    /// clock, so lifecycle work keeps up with traffic without an explicit
    /// [`Network::run_until`] driver. Requests issued from inside a task
    /// dispatch (or from a service handling a request) defer to the
    /// outermost pump rather than recursing into the scheduler, so task
    /// ordering stays deterministic.
    pub fn set_auto_pump(&self, enabled: bool) {
        self.inner.auto_pump.store(enabled, Ordering::SeqCst);
    }

    /// Whether auto-pump is enabled.
    pub fn auto_pump(&self) -> bool {
        self.inner.auto_pump.load(Ordering::SeqCst)
    }

    /// Claims the pump guard. Returns true when this caller is the
    /// outermost pump and therefore responsible for releasing it.
    fn begin_pump(&self) -> bool {
        self.inner
            .pump_active
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn end_pump(&self) {
        self.inner.pump_active.store(false, Ordering::SeqCst);
    }

    /// Traffic statistics for this network.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// Runs `f` against the mutable fault plan.
    pub fn with_faults<R>(&self, f: impl FnOnce(&mut FaultPlan) -> R) -> R {
        f(&mut self.inner.faults.lock())
    }

    /// Runs `f` against the mutable zone/latency topology.
    pub fn with_topology<R>(&self, f: impl FnOnce(&mut Topology) -> R) -> R {
        f(&mut self.inner.topology.write())
    }

    /// The zone `host` is placed in, if any.
    pub fn zone_of(&self, host: &str) -> Option<String> {
        self.inner.topology.read().zone_of(host).map(str::to_string)
    }

    /// One-way link latency between two addresses under the current
    /// topology (zero when either host is unplaced). Does not include
    /// any active latency storm; delivery applies the fault plan's
    /// multiplier on top of this base figure.
    pub fn latency_between(&self, from: &Addr, to: &Addr) -> u64 {
        self.inner
            .topology
            .read()
            .latency_ms(from.host(), to.host())
    }

    /// One-way delivery latency between two addresses: the topology
    /// base times the fault plan's latency-storm multiplier.
    fn effective_latency(&self, from: &Addr, to: &Addr) -> u64 {
        let base = self.latency_between(from, to);
        if base == 0 {
            return 0;
        }
        base * self.inner.faults.lock().latency_factor()
    }

    /// Reseeds the RNG used for probabilistic message loss, for
    /// reproducible lossy-network tests.
    pub fn reseed(&self, seed: u64) {
        *self.inner.rng.lock() = StdRng::seed_from_u64(seed);
    }

    /// Binds a service at `addr`.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] when another service already holds `addr`.
    pub fn bind(&self, addr: Addr, service: impl Service + 'static) -> Result<(), NetError> {
        self.bind_arc(addr, Arc::new(service))
    }

    /// Binds an already-shared service at `addr`.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] when another service already holds `addr`.
    pub fn bind_arc(&self, addr: Addr, service: Arc<dyn Service>) -> Result<(), NetError> {
        let mut services = self.inner.services.write();
        if services.contains_key(&addr) {
            return Err(NetError::AddrInUse(addr.to_string()));
        }
        services.insert(addr, service);
        Ok(())
    }

    /// Removes the binding at `addr`, returning whether one existed.
    pub fn unbind(&self, addr: &Addr) -> bool {
        self.inner.services.write().remove(addr).is_some()
    }

    /// Lists every bound address, sorted.
    pub fn bound_addrs(&self) -> Vec<Addr> {
        self.inner.services.read().keys().cloned().collect()
    }

    fn check_path(&self, from: &Addr, to: &Addr) -> Result<(), NetError> {
        let faults = self.inner.faults.lock();
        if faults.is_down(to.host()) {
            return Err(NetError::Unreachable(format!("{to} (host down)")));
        }
        if faults.is_down(from.host()) {
            return Err(NetError::Unreachable(format!("{from} (host down)")));
        }
        if faults.is_partitioned(from.host(), to.host()) {
            return Err(NetError::Partitioned(format!(
                "{} <-> {}",
                from.host(),
                to.host()
            )));
        }
        // Zone-level partitions: blocked only when both endpoints are
        // placed and their zones are separated.
        {
            let topo = self.inner.topology.read();
            if let (Some(za), Some(zb)) = (topo.zone_of(from.host()), topo.zone_of(to.host())) {
                if faults.zones_partitioned(za, zb) {
                    return Err(NetError::Partitioned(format!("zone {za} <-> zone {zb}")));
                }
            }
        }
        let p = faults.drop_prob();
        if p > 0.0 && self.inner.rng.lock().gen_bool(p) {
            return Err(NetError::Timeout(format!("message to {to} lost")));
        }
        // Directional per-link loss: drawn after the global probability
        // so a flapping link composes with background loss.
        let p = faults.link_loss(from.host(), to.host());
        if p > 0.0 && self.inner.rng.lock().gen_bool(p) {
            return Err(NetError::Timeout(format!(
                "message on link {} -> {} lost",
                from.host(),
                to.host()
            )));
        }
        Ok(())
    }

    /// Applies byzantine corruption to a response served by `to`: with
    /// the fault plan's per-host probability, one payload byte is
    /// flipped. Digest- and checksum-verifying clients detect the
    /// damage; the ledger records the corrupted serve against the
    /// byzantine address either way.
    fn maybe_corrupt(&self, to: &Addr, resp: Bytes) -> Bytes {
        let p = self.inner.faults.lock().corrupt_prob(to.host());
        if p == 0.0 || resp.is_empty() || !self.inner.rng.lock().gen_bool(p) {
            return resp;
        }
        self.inner.stats.record_failure(to, FailureKind::Corrupted);
        let mut bytes = resp.to_vec();
        if let Some(last) = bytes.last_mut() {
            *last ^= 0x5a;
        }
        Bytes::from(bytes)
    }

    /// Sends `request` from `from` to the service bound at `to` and returns
    /// its response.
    ///
    /// # Errors
    ///
    /// * [`NetError::Unreachable`] — nothing bound at `to`, or a host is down.
    /// * [`NetError::Partitioned`] — the hosts are separated.
    /// * [`NetError::Timeout`] — the message was lost (fault injection).
    /// * Any error returned by the service itself.
    pub fn request(&self, from: &Addr, to: &Addr, request: Bytes) -> Result<Bytes, NetError> {
        if !self.inner.auto_pump.load(Ordering::SeqCst) {
            return self.request_inner(from, to, request);
        }
        let outermost = self.begin_pump();
        let result = self.request_inner(from, to, request);
        if outermost {
            // Fire the tasks this exchange's latency made due. The guard
            // stays held across the pump: requests those tasks issue are
            // mid-dispatch and must not pump recursively.
            self.inner.sched.run_due();
            self.end_pump();
        }
        result
    }

    fn request_inner(&self, from: &Addr, to: &Addr, request: Bytes) -> Result<Bytes, NetError> {
        if let Err(e) = self.check_path(from, to) {
            self.inner.stats.record_failure(to, failure_kind(&e));
            return Err(e);
        }
        let service = {
            let services = self.inner.services.read();
            services.get(to).cloned()
        };
        let Some(service) = service else {
            self.inner
                .stats
                .record_failure(to, FailureKind::Unreachable);
            return Err(NetError::Unreachable(to.to_string()));
        };
        // Charge the one-way link latency on each leg against the shared
        // clock (multiplied during a latency storm), so locality is
        // observable wherever time is.
        let latency = self.effective_latency(from, to);
        if latency > 0 {
            self.inner.clock.advance_ms(latency);
        }
        self.inner.stats.record_request(to, request.len());
        let result = service.call(from, request);
        if latency > 0 {
            self.inner.clock.advance_ms(latency);
        }
        match result {
            Ok(resp) => {
                self.inner.stats.record_response(to, resp.len());
                Ok(self.maybe_corrupt(to, resp))
            }
            Err(e) => {
                self.inner.stats.record_failure(to, failure_kind(&e));
                Err(e)
            }
        }
    }

    /// Broadcasts `request` to every service bound on `port`, as the
    /// DHCP-like `DRIVOLUTION_DISCOVER` does (§3.1). Unreachable or
    /// partitioned targets are silently skipped; answering services are
    /// returned with their responses, sorted by address.
    pub fn broadcast(&self, from: &Addr, port: u16, request: Bytes) -> Vec<(Addr, Bytes)> {
        let targets: Vec<Addr> = {
            let services = self.inner.services.read();
            services
                .keys()
                .filter(|a| a.port() == port)
                .cloned()
                .collect()
        };
        let mut replies = Vec::new();
        for to in targets {
            if to.host() == from.host() && to.port() == from.port() {
                continue;
            }
            if let Ok(resp) = self.request(from, &to, request.clone()) {
                replies.push((to, resp));
            }
        }
        replies.sort_by(|a, b| a.0.cmp(&b.0));
        replies
    }

    /// Opens a dedicated duplex [`Pipe`] to the service at `to`.
    ///
    /// # Errors
    ///
    /// Path errors as for [`Network::request`], plus
    /// [`NetError::PipesUnsupported`] when the service refuses pipes.
    pub fn connect_pipe(&self, from: &Addr, to: &Addr) -> Result<Pipe, NetError> {
        self.check_path(from, to)?;
        let service = {
            let services = self.inner.services.read();
            services.get(to).cloned()
        };
        let Some(service) = service else {
            return Err(NetError::Unreachable(to.to_string()));
        };
        let latency = self.effective_latency(from, to);
        if latency > 0 {
            self.inner.clock.advance_ms(latency);
        }
        let (client_end, server_end) = Pipe::pair(from.clone(), to.clone());
        service.accept_pipe(from, server_end)?;
        Ok(client_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo() -> impl Service {
        FnService::new(|_from, req| Ok(req))
    }

    fn client() -> Addr {
        Addr::new("client", 9)
    }

    #[test]
    fn request_reaches_bound_service() {
        let net = Network::new();
        net.bind(Addr::new("srv", 1), echo()).unwrap();
        let r = net
            .request(&client(), &Addr::new("srv", 1), Bytes::from_static(b"x"))
            .unwrap();
        assert_eq!(r, Bytes::from_static(b"x"));
        assert_eq!(net.stats().for_addr(&Addr::new("srv", 1)).requests, 1);
    }

    #[test]
    fn unbound_addr_is_unreachable() {
        let net = Network::new();
        let e = net
            .request(&client(), &Addr::new("nope", 1), Bytes::new())
            .unwrap_err();
        assert!(matches!(e, NetError::Unreachable(_)));
        assert_eq!(net.stats().for_addr(&Addr::new("nope", 1)).failures, 1);
    }

    #[test]
    fn double_bind_is_rejected() {
        let net = Network::new();
        net.bind(Addr::new("srv", 1), echo()).unwrap();
        let e = net.bind(Addr::new("srv", 1), echo()).unwrap_err();
        assert!(matches!(e, NetError::AddrInUse(_)));
    }

    #[test]
    fn unbind_releases_the_addr() {
        let net = Network::new();
        net.bind(Addr::new("srv", 1), echo()).unwrap();
        assert!(net.unbind(&Addr::new("srv", 1)));
        assert!(!net.unbind(&Addr::new("srv", 1)));
        net.bind(Addr::new("srv", 1), echo()).unwrap();
    }

    #[test]
    fn partition_blocks_both_directions() {
        let net = Network::new();
        net.bind(Addr::new("a", 1), echo()).unwrap();
        net.bind(Addr::new("b", 1), echo()).unwrap();
        net.with_faults(|f| f.partition("a", "b"));
        let e = net
            .request(&Addr::new("a", 2), &Addr::new("b", 1), Bytes::new())
            .unwrap_err();
        assert!(matches!(e, NetError::Partitioned(_)));
        let e = net
            .request(&Addr::new("b", 2), &Addr::new("a", 1), Bytes::new())
            .unwrap_err();
        assert!(matches!(e, NetError::Partitioned(_)));
        net.with_faults(|f| f.heal("a", "b"));
        assert!(net
            .request(&Addr::new("a", 2), &Addr::new("b", 1), Bytes::new())
            .is_ok());
    }

    #[test]
    fn down_host_refuses_all_services() {
        let net = Network::new();
        net.bind(Addr::new("db", 1), echo()).unwrap();
        net.bind(Addr::new("db", 2), echo()).unwrap();
        net.with_faults(|f| f.take_down("db"));
        assert!(net
            .request(&client(), &Addr::new("db", 1), Bytes::new())
            .is_err());
        assert!(net
            .request(&client(), &Addr::new("db", 2), Bytes::new())
            .is_err());
        net.with_faults(|f| f.restore("db"));
        assert!(net
            .request(&client(), &Addr::new("db", 1), Bytes::new())
            .is_ok());
    }

    #[test]
    fn lossy_network_drops_some_messages() {
        let net = Network::new();
        net.reseed(42);
        net.bind(Addr::new("srv", 1), echo()).unwrap();
        net.with_faults(|f| f.set_drop_prob(0.5));
        let mut lost = 0;
        for _ in 0..100 {
            if net
                .request(&client(), &Addr::new("srv", 1), Bytes::new())
                .is_err()
            {
                lost += 1;
            }
        }
        assert!(lost > 20 && lost < 80, "lost={lost}");
    }

    #[test]
    fn broadcast_collects_all_replies_on_port() {
        let net = Network::new();
        net.bind(
            Addr::new("s1", 70),
            FnService::new(|_f, _r| Ok(Bytes::from_static(b"one"))),
        )
        .unwrap();
        net.bind(
            Addr::new("s2", 70),
            FnService::new(|_f, _r| Ok(Bytes::from_static(b"two"))),
        )
        .unwrap();
        net.bind(Addr::new("other", 71), echo()).unwrap();
        let replies = net.broadcast(&client(), 70, Bytes::new());
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].0, Addr::new("s1", 70));
        assert_eq!(replies[1].0, Addr::new("s2", 70));
    }

    #[test]
    fn broadcast_skips_partitioned_servers() {
        let net = Network::new();
        net.bind(Addr::new("s1", 70), echo()).unwrap();
        net.bind(Addr::new("s2", 70), echo()).unwrap();
        net.with_faults(|f| f.partition("client", "s1"));
        let replies = net.broadcast(&client(), 70, Bytes::new());
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].0, Addr::new("s2", 70));
    }

    #[test]
    fn pipes_require_service_support() {
        let net = Network::new();
        net.bind(Addr::new("srv", 1), echo()).unwrap();
        let e = net
            .connect_pipe(&client(), &Addr::new("srv", 1))
            .unwrap_err();
        assert!(matches!(e, NetError::PipesUnsupported(_)));
    }

    #[test]
    fn pipe_roundtrip_through_accepting_service() {
        use parking_lot::Mutex;

        struct PipeKeeper {
            pipes: Mutex<Vec<Pipe>>,
        }
        impl Service for PipeKeeper {
            fn call(&self, _from: &Addr, _req: Bytes) -> Result<Bytes, NetError> {
                // Push a greeting down every held pipe.
                for p in self.pipes.lock().iter() {
                    let _ = p.send(Bytes::from_static(b"hi"));
                }
                Ok(Bytes::new())
            }
            fn accept_pipe(&self, _from: &Addr, pipe: Pipe) -> Result<(), NetError> {
                self.pipes.lock().push(pipe);
                Ok(())
            }
        }

        let net = Network::new();
        net.bind(
            Addr::new("srv", 1),
            PipeKeeper {
                pipes: Mutex::new(Vec::new()),
            },
        )
        .unwrap();
        let pipe = net.connect_pipe(&client(), &Addr::new("srv", 1)).unwrap();
        net.request(&client(), &Addr::new("srv", 1), Bytes::new())
            .unwrap();
        assert_eq!(pipe.try_recv().unwrap().unwrap(), Bytes::from_static(b"hi"));
    }

    #[test]
    fn zoned_links_charge_the_clock_per_leg() {
        let net = Network::new();
        net.bind(Addr::new("srv", 1), echo()).unwrap();
        net.with_topology(|t| {
            t.set_default_latency(1, 25);
            t.place("client", "east");
            t.place("srv", "west");
        });
        assert_eq!(net.zone_of("srv").as_deref(), Some("west"));
        assert_eq!(net.latency_between(&client(), &Addr::new("srv", 1)), 25);
        let t0 = net.clock().now_ms();
        net.request(&client(), &Addr::new("srv", 1), Bytes::new())
            .unwrap();
        // Request leg + response leg.
        assert_eq!(net.clock().now_ms() - t0, 50);

        // Unplaced peers stay free.
        net.bind(Addr::new("other", 1), echo()).unwrap();
        let t1 = net.clock().now_ms();
        net.request(
            &Addr::new("someone", 2),
            &Addr::new("other", 1),
            Bytes::new(),
        )
        .unwrap();
        assert_eq!(net.clock().now_ms(), t1);
    }

    #[test]
    fn auto_pump_fires_tasks_made_due_by_request_latency() {
        use crate::sched::TaskControl;
        use std::sync::atomic::AtomicU64;
        use std::time::Duration;

        let net = Network::new();
        net.bind(Addr::new("srv", 1), echo()).unwrap();
        net.with_topology(|t| {
            t.set_default_latency(1, 25);
            t.place("client", "east");
            t.place("srv", "west");
        });
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        // The task itself talks on the network mid-dispatch: its request
        // must defer to the outermost pump, not recurse into run_due.
        let task_net = net.clone();
        net.scheduler().every(
            Duration::from_millis(30),
            Duration::ZERO,
            "self-talker",
            move || {
                f.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let _ = task_net.request(&Addr::new("task", 2), &Addr::new("srv", 1), Bytes::new());
                Ok(TaskControl::Continue)
            },
        );

        // Without auto-pump, traffic advances the clock but nothing fires.
        for _ in 0..2 {
            net.request(&client(), &Addr::new("srv", 1), Bytes::new())
                .unwrap();
        }
        assert_eq!(net.clock().now_ms(), 100);
        assert_eq!(fired.load(std::sync::atomic::Ordering::SeqCst), 0);

        // With auto-pump, each outermost request catches the task up:
        // one firing per pump (beats jumped over by the latency charge
        // are skipped, not replayed, per the fixed-rate cadence).
        net.set_auto_pump(true);
        for _ in 0..2 {
            net.request(&client(), &Addr::new("srv", 1), Bytes::new())
                .unwrap();
        }
        assert_eq!(net.clock().now_ms(), 200);
        assert_eq!(fired.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn auto_pump_defers_mid_dispatch_reschedules_instead_of_recursing() {
        use crate::sched::TaskControl;
        use std::sync::atomic::AtomicU64;
        use std::time::Duration;

        // A service that, while handling a request, registers an
        // immediately-due task which calls the service again — the
        // self-rescheduling shape. Depth must never exceed one dispatch:
        // the nested request happens after the outer call returns.
        struct Resched {
            net: Mutex<Option<Network>>,
            depth: AtomicU64,
            max_depth: AtomicU64,
            calls: AtomicU64,
        }
        impl Service for Resched {
            fn call(&self, _from: &Addr, _req: Bytes) -> Result<Bytes, NetError> {
                use std::sync::atomic::Ordering::SeqCst;
                let d = self.depth.fetch_add(1, SeqCst) + 1;
                self.max_depth.fetch_max(d, SeqCst);
                let calls = self.calls.fetch_add(1, SeqCst) + 1;
                if calls < 4 {
                    let net = self.net.lock().clone().expect("network attached");
                    let again = net.clone();
                    net.scheduler()
                        .once(Duration::ZERO, format!("resched-{calls}"), move || {
                            let _ = again.request(
                                &Addr::new("task", 2),
                                &Addr::new("svc", 1),
                                Bytes::new(),
                            );
                            Ok(TaskControl::Done)
                        });
                }
                self.depth.fetch_sub(1, SeqCst);
                Ok(Bytes::new())
            }
        }

        let net = Network::new();
        let svc = Arc::new(Resched {
            net: Mutex::new(Some(net.clone())),
            depth: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
            calls: AtomicU64::new(0),
        });
        net.bind_arc(Addr::new("svc", 1), svc.clone()).unwrap();
        net.set_auto_pump(true);
        net.request(&client(), &Addr::new("svc", 1), Bytes::new())
            .unwrap();
        use std::sync::atomic::Ordering::SeqCst;
        assert_eq!(svc.calls.load(SeqCst), 4, "rescheduled calls all ran");
        assert_eq!(svc.max_depth.load(SeqCst), 1, "dispatch never recursed");
        // Drop the service's network handle to break the Arc cycle.
        svc.net.lock().take();
    }

    #[test]
    fn clock_is_shared() {
        let net = Network::new();
        let c1 = net.clock().clone();
        net.clock().advance_ms(10);
        assert_eq!(c1.now_ms(), 10);
    }
}
