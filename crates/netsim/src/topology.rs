//! Zone and latency topology.
//!
//! The mirror tier reasons about *locality*: a client should fetch bulk
//! chunk data from a replica in its own zone. To make that measurable
//! rather than cosmetic, hosts can be placed in named zones and every
//! delivered message is charged the zone-pair link latency against the
//! shared simulated [`crate::Clock`]. Components then observe latency
//! the same way they observe time — through the clock — so fetch-latency
//! percentiles fall out of ordinary clock reads.
//!
//! Unplaced hosts and unconfigured links cost zero, so existing
//! single-zone tests and benchmarks are unaffected.

use std::collections::HashMap;

/// Host→zone placement plus per-zone-pair link latencies.
///
/// Latencies are one-way milliseconds; a request/response exchange
/// traverses the link twice. Lookups between hosts where either side is
/// unplaced return zero.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    zones: HashMap<String, String>,
    links: HashMap<(String, String), u64>,
    same_zone_ms: u64,
    cross_zone_ms: u64,
}

impl Topology {
    /// An empty topology: no zones, every link free.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Places `host` in `zone` (replacing any previous placement).
    pub fn place(&mut self, host: impl Into<String>, zone: impl Into<String>) {
        self.zones.insert(host.into(), zone.into());
    }

    /// The zone `host` was placed in, if any.
    pub fn zone_of(&self, host: &str) -> Option<&str> {
        self.zones.get(host).map(String::as_str)
    }

    /// Sets the default one-way latencies applied when no explicit
    /// zone-pair link overrides them.
    pub fn set_default_latency(&mut self, same_zone_ms: u64, cross_zone_ms: u64) {
        self.same_zone_ms = same_zone_ms;
        self.cross_zone_ms = cross_zone_ms;
    }

    fn key(a: &str, b: &str) -> (String, String) {
        if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        }
    }

    /// Sets the one-way latency between two zones (symmetric; `a == b`
    /// sets that zone's intra-zone latency).
    pub fn set_zone_link(&mut self, a: &str, b: &str, ms: u64) {
        self.links.insert(Self::key(a, b), ms);
    }

    /// One-way latency between two hosts. Zero when either host is
    /// unplaced (the topology knows nothing about it).
    pub fn latency_ms(&self, from_host: &str, to_host: &str) -> u64 {
        let (Some(a), Some(b)) = (self.zones.get(from_host), self.zones.get(to_host)) else {
            return 0;
        };
        // Only build the owned lookup key when overrides exist: this
        // runs on every delivered message, and most topologies use the
        // defaults alone.
        if !self.links.is_empty() {
            if let Some(ms) = self.links.get(&Self::key(a, b)) {
                return *ms;
            }
        }
        if a == b {
            self.same_zone_ms
        } else {
            self.cross_zone_ms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unplaced_hosts_cost_nothing() {
        let mut t = Topology::new();
        t.set_default_latency(1, 25);
        assert_eq!(t.latency_ms("a", "b"), 0);
        t.place("a", "east");
        assert_eq!(t.latency_ms("a", "b"), 0);
    }

    #[test]
    fn defaults_split_same_and_cross_zone() {
        let mut t = Topology::new();
        t.set_default_latency(1, 25);
        t.place("a1", "east");
        t.place("a2", "east");
        t.place("b1", "west");
        assert_eq!(t.latency_ms("a1", "a2"), 1);
        assert_eq!(t.latency_ms("a1", "b1"), 25);
        assert_eq!(t.latency_ms("b1", "a1"), 25);
    }

    #[test]
    fn zone_links_override_defaults_symmetrically() {
        let mut t = Topology::new();
        t.set_default_latency(1, 25);
        t.place("a1", "east");
        t.place("b1", "west");
        t.set_zone_link("west", "east", 80);
        assert_eq!(t.latency_ms("a1", "b1"), 80);
        assert_eq!(t.latency_ms("b1", "a1"), 80);
        t.set_zone_link("east", "east", 2);
        t.place("a2", "east");
        assert_eq!(t.latency_ms("a1", "a2"), 2);
    }

    #[test]
    fn placement_is_replaceable() {
        let mut t = Topology::new();
        t.place("a", "east");
        assert_eq!(t.zone_of("a"), Some("east"));
        t.place("a", "west");
        assert_eq!(t.zone_of("a"), Some("west"));
        assert_eq!(t.zone_of("nope"), None);
    }
}
