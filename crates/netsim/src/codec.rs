//! Minimal length-prefixed binary codec helpers.
//!
//! Every wire protocol in this workspace (the Drivolution bootstrap
//! protocol, the minidb client/server protocol, the cluster group
//! protocol) is hand-rolled on top of these primitives: little-endian
//! fixed-width integers and `u32`-length-prefixed byte strings.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use std::error::Error;
use std::fmt;

/// Error produced when decoding a malformed frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    context: String,
}

impl CodecError {
    /// Creates a decode error with a short context description.
    pub fn new(context: impl Into<String>) -> Self {
        CodecError {
            context: context.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed frame: {}", self.context)
    }
}

impl Error for CodecError {}

/// Writes a `u32`-length-prefixed byte string.
pub fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

/// Writes a `u32`-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Writes an `Option<&str>`: presence byte then the string.
pub fn put_opt_str(buf: &mut BytesMut, s: Option<&str>) {
    match s {
        Some(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
        None => buf.put_u8(0),
    }
}

/// Writes an `Option<i64>`: presence byte then the value.
pub fn put_opt_i64(buf: &mut BytesMut, v: Option<i64>) {
    match v {
        Some(v) => {
            buf.put_u8(1);
            buf.put_i64_le(v);
        }
        None => buf.put_u8(0),
    }
}

/// Reads one byte.
///
/// # Errors
///
/// [`CodecError`] on underflow.
pub fn get_u8(buf: &mut Bytes, what: &str) -> Result<u8, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::new(format!("{what}: need 1 byte")));
    }
    Ok(buf.get_u8())
}

/// Reads a little-endian `u16`.
///
/// # Errors
///
/// [`CodecError`] on underflow.
pub fn get_u16(buf: &mut Bytes, what: &str) -> Result<u16, CodecError> {
    if buf.remaining() < 2 {
        return Err(CodecError::new(format!("{what}: need 2 bytes")));
    }
    Ok(buf.get_u16_le())
}

/// Reads a little-endian `u32`.
///
/// # Errors
///
/// [`CodecError`] on underflow.
pub fn get_u32(buf: &mut Bytes, what: &str) -> Result<u32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::new(format!("{what}: need 4 bytes")));
    }
    Ok(buf.get_u32_le())
}

/// Reads a little-endian `u64`.
///
/// # Errors
///
/// [`CodecError`] on underflow.
pub fn get_u64(buf: &mut Bytes, what: &str) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::new(format!("{what}: need 8 bytes")));
    }
    Ok(buf.get_u64_le())
}

/// Reads a little-endian `i64`.
///
/// # Errors
///
/// [`CodecError`] on underflow.
pub fn get_i64(buf: &mut Bytes, what: &str) -> Result<i64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::new(format!("{what}: need 8 bytes")));
    }
    Ok(buf.get_i64_le())
}

/// Reads a `u32`-length-prefixed byte string.
///
/// # Errors
///
/// [`CodecError`] on underflow or a length prefix exceeding the buffer.
pub fn get_bytes(buf: &mut Bytes, what: &str) -> Result<Bytes, CodecError> {
    let len = get_u32(buf, what)? as usize;
    if buf.remaining() < len {
        return Err(CodecError::new(format!(
            "{what}: length prefix {len} exceeds remaining {}",
            buf.remaining()
        )));
    }
    Ok(buf.split_to(len))
}

/// Reads a `u32`-length-prefixed UTF-8 string.
///
/// # Errors
///
/// [`CodecError`] on underflow or invalid UTF-8.
pub fn get_str(buf: &mut Bytes, what: &str) -> Result<String, CodecError> {
    let b = get_bytes(buf, what)?;
    String::from_utf8(b.to_vec()).map_err(|_| CodecError::new(format!("{what}: invalid utf-8")))
}

/// Reads an `Option<String>` written by [`put_opt_str`].
///
/// # Errors
///
/// [`CodecError`] on underflow or an invalid presence byte.
pub fn get_opt_str(buf: &mut Bytes, what: &str) -> Result<Option<String>, CodecError> {
    match get_u8(buf, what)? {
        0 => Ok(None),
        1 => Ok(Some(get_str(buf, what)?)),
        n => Err(CodecError::new(format!("{what}: bad presence byte {n}"))),
    }
}

/// Reads an `Option<i64>` written by [`put_opt_i64`].
///
/// # Errors
///
/// [`CodecError`] on underflow or an invalid presence byte.
pub fn get_opt_i64(buf: &mut Bytes, what: &str) -> Result<Option<i64>, CodecError> {
    match get_u8(buf, what)? {
        0 => Ok(None),
        1 => Ok(Some(get_i64(buf, what)?)),
        n => Err(CodecError::new(format!("{what}: bad presence byte {n}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_i64_le(-42);
        put_str(&mut b, "héllo");
        put_bytes(&mut b, &[1, 2, 3]);
        put_opt_str(&mut b, None);
        put_opt_str(&mut b, Some("x"));
        put_opt_i64(&mut b, Some(-1));
        put_opt_i64(&mut b, None);

        let mut r = b.freeze();
        assert_eq!(get_u8(&mut r, "a").unwrap(), 7);
        assert_eq!(get_u16(&mut r, "b").unwrap(), 300);
        assert_eq!(get_u32(&mut r, "c").unwrap(), 70_000);
        assert_eq!(get_u64(&mut r, "d").unwrap(), 1 << 40);
        assert_eq!(get_i64(&mut r, "e").unwrap(), -42);
        assert_eq!(get_str(&mut r, "f").unwrap(), "héllo");
        assert_eq!(
            get_bytes(&mut r, "g").unwrap(),
            Bytes::from_static(&[1, 2, 3])
        );
        assert_eq!(get_opt_str(&mut r, "h").unwrap(), None);
        assert_eq!(get_opt_str(&mut r, "i").unwrap(), Some("x".to_string()));
        assert_eq!(get_opt_i64(&mut r, "j").unwrap(), Some(-1));
        assert_eq!(get_opt_i64(&mut r, "k").unwrap(), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn underflow_is_reported_with_context() {
        let mut r = Bytes::from_static(&[1]);
        let e = get_u32(&mut r, "session id").unwrap_err();
        assert!(e.to_string().contains("session id"));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut b = BytesMut::new();
        b.put_u32_le(100);
        b.put_slice(&[0; 10]);
        let mut r = b.freeze();
        assert!(get_bytes(&mut r, "blob").is_err());
    }

    #[test]
    fn bad_presence_byte_is_rejected() {
        let mut r = Bytes::from_static(&[9]);
        assert!(get_opt_str(&mut r, "opt").is_err());
    }
}
