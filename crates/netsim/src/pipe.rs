//! Dedicated duplex channels ("pipes") between a client and a service.
//!
//! Pipes model the paper's *dedicated channel between the Drivolution
//! bootloader and Server* (§3.2): a long-lived connection on which the
//! server can immediately push "new driver available" notifications, and
//! whose closure acts as a failure detector for the license-server use case
//! (§5.4.2).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::error::NetError;
use crate::Addr;

/// One end of a duplex byte-message channel.
///
/// Either side may send and receive. Dropping or [`Pipe::close`]-ing one end
/// makes the peer observe [`NetError::Closed`] once its queue drains.
pub struct Pipe {
    peer: Addr,
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    open: Arc<AtomicBool>,
}

impl fmt::Debug for Pipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipe")
            .field("peer", &self.peer)
            .field("open", &self.is_open())
            .finish()
    }
}

impl Pipe {
    /// Creates a connected pair of pipe ends. `client_addr` and
    /// `server_addr` are informational, exposed via [`Pipe::peer`].
    pub fn pair(client_addr: Addr, server_addr: Addr) -> (Pipe, Pipe) {
        let (tx_a, rx_b) = unbounded();
        let (tx_b, rx_a) = unbounded();
        let open = Arc::new(AtomicBool::new(true));
        let client = Pipe {
            peer: server_addr,
            tx: tx_a,
            rx: rx_a,
            open: open.clone(),
        };
        let server = Pipe {
            peer: client_addr,
            tx: tx_b,
            rx: rx_b,
            open,
        };
        (client, server)
    }

    /// Address of the remote end.
    pub fn peer(&self) -> &Addr {
        &self.peer
    }

    /// Returns `true` while neither end has closed the pipe.
    pub fn is_open(&self) -> bool {
        self.open.load(Ordering::SeqCst)
    }

    /// Sends one message to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] if either end closed the pipe.
    pub fn send(&self, msg: Bytes) -> Result<(), NetError> {
        if !self.is_open() {
            return Err(NetError::Closed(format!("pipe to {}", self.peer)));
        }
        self.tx
            .send(msg)
            .map_err(|_| NetError::Closed(format!("pipe to {}", self.peer)))
    }

    /// Receives the next message without blocking.
    ///
    /// Returns `Ok(None)` when no message is currently queued.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] once the pipe is closed *and* drained.
    pub fn try_recv(&self) -> Result<Option<Bytes>, NetError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => {
                if self.is_open() {
                    Ok(None)
                } else {
                    Err(NetError::Closed(format!("pipe to {}", self.peer)))
                }
            }
            Err(TryRecvError::Disconnected) => {
                Err(NetError::Closed(format!("pipe to {}", self.peer)))
            }
        }
    }

    /// Receives the next message, blocking up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when nothing arrived in time,
    /// [`NetError::Closed`] when the pipe is closed and drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Bytes, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => {
                if self.is_open() {
                    Err(NetError::Timeout(format!("pipe to {}", self.peer)))
                } else {
                    Err(NetError::Closed(format!("pipe to {}", self.peer)))
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(NetError::Closed(format!("pipe to {}", self.peer)))
            }
        }
    }

    /// Closes both directions. Idempotent; queued messages remain readable
    /// by the peer until drained.
    pub fn close(&self) {
        self.open.store(false, Ordering::SeqCst);
    }
}

impl Drop for Pipe {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Addr, Addr) {
        (Addr::new("client", 1), Addr::new("server", 2))
    }

    #[test]
    fn duplex_send_recv() {
        let (c, s) = Pipe::pair(addrs().0, addrs().1);
        c.send(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(s.try_recv().unwrap().unwrap(), Bytes::from_static(b"ping"));
        s.send(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(c.try_recv().unwrap().unwrap(), Bytes::from_static(b"pong"));
    }

    #[test]
    fn empty_try_recv_returns_none() {
        let (c, _s) = Pipe::pair(addrs().0, addrs().1);
        assert_eq!(c.try_recv().unwrap(), None);
    }

    #[test]
    fn close_is_visible_to_peer() {
        let (c, s) = Pipe::pair(addrs().0, addrs().1);
        c.close();
        assert!(!s.is_open());
        assert!(s.send(Bytes::new()).is_err());
        assert!(matches!(s.try_recv(), Err(NetError::Closed(_))));
    }

    #[test]
    fn queued_messages_survive_close_until_drained() {
        let (c, s) = Pipe::pair(addrs().0, addrs().1);
        c.send(Bytes::from_static(b"last words")).unwrap();
        c.close();
        // The already-queued message is still deliverable.
        assert_eq!(s.rx.try_recv().unwrap(), Bytes::from_static(b"last words"));
    }

    #[test]
    fn drop_closes() {
        let (c, s) = Pipe::pair(addrs().0, addrs().1);
        drop(c);
        assert!(!s.is_open());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (c, _s) = Pipe::pair(addrs().0, addrs().1);
        let err = c.recv_timeout(Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, NetError::Timeout(_)));
    }
}
