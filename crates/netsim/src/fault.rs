//! Fault injection: host failures, network partitions, message loss.
//!
//! The Drivolution paper repeatedly reasons about failure behaviour — a
//! Drivolution server outage "only impacts new driver requests or driver
//! renewal requests" (§3.2), replicated servers remove the single point of
//! failure (§5.3.2). This module lets tests and benchmarks create exactly
//! those situations.

use std::collections::HashSet;

/// Mutable description of the currently injected faults.
///
/// A symmetric partition between hosts `a` and `b` blocks traffic in both
/// directions. A down host refuses everything. `drop_prob` models lossy
/// links: each request independently vanishes with this probability.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    partitions: HashSet<(String, String)>,
    down_hosts: HashSet<String>,
    drop_prob: f64,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    fn key(a: &str, b: &str) -> (String, String) {
        if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        }
    }

    /// Installs a symmetric partition between two hosts.
    pub fn partition(&mut self, a: &str, b: &str) {
        self.partitions.insert(Self::key(a, b));
    }

    /// Removes the partition between two hosts, if any.
    pub fn heal(&mut self, a: &str, b: &str) {
        self.partitions.remove(&Self::key(a, b));
    }

    /// Removes every partition.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    /// Returns `true` when traffic between the two hosts is blocked.
    pub fn is_partitioned(&self, a: &str, b: &str) -> bool {
        self.partitions.contains(&Self::key(a, b))
    }

    /// Marks a host as crashed: all its services become unreachable.
    pub fn take_down(&mut self, host: &str) {
        self.down_hosts.insert(host.to_string());
    }

    /// Restores a crashed host.
    pub fn restore(&mut self, host: &str) {
        self.down_hosts.remove(host);
    }

    /// Returns `true` when the host is currently down.
    pub fn is_down(&self, host: &str) -> bool {
        self.down_hosts.contains(host)
    }

    /// Sets the independent per-message loss probability (clamped to
    /// `[0, 1]`).
    pub fn set_drop_prob(&mut self, p: f64) {
        self.drop_prob = p.clamp(0.0, 1.0);
    }

    /// Current per-message loss probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_are_symmetric() {
        let mut p = FaultPlan::new();
        p.partition("a", "b");
        assert!(p.is_partitioned("a", "b"));
        assert!(p.is_partitioned("b", "a"));
        p.heal("b", "a");
        assert!(!p.is_partitioned("a", "b"));
    }

    #[test]
    fn heal_all_clears_everything() {
        let mut p = FaultPlan::new();
        p.partition("a", "b");
        p.partition("c", "d");
        p.heal_all();
        assert!(!p.is_partitioned("a", "b"));
        assert!(!p.is_partitioned("c", "d"));
    }

    #[test]
    fn down_hosts_toggle() {
        let mut p = FaultPlan::new();
        p.take_down("db1");
        assert!(p.is_down("db1"));
        p.restore("db1");
        assert!(!p.is_down("db1"));
    }

    #[test]
    fn drop_prob_is_clamped() {
        let mut p = FaultPlan::new();
        p.set_drop_prob(3.0);
        assert_eq!(p.drop_prob(), 1.0);
        p.set_drop_prob(-1.0);
        assert_eq!(p.drop_prob(), 0.0);
    }
}
