//! Fault injection: host failures, network partitions, message loss,
//! byzantine corruption, and latency storms.
//!
//! The Drivolution paper repeatedly reasons about failure behaviour — a
//! Drivolution server outage "only impacts new driver requests or driver
//! renewal requests" (§3.2), replicated servers remove the single point of
//! failure (§5.3.2). This module lets tests and benchmarks create exactly
//! those situations, and — via [`crate::ChaosSchedule`] — compose them
//! into seed-reproducible timelines.

use std::collections::{BTreeMap, HashSet};

/// Mutable description of the currently injected faults.
///
/// A symmetric partition between hosts `a` and `b` blocks traffic in both
/// directions; zone partitions do the same for every host pair straddling
/// two zones. A down host refuses everything. `drop_prob` models globally
/// lossy links, per-link loss models a single flapping path (directional:
/// `a → b` may be lossy while `b → a` is clean). A byzantine host has a
/// fraction of the responses it serves corrupted in flight, and the
/// latency factor multiplies every topology link latency for the duration
/// of a storm.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    partitions: HashSet<(String, String)>,
    zone_partitions: HashSet<(String, String)>,
    down_hosts: HashSet<String>,
    drop_prob: f64,
    /// Directional `(from, to)` host-pair loss probabilities.
    link_loss: BTreeMap<(String, String), f64>,
    /// Hosts whose served responses are corrupted with this probability.
    corrupt_hosts: BTreeMap<String, f64>,
    latency_factor: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            partitions: HashSet::new(),
            zone_partitions: HashSet::new(),
            down_hosts: HashSet::new(),
            drop_prob: 0.0,
            link_loss: BTreeMap::new(),
            corrupt_hosts: BTreeMap::new(),
            latency_factor: 1,
        }
    }
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    fn key(a: &str, b: &str) -> (String, String) {
        if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        }
    }

    /// Installs a symmetric partition between two hosts.
    pub fn partition(&mut self, a: &str, b: &str) {
        self.partitions.insert(Self::key(a, b));
    }

    /// Removes the partition between two hosts, if any.
    pub fn heal(&mut self, a: &str, b: &str) {
        self.partitions.remove(&Self::key(a, b));
    }

    /// Removes every host and zone partition.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
        self.zone_partitions.clear();
    }

    /// Returns `true` when traffic between the two hosts is blocked by a
    /// host-pair partition.
    pub fn is_partitioned(&self, a: &str, b: &str) -> bool {
        self.partitions.contains(&Self::key(a, b))
    }

    /// Installs a symmetric partition between two *zones*: every message
    /// whose endpoints are placed in `a` and `b` is blocked until
    /// [`heal_zones`](Self::heal_zones). Hosts outside either zone are
    /// unaffected.
    pub fn partition_zones(&mut self, a: &str, b: &str) {
        self.zone_partitions.insert(Self::key(a, b));
    }

    /// Removes the partition between two zones, if any.
    pub fn heal_zones(&mut self, a: &str, b: &str) {
        self.zone_partitions.remove(&Self::key(a, b));
    }

    /// Returns `true` when traffic between the two zones is blocked.
    pub fn zones_partitioned(&self, a: &str, b: &str) -> bool {
        self.zone_partitions.contains(&Self::key(a, b))
    }

    /// Marks a host as crashed: all its services become unreachable.
    pub fn take_down(&mut self, host: &str) {
        self.down_hosts.insert(host.to_string());
    }

    /// Restores a crashed host.
    pub fn restore(&mut self, host: &str) {
        self.down_hosts.remove(host);
    }

    /// Returns `true` when the host is currently down.
    pub fn is_down(&self, host: &str) -> bool {
        self.down_hosts.contains(host)
    }

    /// Sets the independent per-message loss probability (clamped to
    /// `[0, 1]`).
    pub fn set_drop_prob(&mut self, p: f64) {
        self.drop_prob = p.clamp(0.0, 1.0);
    }

    /// Current per-message loss probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Sets a *directional* loss probability on the `from → to` host
    /// link (clamped to `[0, 1]`; zero clears the entry). The reverse
    /// direction keeps its own, independent probability — an asymmetric
    /// link drops requests one way while replies flow clean the other.
    pub fn set_link_loss(&mut self, from: &str, to: &str, p: f64) {
        let p = p.clamp(0.0, 1.0);
        let key = (from.to_string(), to.to_string());
        if p == 0.0 {
            self.link_loss.remove(&key);
        } else {
            self.link_loss.insert(key, p);
        }
    }

    /// Directional loss probability on the `from → to` host link (zero
    /// when unconfigured).
    pub fn link_loss(&self, from: &str, to: &str) -> f64 {
        self.link_loss
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Marks `host` as byzantine: each response it serves is corrupted
    /// in flight with probability `p` (clamped to `[0, 1]`; zero clears
    /// the flag). Corruption flips payload bytes, so digest- and
    /// checksum-verifying clients detect it — the point is exercising
    /// their *reaction*, not smuggling bad bytes past them.
    pub fn corrupt_serves(&mut self, host: &str, p: f64) {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            self.corrupt_hosts.remove(host);
        } else {
            self.corrupt_hosts.insert(host.to_string(), p);
        }
    }

    /// Probability that a response served by `host` is corrupted (zero
    /// for honest hosts).
    pub fn corrupt_prob(&self, host: &str) -> f64 {
        self.corrupt_hosts.get(host).copied().unwrap_or(0.0)
    }

    /// Sets the latency-storm multiplier applied to every topology link
    /// latency (clamped to at least 1, the calm default).
    pub fn set_latency_factor(&mut self, factor: u64) {
        self.latency_factor = factor.max(1);
    }

    /// Current latency multiplier (1 outside a storm).
    pub fn latency_factor(&self) -> u64 {
        self.latency_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_are_symmetric() {
        let mut p = FaultPlan::new();
        p.partition("a", "b");
        assert!(p.is_partitioned("a", "b"));
        assert!(p.is_partitioned("b", "a"));
        p.heal("b", "a");
        assert!(!p.is_partitioned("a", "b"));
    }

    #[test]
    fn heal_all_clears_everything() {
        let mut p = FaultPlan::new();
        p.partition("a", "b");
        p.partition("c", "d");
        p.partition_zones("east", "west");
        p.heal_all();
        assert!(!p.is_partitioned("a", "b"));
        assert!(!p.is_partitioned("c", "d"));
        assert!(!p.zones_partitioned("east", "west"));
    }

    #[test]
    fn zone_partitions_are_symmetric_and_heal() {
        let mut p = FaultPlan::new();
        p.partition_zones("east", "west");
        assert!(p.zones_partitioned("east", "west"));
        assert!(p.zones_partitioned("west", "east"));
        assert!(!p.zones_partitioned("east", "south"));
        p.heal_zones("west", "east");
        assert!(!p.zones_partitioned("east", "west"));
    }

    #[test]
    fn down_hosts_toggle() {
        let mut p = FaultPlan::new();
        p.take_down("db1");
        assert!(p.is_down("db1"));
        p.restore("db1");
        assert!(!p.is_down("db1"));
    }

    #[test]
    fn drop_prob_is_clamped() {
        let mut p = FaultPlan::new();
        p.set_drop_prob(3.0);
        assert_eq!(p.drop_prob(), 1.0);
        p.set_drop_prob(-1.0);
        assert_eq!(p.drop_prob(), 0.0);
    }

    #[test]
    fn link_loss_is_directional() {
        let mut p = FaultPlan::new();
        p.set_link_loss("a", "b", 0.4);
        assert_eq!(p.link_loss("a", "b"), 0.4);
        assert_eq!(p.link_loss("b", "a"), 0.0, "reverse direction is clean");
        p.set_link_loss("a", "b", 0.0);
        assert_eq!(p.link_loss("a", "b"), 0.0);
    }

    #[test]
    fn corrupt_hosts_toggle_and_clamp() {
        let mut p = FaultPlan::new();
        p.corrupt_serves("evil", 2.0);
        assert_eq!(p.corrupt_prob("evil"), 1.0);
        assert_eq!(p.corrupt_prob("honest"), 0.0);
        p.corrupt_serves("evil", 0.0);
        assert_eq!(p.corrupt_prob("evil"), 0.0);
    }

    #[test]
    fn latency_factor_defaults_calm_and_never_zero() {
        let mut p = FaultPlan::new();
        assert_eq!(p.latency_factor(), 1);
        p.set_latency_factor(8);
        assert_eq!(p.latency_factor(), 8);
        p.set_latency_factor(0);
        assert_eq!(p.latency_factor(), 1);
    }
}
