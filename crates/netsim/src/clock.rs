//! Virtual and system clocks.
//!
//! Every time-dependent component in the workspace (leases, license
//! expirations, fleet simulations) takes a [`Clock`] handle instead of
//! reading the wall clock. Tests and benchmarks use a simulated clock and
//! advance it manually, so a "one-day lease" experiment runs in
//! microseconds and is fully deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cloneable clock handle measuring milliseconds since an arbitrary origin.
///
/// Two flavors exist:
///
/// * [`Clock::simulated`] — starts at zero and only moves when
///   [`Clock::advance_ms`] is called. All clones share the same time source.
/// * [`Clock::system`] — reads the monotonic OS clock.
///
/// # Examples
///
/// ```
/// use netsim::Clock;
///
/// let clock = Clock::simulated();
/// assert_eq!(clock.now_ms(), 0);
/// clock.advance_ms(86_400_000); // a full day, instantly
/// assert_eq!(clock.now_ms(), 86_400_000);
/// ```
#[derive(Clone, Debug)]
pub struct Clock {
    inner: ClockInner,
}

#[derive(Clone, Debug)]
enum ClockInner {
    Simulated(Arc<AtomicU64>),
    System(Instant),
}

impl Clock {
    /// Creates a simulated clock starting at time zero.
    pub fn simulated() -> Self {
        Clock {
            inner: ClockInner::Simulated(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Creates a clock backed by the monotonic system clock.
    ///
    /// The origin is the moment of construction, so `now_ms` starts near
    /// zero just like the simulated clock.
    pub fn system() -> Self {
        Clock {
            // drvlint: allow(wallclock) — the explicit real-time constructor;
            // every other path gets time from a simulated Clock.
            inner: ClockInner::System(Instant::now()),
        }
    }

    /// Current time in milliseconds since this clock's origin.
    pub fn now_ms(&self) -> u64 {
        match &self.inner {
            ClockInner::Simulated(t) => t.load(Ordering::SeqCst),
            ClockInner::System(origin) => origin.elapsed().as_millis() as u64,
        }
    }

    /// Advances a simulated clock by `delta_ms` milliseconds and returns the
    /// new time.
    ///
    /// # Panics
    ///
    /// Panics if called on a system clock: real time cannot be steered.
    pub fn advance_ms(&self, delta_ms: u64) -> u64 {
        match &self.inner {
            ClockInner::Simulated(t) => t.fetch_add(delta_ms, Ordering::SeqCst) + delta_ms,
            ClockInner::System(_) => panic!("cannot advance a system clock"),
        }
    }

    /// Returns `true` for clocks created with [`Clock::simulated`].
    pub fn is_simulated(&self) -> bool {
        matches!(self.inner, ClockInner::Simulated(_))
    }
}

impl Default for Clock {
    /// The default clock is simulated, matching the deterministic test and
    /// benchmark setup used throughout this workspace.
    fn default() -> Self {
        Clock::simulated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_clock_starts_at_zero_and_advances() {
        let c = Clock::simulated();
        assert_eq!(c.now_ms(), 0);
        assert_eq!(c.advance_ms(5), 5);
        assert_eq!(c.now_ms(), 5);
        c.advance_ms(10);
        assert_eq!(c.now_ms(), 15);
    }

    #[test]
    fn clones_share_the_time_source() {
        let a = Clock::simulated();
        let b = a.clone();
        a.advance_ms(100);
        assert_eq!(b.now_ms(), 100);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = Clock::system();
        let t0 = c.now_ms();
        let t1 = c.now_ms();
        assert!(t1 >= t0);
        assert!(!c.is_simulated());
    }

    #[test]
    #[should_panic(expected = "cannot advance a system clock")]
    fn advancing_system_clock_panics() {
        Clock::system().advance_ms(1);
    }

    #[test]
    fn default_is_simulated() {
        assert!(Clock::default().is_simulated());
    }
}
