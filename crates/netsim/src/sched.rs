//! Deterministic periodic/one-shot task scheduling over the virtual
//! clock.
//!
//! Every lifecycle beat in the Drivolution reproduction — mirror
//! heartbeats, lease auto-renewal, upgrade polling — is periodic work
//! that used to be hand-cranked by whoever owned the component. The
//! [`Scheduler`] removes that boilerplate: components register tasks
//! once ([`Scheduler::every`] / [`Scheduler::once`]) and a single
//! [`Scheduler::run_until`] pump fires them in deterministic virtual
//! time, interleaved with the message latency their own network
//! exchanges charge to the shared [`Clock`].
//!
//! Determinism: tasks fire in `(due_ms, registration order)` order, and
//! per-task jitter comes from a splitmix generator seeded from the
//! scheduler seed and the task id — the same seed and the same
//! registration sequence produce the same schedule, tick for tick.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use netsim::{Clock, Scheduler, TaskControl};
//!
//! let clock = Clock::simulated();
//! let sched = Scheduler::new(clock.clone());
//! let beats = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
//! let b = beats.clone();
//! sched.every(
//!     Duration::from_secs(5),
//!     Duration::ZERO,
//!     "heartbeat",
//!     move || {
//!         b.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
//!         Ok(TaskControl::Continue)
//!     },
//! );
//! sched.run_until(60_000);
//! assert_eq!(beats.load(std::sync::atomic::Ordering::SeqCst), 12);
//! assert_eq!(clock.now_ms(), 60_000);
//! ```

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Clock;

/// What a task tells the scheduler after a successful run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskControl {
    /// Keep the task registered (periodic tasks re-arm for the next
    /// interval; one-shot tasks go dormant until rescheduled).
    Continue,
    /// Retire the task: it is done and must not fire again (an
    /// announce-retry that finally got through, for example).
    Done,
}

/// Result of one task execution. `Err` keeps the task registered and
/// bumps its error counters — transient failures (an unreachable
/// primary, a partitioned heartbeat) are expected lifecycle events, not
/// reasons to stop trying.
pub type TaskResult = Result<TaskControl, String>;

/// Counters maintained per task across its whole lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskStats {
    /// Completed executions (successful or not).
    pub runs: u64,
    /// Executions that returned `Err`.
    pub errors: u64,
    /// Errors since the last successful run (reset on success).
    pub consecutive_errors: u64,
}

/// Converts a [`Duration`] to virtual milliseconds, the clock's unit.
fn ms(d: Duration) -> u64 {
    d.as_millis() as u64
}

#[derive(Clone, Copy, Debug)]
enum Cadence {
    Periodic { interval_ms: u64, jitter_ms: u64 },
    Once,
}

type TaskFn = Arc<dyn Fn() -> TaskResult + Send + Sync>;

struct Task {
    name: String,
    cadence: Cadence,
    f: TaskFn,
    rng: StdRng,
    /// Virtual time of the next firing; `None` while dormant, paused,
    /// cancelled, or mid-run.
    due_ms: Option<u64>,
    paused: bool,
    /// Delay left on a paused one-shot, restored on resume; `None` when
    /// the one-shot was dormant at pause time (it stays dormant).
    paused_remaining: Option<u64>,
    /// Set when the task (or anyone else) rescheduled it during its own
    /// run; the pump then leaves the explicit schedule alone.
    rearmed: bool,
    stats: TaskStats,
    last_error: Option<String>,
}

impl Task {
    fn jitter(&mut self) -> u64 {
        match self.cadence {
            Cadence::Periodic { jitter_ms, .. } if jitter_ms > 0 => {
                self.rng.gen_range(0..jitter_ms + 1)
            }
            _ => 0,
        }
    }
}

#[derive(Default)]
struct SchedState {
    tasks: HashMap<u64, Task>,
    /// Firing queue ordered by `(due_ms, task id)`: time first, then
    /// registration order as the deterministic tiebreak.
    queue: BTreeSet<(u64, u64)>,
    next_id: u64,
    seed: u64,
}

impl SchedState {
    fn enqueue(&mut self, id: u64, due: u64) {
        if let Some(t) = self.tasks.get_mut(&id) {
            if let Some(old) = t.due_ms.take() {
                self.queue.remove(&(old, id));
            }
            t.due_ms = Some(due);
            self.queue.insert((due, id));
        }
    }

    fn dequeue(&mut self, id: u64) {
        if let Some(t) = self.tasks.get_mut(&id) {
            if let Some(old) = t.due_ms.take() {
                self.queue.remove(&(old, id));
            }
        }
    }
}

struct SchedInner {
    clock: Clock,
    state: Mutex<SchedState>,
}

/// Deterministic task scheduler over a shared virtual [`Clock`].
///
/// Cloning is cheap; all clones share the task table. Each
/// [`netsim::Network`](crate::Network) owns one on its clock
/// ([`crate::Network::scheduler`]), so timers and message delivery
/// advance the same timeline.
#[derive(Clone)]
pub struct Scheduler {
    inner: Arc<SchedInner>,
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("Scheduler")
            .field("tasks", &st.tasks.len())
            .field("scheduled", &st.queue.len())
            .finish()
    }
}

impl Scheduler {
    /// Creates an empty scheduler on `clock`.
    pub fn new(clock: Clock) -> Self {
        Scheduler {
            inner: Arc::new(SchedInner {
                clock,
                state: Mutex::new(SchedState {
                    seed: 0x5ced_u64,
                    ..SchedState::default()
                }),
            }),
        }
    }

    /// The clock this scheduler fires against.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// Reseeds the jitter source. Affects tasks registered afterwards;
    /// the same seed and registration sequence reproduce the same
    /// schedule exactly.
    pub fn reseed(&self, seed: u64) {
        self.inner.state.lock().seed = seed;
    }

    /// Creates and (unless dormant) schedules a task, all under one
    /// critical section so a concurrent pump can never observe a
    /// half-registered entry. The first periodic due time samples the
    /// task's own jitter generator, so schedules replay under the same
    /// seed.
    fn register(&self, name: String, cadence: Cadence, due: Option<u64>, f: TaskFn) -> TaskHandle {
        let mut st = self.inner.state.lock();
        let id = st.next_id;
        st.next_id += 1;
        let rng = StdRng::seed_from_u64(st.seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut task = Task {
            name,
            cadence,
            f,
            rng,
            due_ms: None,
            paused: false,
            paused_remaining: None,
            rearmed: false,
            stats: TaskStats::default(),
            last_error: None,
        };
        let due = match cadence {
            Cadence::Periodic { interval_ms, .. } => {
                Some(self.inner.clock.now_ms() + interval_ms + task.jitter())
            }
            Cadence::Once => due,
        };
        st.tasks.insert(id, task);
        if let Some(due) = due {
            st.enqueue(id, due);
        }
        TaskHandle {
            id,
            inner: self.inner.clone(),
        }
    }

    /// Registers a periodic task firing every `interval` (plus a
    /// uniformly sampled `0..=jitter` per firing). The first firing is
    /// one interval (plus jitter) from now.
    pub fn every(
        &self,
        interval: Duration,
        jitter: Duration,
        name: impl Into<String>,
        f: impl Fn() -> TaskResult + Send + Sync + 'static,
    ) -> TaskHandle {
        self.register(
            name.into(),
            Cadence::Periodic {
                interval_ms: ms(interval).max(1),
                jitter_ms: ms(jitter),
            },
            None,
            Arc::new(f),
        )
    }

    /// Registers a one-shot task firing `delay` from now. After firing
    /// it goes dormant and can be re-armed with
    /// [`TaskHandle::reschedule_at`].
    pub fn once(
        &self,
        delay: Duration,
        name: impl Into<String>,
        f: impl Fn() -> TaskResult + Send + Sync + 'static,
    ) -> TaskHandle {
        self.once_at(self.inner.clock.now_ms() + ms(delay), name, f)
    }

    /// Registers a one-shot task firing at absolute virtual time
    /// `due_ms` (clamped to now if already past).
    pub fn once_at(
        &self,
        due_ms: u64,
        name: impl Into<String>,
        f: impl Fn() -> TaskResult + Send + Sync + 'static,
    ) -> TaskHandle {
        let due = due_ms.max(self.inner.clock.now_ms());
        self.register(name.into(), Cadence::Once, Some(due), Arc::new(f))
    }

    /// Registers a dormant one-shot task that never fires until armed
    /// with [`TaskHandle::reschedule_at`] — the shape of a lease
    /// auto-renewal timer that tracks a moving expiry.
    pub fn dormant(
        &self,
        name: impl Into<String>,
        f: impl Fn() -> TaskResult + Send + Sync + 'static,
    ) -> TaskHandle {
        self.register(name.into(), Cadence::Once, None, Arc::new(f))
    }

    /// Virtual time of the next scheduled firing, if any task is armed.
    pub fn next_due_ms(&self) -> Option<u64> {
        self.inner
            .state
            .lock()
            .queue
            .iter()
            .next()
            .map(|&(due, _)| due)
    }

    /// Number of live tasks (scheduled, dormant, or paused). Cancelled
    /// and retired tasks are removed from the table; their handles then
    /// read default stats.
    pub fn task_count(&self) -> usize {
        self.inner.state.lock().tasks.len()
    }

    /// Fires every task due at or before the current clock (catching up
    /// tasks whose due time was jumped over by a manual
    /// [`Clock::advance_ms`]). Returns the number of executions.
    pub fn run_due(&self) -> u64 {
        self.run_until(self.inner.clock.now_ms())
    }

    /// The pump: advances the clock from firing to firing, running every
    /// task due at or before `target_ms`, then leaves the clock at
    /// `target_ms` (or later, when a task's own message exchanges
    /// charged latency past it). Tasks fire in `(due, registration)`
    /// order; work a task triggers (for example a renewal that charges
    /// link latency to the clock) is observed before the next firing is
    /// chosen, so timers and messages interleave deterministically.
    /// Returns the number of task executions.
    ///
    /// # Panics
    ///
    /// Panics on a system clock: real time cannot be steered.
    pub fn run_until(&self, target_ms: u64) -> u64 {
        let mut fired = 0u64;
        loop {
            let next = {
                let mut st = self.inner.state.lock();
                match st.queue.iter().next().copied() {
                    Some((due, id)) if due <= target_ms => {
                        st.queue.remove(&(due, id));
                        let task = st.tasks.get_mut(&id).expect("queued task exists");
                        task.due_ms = None;
                        task.rearmed = false;
                        Some((due, id, task.f.clone()))
                    }
                    _ => None,
                }
            };
            let Some((due, id, f)) = next else { break };
            let now = self.inner.clock.now_ms();
            if due > now {
                self.inner.clock.advance_ms(due - now);
            }
            let result = f();
            fired += 1;
            self.finish_run(id, due, result);
        }
        let now = self.inner.clock.now_ms();
        if now < target_ms {
            self.inner.clock.advance_ms(target_ms - now);
        }
        fired
    }

    /// Post-run bookkeeping: counters, then re-arming per cadence unless
    /// the task retired itself, was cancelled mid-run, or explicitly
    /// rescheduled itself.
    fn finish_run(&self, id: u64, fire_ms: u64, result: TaskResult) {
        let now = self.inner.clock.now_ms();
        let mut st = self.inner.state.lock();
        let Some(task) = st.tasks.get_mut(&id) else {
            return;
        };
        task.stats.runs += 1;
        let retire = match result {
            Ok(TaskControl::Continue) => {
                task.stats.consecutive_errors = 0;
                false
            }
            Ok(TaskControl::Done) => true,
            Err(e) => {
                task.stats.errors += 1;
                task.stats.consecutive_errors += 1;
                task.last_error = Some(e);
                false
            }
        };
        if retire {
            // Retired tasks leave the table entirely (handles read
            // default stats afterwards); keeping them would grow the
            // task map for the scheduler's whole lifetime.
            st.dequeue(id);
            st.tasks.remove(&id);
            return;
        }
        if task.rearmed || task.paused {
            return;
        }
        if let Cadence::Periodic { interval_ms, .. } = task.cadence {
            // Fixed-rate from the scheduled firing time, so beats land on
            // exact interval multiples even when the run itself charged
            // message latency to the clock. Beats jumped over by a manual
            // clock advance are skipped, not replayed.
            let mut next = fire_ms + interval_ms + task.jitter();
            if next <= now {
                let behind = now - fire_ms;
                next = fire_ms + (behind / interval_ms + 1) * interval_ms;
            }
            st.enqueue(id, next);
        }
        // One-shot tasks stay dormant until rescheduled.
    }
}

/// Handle to a registered task: pause/resume, cancel, reschedule, and
/// counters. Cloning shares the underlying task.
#[derive(Clone)]
pub struct TaskHandle {
    id: u64,
    inner: Arc<SchedInner>,
}

impl fmt::Debug for TaskHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskHandle")
            .field("id", &self.id)
            .field("name", &self.name())
            .field("next_due_ms", &self.next_due_ms())
            .finish()
    }
}

impl TaskHandle {
    /// The task's registered name (empty if the task was dropped).
    pub fn name(&self) -> String {
        self.inner
            .state
            .lock()
            .tasks
            .get(&self.id)
            .map(|t| t.name.clone())
            .unwrap_or_default()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TaskStats {
        self.inner
            .state
            .lock()
            .tasks
            .get(&self.id)
            .map(|t| t.stats)
            .unwrap_or_default()
    }

    /// Message of the most recent failed run.
    pub fn last_error(&self) -> Option<String> {
        self.inner
            .state
            .lock()
            .tasks
            .get(&self.id)
            .and_then(|t| t.last_error.clone())
    }

    /// Virtual time of the next firing (`None` while dormant, paused, or
    /// cancelled).
    pub fn next_due_ms(&self) -> Option<u64> {
        self.inner
            .state
            .lock()
            .tasks
            .get(&self.id)
            .and_then(|t| t.due_ms)
    }

    /// Whether the task will fire again without intervention.
    pub fn is_scheduled(&self) -> bool {
        self.next_due_ms().is_some()
    }

    /// Whether the task was cancelled or retired itself (its entry is
    /// removed from the task table).
    pub fn is_cancelled(&self) -> bool {
        !self.inner.state.lock().tasks.contains_key(&self.id)
    }

    /// Takes the task off the schedule. A paused armed one-shot
    /// remembers its remaining delay (a dormant one stays dormant); a
    /// paused periodic task resumes a full interval after
    /// [`resume`](Self::resume).
    pub fn pause(&self) {
        let now = self.inner.clock.now_ms();
        let mut st = self.inner.state.lock();
        match st.tasks.get_mut(&self.id) {
            Some(t) if !t.paused => {
                t.paused = true;
                t.paused_remaining = t.due_ms.map(|d| d.saturating_sub(now));
            }
            _ => return,
        }
        st.dequeue(self.id);
    }

    /// Puts a paused task back on the schedule. A one-shot that was
    /// dormant when paused stays dormant: resuming must not invent a
    /// firing that was never armed.
    pub fn resume(&self) {
        let now = self.inner.clock.now_ms();
        let mut st = self.inner.state.lock();
        let Some(t) = st.tasks.get_mut(&self.id) else {
            return;
        };
        if !t.paused {
            return;
        }
        t.paused = false;
        let due = match t.cadence {
            Cadence::Periodic { interval_ms, .. } => {
                let j = t.jitter();
                Some(now + interval_ms + j)
            }
            Cadence::Once => t.paused_remaining.take().map(|r| now + r),
        };
        if let Some(due) = due {
            st.enqueue(self.id, due);
        }
    }

    /// Permanently removes the task from schedule and table; the handle
    /// reads default stats afterwards.
    pub fn cancel(&self) {
        let mut st = self.inner.state.lock();
        st.dequeue(self.id);
        st.tasks.remove(&self.id);
    }

    /// Changes a periodic task's interval (and jitter), re-arming it one
    /// new interval from now. No-op for one-shot or cancelled tasks.
    pub fn reschedule(&self, interval: Duration, jitter: Duration) {
        let now = self.inner.clock.now_ms();
        let mut st = self.inner.state.lock();
        let Some(t) = st.tasks.get_mut(&self.id) else {
            return;
        };
        if let Cadence::Periodic { .. } = t.cadence {
            t.cadence = Cadence::Periodic {
                interval_ms: ms(interval).max(1),
                jitter_ms: ms(jitter),
            };
            t.rearmed = true;
            if t.paused {
                return;
            }
            let j = t.jitter();
            let interval_ms = ms(interval).max(1);
            st.enqueue(self.id, now + interval_ms + j);
        }
    }

    /// (Re-)arms the task to fire at absolute virtual time `due_ms`
    /// (clamped to now if already past), clearing a pause. This is how a
    /// lease auto-renewal timer tracks a moving expiry. No-op on
    /// cancelled tasks.
    pub fn reschedule_at(&self, due_ms: u64) {
        let now = self.inner.clock.now_ms();
        let mut st = self.inner.state.lock();
        let Some(t) = st.tasks.get_mut(&self.id) else {
            return;
        };
        t.paused = false;
        t.rearmed = true;
        st.enqueue(self.id, due_ms.max(now));
    }

    /// Like [`reschedule_at`](Self::reschedule_at), but spreads the
    /// firing uniformly inside `[due_ms, due_ms + spread_ms)` using the
    /// task's own seed-reproducible jitter generator — the same source
    /// periodic jitter draws from, so replays under one scheduler seed
    /// reproduce the spread exactly. A fleet of one-shot timers all due
    /// at structurally similar instants (every lease's renew-due point,
    /// say) de-synchronizes into the window instead of stampeding one
    /// tick. `spread_ms == 0` degrades to the exact re-arm.
    pub fn reschedule_at_jittered(&self, due_ms: u64, spread_ms: u64) {
        let now = self.inner.clock.now_ms();
        let mut st = self.inner.state.lock();
        let Some(t) = st.tasks.get_mut(&self.id) else {
            return;
        };
        let jitter = if spread_ms > 0 {
            t.rng.gen_range(0..spread_ms)
        } else {
            0
        };
        t.paused = false;
        t.rearmed = true;
        st.enqueue(self.id, due_ms.saturating_add(jitter).max(now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn rig() -> (Scheduler, Clock) {
        let clock = Clock::simulated();
        (Scheduler::new(clock.clone()), clock)
    }

    fn counter_task(hits: &Arc<AtomicU64>) -> impl Fn() -> TaskResult + Send + Sync {
        let hits = hits.clone();
        move || {
            hits.fetch_add(1, Ordering::SeqCst);
            Ok(TaskControl::Continue)
        }
    }

    #[test]
    fn periodic_task_fires_on_exact_ticks() {
        let (sched, clock) = rig();
        let times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let t = times.clone();
        let c = clock.clone();
        sched.every(
            Duration::from_millis(100),
            Duration::ZERO,
            "tick",
            move || {
                t.lock().push(c.now_ms());
                Ok(TaskControl::Continue)
            },
        );
        sched.run_until(350);
        assert_eq!(*times.lock(), vec![100, 200, 300]);
        assert_eq!(clock.now_ms(), 350);
    }

    #[test]
    fn once_fires_once_and_goes_dormant() {
        let (sched, clock) = rig();
        let hits = Arc::new(AtomicU64::new(0));
        let h = sched.once(Duration::from_millis(50), "boom", counter_task(&hits));
        sched.run_until(1_000);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(!h.is_scheduled());
        assert!(!h.is_cancelled());
        // Re-arming fires it again.
        h.reschedule_at(clock.now_ms() + 10);
        sched.run_until(2_000);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn tasks_interleave_in_due_then_registration_order() {
        let (sched, _clock) = rig();
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let l1 = log.clone();
        sched.every(Duration::from_millis(30), Duration::ZERO, "a", move || {
            l1.lock().push("a");
            Ok(TaskControl::Continue)
        });
        let l2 = log.clone();
        sched.every(Duration::from_millis(20), Duration::ZERO, "b", move || {
            l2.lock().push("b");
            Ok(TaskControl::Continue)
        });
        let l3 = log.clone();
        sched.once(Duration::from_millis(30), "c", move || {
            l3.lock().push("c");
            Ok(TaskControl::Continue)
        });
        sched.run_until(60);
        // 20:b, 30:a (registered before c), 30:c, 40:b, 60:a, 60:b.
        assert_eq!(*log.lock(), vec!["b", "a", "c", "b", "a", "b"]);
    }

    #[test]
    fn error_counters_track_failures_and_reset_on_success() {
        let (sched, _clock) = rig();
        let fail_until = Arc::new(AtomicU64::new(3));
        let f = fail_until.clone();
        let h = sched.every(
            Duration::from_millis(10),
            Duration::ZERO,
            "flaky",
            move || {
                if f.load(Ordering::SeqCst) > 0 {
                    f.fetch_sub(1, Ordering::SeqCst);
                    Err("down".into())
                } else {
                    Ok(TaskControl::Continue)
                }
            },
        );
        sched.run_until(35);
        let st = h.stats();
        assert_eq!(st.runs, 3);
        assert_eq!(st.errors, 3);
        assert_eq!(st.consecutive_errors, 3);
        assert_eq!(h.last_error().as_deref(), Some("down"));
        sched.run_until(45);
        let st = h.stats();
        assert_eq!(st.runs, 4);
        assert_eq!(st.errors, 3);
        assert_eq!(st.consecutive_errors, 0, "success resets the streak");
    }

    #[test]
    fn done_retires_the_task() {
        let (sched, _clock) = rig();
        let hits = Arc::new(AtomicU64::new(0));
        let h = {
            let hits = hits.clone();
            sched.every(
                Duration::from_millis(10),
                Duration::ZERO,
                "retry",
                move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                    if hits.load(Ordering::SeqCst) >= 2 {
                        Ok(TaskControl::Done)
                    } else {
                        Ok(TaskControl::Continue)
                    }
                },
            )
        };
        sched.run_until(1_000);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert!(h.is_cancelled());
        // A retired task cannot be re-armed.
        h.reschedule_at(2_000);
        sched.run_until(3_000);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn pause_and_resume_control_the_schedule() {
        let (sched, clock) = rig();
        let hits = Arc::new(AtomicU64::new(0));
        let h = sched.every(
            Duration::from_millis(10),
            Duration::ZERO,
            "t",
            counter_task(&hits),
        );
        sched.run_until(30);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        h.pause();
        assert!(!h.is_scheduled());
        sched.run_until(100);
        assert_eq!(hits.load(Ordering::SeqCst), 3, "paused tasks stay silent");
        h.resume();
        sched.run_until(115);
        assert_eq!(
            hits.load(Ordering::SeqCst),
            4,
            "resumed a full interval later"
        );
        assert_eq!(clock.now_ms(), 115);
    }

    #[test]
    fn cancel_is_permanent() {
        let (sched, _clock) = rig();
        let hits = Arc::new(AtomicU64::new(0));
        let h = sched.every(
            Duration::from_millis(10),
            Duration::ZERO,
            "t",
            counter_task(&hits),
        );
        h.cancel();
        sched.run_until(100);
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        assert!(h.is_cancelled());
        h.resume();
        h.reschedule_at(200);
        sched.run_until(300);
        assert_eq!(hits.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn cancelled_and_retired_tasks_leave_the_table() {
        let (sched, _clock) = rig();
        let hits = Arc::new(AtomicU64::new(0));
        let a = sched.every(
            Duration::from_millis(10),
            Duration::ZERO,
            "a",
            counter_task(&hits),
        );
        let b = sched.every(Duration::from_millis(10), Duration::ZERO, "b", || {
            Ok(TaskControl::Done)
        });
        let c = sched.dormant("c", counter_task(&hits));
        assert_eq!(sched.task_count(), 3);
        sched.run_until(15); // b retires itself on its first firing
        assert_eq!(sched.task_count(), 2);
        assert!(b.is_cancelled());
        a.cancel();
        c.cancel();
        assert_eq!(sched.task_count(), 0, "no dead entries accumulate");
    }

    #[test]
    fn resuming_a_paused_dormant_task_keeps_it_dormant() {
        let (sched, _clock) = rig();
        let hits = Arc::new(AtomicU64::new(0));
        let h = sched.dormant("lease", counter_task(&hits));
        // Pause while dormant (a lifecycle pause with no lease active),
        // then resume: nothing may fire until reschedule_at arms it.
        h.pause();
        h.resume();
        assert!(!h.is_scheduled());
        sched.run_until(10_000);
        assert_eq!(hits.load(Ordering::SeqCst), 0, "resume invented a firing");
        h.reschedule_at(11_000);
        sched.run_until(12_000);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn manual_clock_jumps_skip_missed_beats_not_replay_them() {
        let (sched, clock) = rig();
        let hits = Arc::new(AtomicU64::new(0));
        sched.every(
            Duration::from_millis(10),
            Duration::ZERO,
            "t",
            counter_task(&hits),
        );
        // Jump far past many due times without pumping.
        clock.advance_ms(1_000);
        sched.run_due();
        assert_eq!(
            hits.load(Ordering::SeqCst),
            1,
            "one catch-up beat, not a hundred replays"
        );
        sched.run_until(clock.now_ms() + 20);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn jittered_schedule_is_deterministic_under_a_seed() {
        let record = |seed: u64| -> Vec<u64> {
            let clock = Clock::simulated();
            let sched = Scheduler::new(clock.clone());
            sched.reseed(seed);
            let times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            for i in 0..3 {
                let t = times.clone();
                let c = clock.clone();
                sched.every(
                    Duration::from_millis(50),
                    Duration::from_millis(20),
                    format!("t{i}"),
                    move || {
                        t.lock().push(c.now_ms());
                        Ok(TaskControl::Continue)
                    },
                );
            }
            sched.run_until(1_000);
            let v = times.lock().clone();
            v
        };
        let a = record(42);
        let b = record(42);
        assert_eq!(a, b, "same seed must reproduce the schedule");
        let c = record(43);
        assert_ne!(a, c, "different seeds must actually jitter differently");
        // Jitter stays within bounds: consecutive firings of one task
        // are 50..=90ms apart (interval..interval+2*jitter given the
        // fixed-rate re-arm).
        assert!(a.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn jittered_one_shot_rearm_spreads_inside_the_window_reproducibly() {
        let armed = |seed: u64| -> Vec<u64> {
            let clock = Clock::simulated();
            let sched = Scheduler::new(clock.clone());
            sched.reseed(seed);
            let mut dues = Vec::new();
            for i in 0..8 {
                let h = sched.dormant(format!("lease{i}"), || Ok(TaskControl::Continue));
                h.reschedule_at_jittered(1_000, 500);
                dues.push(h.next_due_ms().unwrap());
            }
            dues
        };
        let a = armed(7);
        assert_eq!(a, armed(7), "same seed must reproduce the spread");
        assert_ne!(a, armed(8), "different seeds must spread differently");
        assert!(a.iter().all(|&d| (1_000..1_500).contains(&d)));
        assert!(
            a.windows(2).any(|w| w[0] != w[1]),
            "spread collapsed to one tick: {a:?}"
        );
        // Zero spread is the exact re-arm.
        let clock = Clock::simulated();
        let sched = Scheduler::new(clock);
        let h = sched.dormant("exact", || Ok(TaskControl::Continue));
        h.reschedule_at_jittered(2_000, 0);
        assert_eq!(h.next_due_ms(), Some(2_000));
    }

    #[test]
    fn reschedule_changes_a_periodic_interval() {
        let (sched, _clock) = rig();
        let hits = Arc::new(AtomicU64::new(0));
        let h = sched.every(
            Duration::from_millis(100),
            Duration::ZERO,
            "t",
            counter_task(&hits),
        );
        sched.run_until(200);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        h.reschedule(Duration::from_millis(10), Duration::ZERO);
        sched.run_until(250);
        assert_eq!(hits.load(Ordering::SeqCst), 2 + 5);
    }

    #[test]
    fn task_may_reschedule_itself_mid_run() {
        // A one-shot lease timer that re-arms itself at the next expiry.
        let clock = Clock::simulated();
        let sched = Scheduler::new(clock.clone());
        let times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let handle: Arc<Mutex<Option<TaskHandle>>> = Arc::new(Mutex::new(None));
        let t = times.clone();
        let hh = handle.clone();
        let c = clock.clone();
        let h = sched.once(Duration::from_millis(100), "lease", move || {
            let now = c.now_ms();
            t.lock().push(now);
            if now < 300 {
                if let Some(h) = hh.lock().as_ref() {
                    h.reschedule_at(now + 100);
                }
            }
            Ok(TaskControl::Continue)
        });
        *handle.lock() = Some(h);
        sched.run_until(1_000);
        assert_eq!(*times.lock(), vec![100, 200, 300]);
    }

    #[test]
    fn run_until_interleaves_clock_charges_from_tasks() {
        // A task that itself advances the clock (as a network exchange
        // charging link latency would); later firings shift accordingly
        // but stay on the fixed-rate grid.
        let (sched, clock) = rig();
        let times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let t = times.clone();
        let c = clock.clone();
        sched.every(
            Duration::from_millis(100),
            Duration::ZERO,
            "slow",
            move || {
                t.lock().push(c.now_ms());
                c.advance_ms(30); // simulated request latency
                Ok(TaskControl::Continue)
            },
        );
        sched.run_until(400);
        assert_eq!(*times.lock(), vec![100, 200, 300, 400]);
        assert_eq!(clock.now_ms(), 430, "final run overshot the target");
    }

    #[test]
    fn ten_thousand_tasks_pump_in_subquadratic_time() {
        // The due-queue is a BTreeSet keyed by (due_ms, task_id): every
        // pop and re-arm is O(log n). Pin that with a 10k-task fleet —
        // a control plane running one lifecycle task per client at
        // rollout scale. Each task fires on its own period so the queue
        // stays fully populated and due times interleave rather than
        // batching into one tick.
        const TASKS: u64 = 10_000;
        const HORIZON_MS: u64 = 10_000;
        let (sched, clock) = rig();
        let fired = Arc::new(AtomicU64::new(0));
        let mut expected = 0u64;
        for i in 0..TASKS {
            // Periods 1000..=1999 ms: ~10k distinct due times per
            // second of virtual time, 5-10 firings per task.
            let period = 1_000 + (i % 1_000);
            expected += HORIZON_MS / period;
            sched.every(
                Duration::from_millis(period),
                Duration::ZERO,
                format!("client-{i}"),
                counter_task(&fired),
            );
        }
        assert_eq!(sched.task_count(), TASKS as usize);

        let started = std::time::Instant::now();
        sched.run_until(HORIZON_MS);
        let elapsed = started.elapsed();

        assert_eq!(
            fired.load(Ordering::SeqCst),
            expected,
            "every periodic task fires exactly floor(horizon/period) times"
        );
        assert_eq!(clock.now_ms(), HORIZON_MS);
        assert_eq!(
            sched.task_count(),
            TASKS as usize,
            "periodic tasks stay registered after the pump"
        );
        // ~70k firings over a 10k-deep queue finish comfortably within
        // seconds when pops are O(log n); a linear-scan queue would do
        // ~7e8 comparisons and blow far past this generous bound even
        // on slow CI hardware.
        assert!(
            elapsed < Duration::from_secs(20),
            "10k-task pump took {elapsed:?}; scheduler has regressed toward quadratic behavior"
        );
    }
}
