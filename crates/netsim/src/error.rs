//! Error type for simulated network operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulated network.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// No service is bound at the destination address.
    Unreachable(String),
    /// The destination host exists but the service refused the request.
    Refused(String),
    /// The message was lost (fault injection) or the peer never answered.
    Timeout(String),
    /// The destination is separated from the source by a network partition.
    Partitioned(String),
    /// A pipe or connection was closed by the peer.
    Closed(String),
    /// The address could not be parsed.
    BadAddress(String),
    /// The address is already bound by another service.
    AddrInUse(String),
    /// The service does not accept dedicated pipes.
    PipesUnsupported(String),
    /// Application-level protocol violation reported by a service.
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable(a) => write!(f, "no service bound at {a}"),
            NetError::Refused(m) => write!(f, "connection refused: {m}"),
            NetError::Timeout(m) => write!(f, "request timed out: {m}"),
            NetError::Partitioned(m) => write!(f, "network partition between {m}"),
            NetError::Closed(m) => write!(f, "connection closed: {m}"),
            NetError::BadAddress(a) => write!(f, "invalid address syntax: {a:?}"),
            NetError::AddrInUse(a) => write!(f, "address already in use: {a}"),
            NetError::PipesUnsupported(a) => {
                write!(f, "service at {a} does not accept dedicated pipes")
            }
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            NetError::Unreachable("a:1".into()),
            NetError::Refused("x".into()),
            NetError::Timeout("x".into()),
            NetError::Partitioned("a <-> b".into()),
            NetError::Closed("x".into()),
            NetError::BadAddress("x".into()),
            NetError::AddrInUse("a:1".into()),
            NetError::PipesUnsupported("a:1".into()),
            NetError::Protocol("x".into()),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
