//! Traffic accounting.
//!
//! The paper's lease-time tradeoff (§3.2: "Shorter lease times allow faster
//! reaction to upgrades but higher traffic to the Drivolution Server") is
//! reproduced by counting real protocol messages and bytes per destination
//! address. The `lease_tradeoff` benchmark reads these counters. Failures
//! are recorded as a *typed* ledger (dropped / unreachable / partitioned /
//! refused, plus corrupted serves) so chaos runs can assert on failure
//! kinds, not totals.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::Addr;

/// The kind of one recorded request failure (or byzantine corruption).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The message was lost in flight (global or per-link loss).
    Dropped,
    /// The destination host was down or nothing was bound there.
    Unreachable,
    /// A host or zone partition separated the endpoints.
    Partitioned,
    /// The service handled the request and refused it (application
    /// error).
    Refused,
    /// The response was delivered but its payload was corrupted in
    /// flight (byzantine host). Counted separately from `failures`: the
    /// network delivered it; the *content* was wrong.
    Corrupted,
}

/// Per-destination traffic counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AddrStats {
    /// Number of request messages delivered to this address.
    pub requests: u64,
    /// Total request payload bytes delivered to this address.
    pub bytes_in: u64,
    /// Total response payload bytes produced by this address.
    pub bytes_out: u64,
    /// Number of requests that failed, any kind except `Corrupted` (the
    /// sum of `dropped + unreachable + partitioned + refused`).
    pub failures: u64,
    /// Failures where the message was lost in flight.
    pub dropped: u64,
    /// Failures where the host was down or nothing was bound.
    pub unreachable: u64,
    /// Failures where a partition separated the endpoints.
    pub partitioned: u64,
    /// Failures where the service refused the request.
    pub refused: u64,
    /// Responses this address served that were corrupted in flight
    /// (byzantine fault injection). Not counted in `failures` — the
    /// exchange completed; the bytes were wrong.
    pub corrupted: u64,
    /// Logical payload bytes that did *not* travel to this address because
    /// the requester reused content-addressed local data (depot
    /// revalidations and chunk deltas). Reported by upper layers via
    /// [`NetStats::record_saved`].
    pub bytes_saved: u64,
}

/// Shared traffic statistics for a [`crate::Network`].
#[derive(Debug, Default)]
pub struct NetStats {
    inner: Mutex<BTreeMap<Addr, AddrStats>>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
}

impl NetStats {
    /// Creates an empty stats collector.
    pub fn new() -> Self {
        NetStats::default()
    }

    pub(crate) fn record_request(&self, to: &Addr, req_bytes: usize) {
        let mut m = self.inner.lock();
        let e = m.entry(to.clone()).or_default();
        e.requests += 1;
        e.bytes_in += req_bytes as u64;
    }

    pub(crate) fn record_response(&self, to: &Addr, resp_bytes: usize) {
        let mut m = self.inner.lock();
        m.entry(to.clone()).or_default().bytes_out += resp_bytes as u64;
    }

    pub(crate) fn record_failure(&self, to: &Addr, kind: FailureKind) {
        let mut m = self.inner.lock();
        let e = m.entry(to.clone()).or_default();
        match kind {
            FailureKind::Dropped => {
                e.failures += 1;
                e.dropped += 1;
            }
            FailureKind::Unreachable => {
                e.failures += 1;
                e.unreachable += 1;
            }
            FailureKind::Partitioned => {
                e.failures += 1;
                e.partitioned += 1;
            }
            FailureKind::Refused => {
                e.failures += 1;
                e.refused += 1;
            }
            FailureKind::Corrupted => e.corrupted += 1,
        }
    }

    /// Records `saved` logical payload bytes that a depot-equipped client
    /// avoided transferring from `to` (cache revalidation or chunk-delta
    /// reuse). This is the distribution subsystem's bytes-saved ledger;
    /// the network core never calls it itself.
    pub fn record_saved(&self, to: &Addr, saved: usize) {
        let mut m = self.inner.lock();
        m.entry(to.clone()).or_default().bytes_saved += saved as u64;
    }

    /// Records a delta-plan cache hit on a server's memoized plan table.
    /// Like [`record_saved`](Self::record_saved), this is reported by the
    /// distribution subsystem, not the network core.
    pub fn record_plan_hit(&self) {
        self.plan_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a delta-plan cache miss (a plan computed from scratch).
    pub fn record_plan_miss(&self) {
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// (hits, misses) of server delta-plan memoization since creation
    /// (or the last [`reset`](Self::reset)).
    pub fn plan_counters(&self) -> (u64, u64) {
        (
            self.plan_hits.load(Ordering::Relaxed),
            self.plan_misses.load(Ordering::Relaxed),
        )
    }

    /// Counters for one destination address (zeroes if never contacted).
    pub fn for_addr(&self, addr: &Addr) -> AddrStats {
        self.inner.lock().get(addr).cloned().unwrap_or_default()
    }

    /// Sum of counters over all destination addresses.
    pub fn totals(&self) -> AddrStats {
        let m = self.inner.lock();
        let mut t = AddrStats::default();
        for s in m.values() {
            t.requests += s.requests;
            t.bytes_in += s.bytes_in;
            t.bytes_out += s.bytes_out;
            t.failures += s.failures;
            t.dropped += s.dropped;
            t.unreachable += s.unreachable;
            t.partitioned += s.partitioned;
            t.refused += s.refused;
            t.corrupted += s.corrupted;
            t.bytes_saved += s.bytes_saved;
        }
        t
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.inner.lock().clear();
        self.plan_hits.store(0, Ordering::Relaxed);
        self.plan_misses.store(0, Ordering::Relaxed);
    }

    /// Snapshot of every per-address counter, sorted by address.
    pub fn snapshot(&self) -> Vec<(Addr, AddrStats)> {
        let m = self.inner.lock();
        m.iter().map(|(a, s)| (a.clone(), s.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::new();
        let a = Addr::new("srv", 1);
        s.record_request(&a, 10);
        s.record_request(&a, 20);
        s.record_response(&a, 5);
        s.record_failure(&a, FailureKind::Refused);
        s.record_saved(&a, 7);
        let st = s.for_addr(&a);
        assert_eq!(st.requests, 2);
        assert_eq!(st.bytes_in, 30);
        assert_eq!(st.bytes_out, 5);
        assert_eq!(st.failures, 1);
        assert_eq!(st.refused, 1);
        assert_eq!(st.bytes_saved, 7);
    }

    #[test]
    fn failure_kinds_land_in_their_own_ledger_entries() {
        let s = NetStats::new();
        let a = Addr::new("srv", 1);
        s.record_failure(&a, FailureKind::Dropped);
        s.record_failure(&a, FailureKind::Dropped);
        s.record_failure(&a, FailureKind::Unreachable);
        s.record_failure(&a, FailureKind::Partitioned);
        s.record_failure(&a, FailureKind::Refused);
        s.record_failure(&a, FailureKind::Corrupted);
        let st = s.for_addr(&a);
        assert_eq!(st.dropped, 2);
        assert_eq!(st.unreachable, 1);
        assert_eq!(st.partitioned, 1);
        assert_eq!(st.refused, 1);
        assert_eq!(st.corrupted, 1);
        assert_eq!(
            st.failures,
            st.dropped + st.unreachable + st.partitioned + st.refused,
            "failures is the sum of the non-corruption kinds"
        );
    }

    #[test]
    fn totals_sum_across_addrs() {
        let s = NetStats::new();
        s.record_request(&Addr::new("a", 1), 1);
        s.record_request(&Addr::new("b", 2), 2);
        s.record_failure(&Addr::new("a", 1), FailureKind::Dropped);
        s.record_failure(&Addr::new("b", 2), FailureKind::Corrupted);
        let t = s.totals();
        assert_eq!(t.requests, 2);
        assert_eq!(t.bytes_in, 3);
        assert_eq!(t.dropped, 1);
        assert_eq!(t.corrupted, 1);
        assert_eq!(t.failures, 1);
    }

    #[test]
    fn reset_clears() {
        let s = NetStats::new();
        s.record_request(&Addr::new("a", 1), 1);
        s.record_plan_hit();
        s.record_plan_miss();
        assert_eq!(s.plan_counters(), (1, 1));
        s.reset();
        assert_eq!(s.totals(), AddrStats::default());
        assert_eq!(s.plan_counters(), (0, 0));
    }

    #[test]
    fn snapshot_is_sorted() {
        let s = NetStats::new();
        s.record_request(&Addr::new("b", 1), 1);
        s.record_request(&Addr::new("a", 1), 1);
        let snap = s.snapshot();
        assert_eq!(snap[0].0, Addr::new("a", 1));
        assert_eq!(snap[1].0, Addr::new("b", 1));
    }
}
