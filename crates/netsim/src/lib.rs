//! # netsim — deterministic in-process network simulator
//!
//! This crate is the communication substrate for the Drivolution
//! reproduction. It provides:
//!
//! * [`Network`] — a registry of [`Service`]s addressable by
//!   [`Addr`] (`host:port`), with synchronous request/response delivery,
//!   DHCP-style [`Network::broadcast`], and dedicated duplex
//!   [`Pipe`]s for push notifications;
//! * [`Clock`] — a virtual clock so lease experiments spanning simulated
//!   days run deterministically in microseconds;
//! * [`Scheduler`] — deterministic periodic/one-shot lifecycle tasks
//!   (mirror heartbeats, lease auto-renewal, upgrade polling) on that
//!   clock, pumped by [`Network::run_until`] so timers and message
//!   latency interleave on one timeline;
//! * [`FaultPlan`] — host crashes, host/zone partitions, global and
//!   per-link directional message loss, byzantine response corruption,
//!   and latency storms;
//! * [`ChaosSchedule`] — a declarative, seed-reproducible timeline of
//!   fault events installed as scheduler tasks;
//! * [`NetStats`] — per-destination message/byte accounting used by the
//!   paper's lease-time-versus-server-traffic tradeoff experiments.
//!
//! The simulator intentionally delivers requests on the caller's thread:
//! every test and benchmark built on it is deterministic, and "time" is
//! whatever the shared [`Clock`] says.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use netsim::{Addr, FnService, Network};
//!
//! let net = Network::new();
//! net.bind(Addr::new("db1", 5432), FnService::new(|_from, req| Ok(req)))?;
//!
//! let me = Addr::new("app", 1);
//! let reply = net.request(&me, &Addr::new("db1", 5432), Bytes::from_static(b"ping"))?;
//! assert_eq!(reply, Bytes::from_static(b"ping"));
//!
//! // Injected faults are visible immediately.
//! net.with_faults(|f| f.take_down("db1"));
//! assert!(net.request(&me, &Addr::new("db1", 5432), Bytes::new()).is_err());
//! # Ok::<(), netsim::NetError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod chaos;
mod clock;
pub mod codec;
mod error;
mod fault;
mod net;
mod pipe;
pub mod sched;
mod stats;
mod topology;

pub use addr::Addr;
pub use chaos::{ChaosAction, ChaosSchedule};
pub use clock::Clock;
pub use error::NetError;
pub use fault::FaultPlan;
pub use net::{FnService, Network, Service};
pub use pipe::Pipe;
pub use sched::{Scheduler, TaskControl, TaskHandle, TaskResult, TaskStats};
pub use stats::{AddrStats, FailureKind, NetStats};
pub use topology::Topology;
