//! Declarative, seed-reproducible fault timelines.
//!
//! A [`ChaosSchedule`] is a list of `(virtual time, fault action)`
//! events. [`ChaosSchedule::install`] registers each event as a one-shot
//! [`crate::Scheduler`] task, so the same [`crate::Network::run_until`]
//! pump that drives heartbeats and lease renewals also flips faults on
//! and off — faults, timers, and traffic interleave on one timeline and
//! replay identically under one seed. Windowed helpers
//! ([`ChaosSchedule::byzantine_mirror`], [`ChaosSchedule::zone_partition`],
//! [`ChaosSchedule::latency_storm`], …) emit the begin/end event pair.
//!
//! All randomness downstream of a schedule (drop draws, corruption
//! draws) comes from the network's reseedable RNG — a schedule itself is
//! pure data and contributes none of its own.
//!
//! # Examples
//!
//! ```
//! use netsim::{ChaosSchedule, Network};
//!
//! let net = Network::new();
//! let installed = ChaosSchedule::new()
//!     .byzantine_mirror("mirror-b", 0.25, 0, 60_000)
//!     .zone_partition("east", "west", 5_000, 20_000)
//!     .latency_storm(8, 10_000, 30_000)
//!     .install(&net);
//! assert_eq!(installed, 6); // three windows, begin + end each
//! net.run_until(60_000); // events fire as virtual time passes
//! ```

use crate::fault::FaultPlan;
use crate::net::Network;
use crate::sched::TaskControl;

/// One fault-plan mutation at a scheduled instant.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosAction {
    /// Begin corrupting a fraction of the responses `host` serves.
    CorruptServes {
        /// Byzantine host.
        host: String,
        /// Per-response corruption probability.
        prob: f64,
    },
    /// Stop corrupting `host`'s responses.
    HealServes {
        /// Formerly byzantine host.
        host: String,
    },
    /// Install a symmetric partition between two zones.
    PartitionZones {
        /// One zone.
        a: String,
        /// The other zone.
        b: String,
    },
    /// Heal the partition between two zones.
    HealZones {
        /// One zone.
        a: String,
        /// The other zone.
        b: String,
    },
    /// Install a symmetric partition between two hosts.
    PartitionHosts {
        /// One host.
        a: String,
        /// The other host.
        b: String,
    },
    /// Heal the partition between two hosts.
    HealHosts {
        /// One host.
        a: String,
        /// The other host.
        b: String,
    },
    /// Set the directional loss probability of one host link.
    LinkLoss {
        /// Sending host.
        from: String,
        /// Receiving host.
        to: String,
        /// Loss probability (zero clears).
        prob: f64,
    },
    /// Set the global per-message loss probability.
    DropProb {
        /// Loss probability (zero clears).
        prob: f64,
    },
    /// Multiply every topology link latency by `factor`.
    LatencyFactor {
        /// Multiplier (1 is calm).
        factor: u64,
    },
    /// Crash a host.
    TakeDown {
        /// Host to crash.
        host: String,
    },
    /// Restore a crashed host.
    Restore {
        /// Host to restore.
        host: String,
    },
}

impl ChaosAction {
    fn apply(&self, f: &mut FaultPlan) {
        match self {
            ChaosAction::CorruptServes { host, prob } => f.corrupt_serves(host, *prob),
            ChaosAction::HealServes { host } => f.corrupt_serves(host, 0.0),
            ChaosAction::PartitionZones { a, b } => f.partition_zones(a, b),
            ChaosAction::HealZones { a, b } => f.heal_zones(a, b),
            ChaosAction::PartitionHosts { a, b } => f.partition(a, b),
            ChaosAction::HealHosts { a, b } => f.heal(a, b),
            ChaosAction::LinkLoss { from, to, prob } => f.set_link_loss(from, to, *prob),
            ChaosAction::DropProb { prob } => f.set_drop_prob(*prob),
            ChaosAction::LatencyFactor { factor } => f.set_latency_factor(*factor),
            ChaosAction::TakeDown { host } => f.take_down(host),
            ChaosAction::Restore { host } => f.restore(host),
        }
    }

    fn label(&self) -> String {
        match self {
            ChaosAction::CorruptServes { host, .. } => format!("chaos-corrupt-{host}"),
            ChaosAction::HealServes { host } => format!("chaos-heal-serves-{host}"),
            ChaosAction::PartitionZones { a, b } => format!("chaos-partition-{a}-{b}"),
            ChaosAction::HealZones { a, b } => format!("chaos-heal-{a}-{b}"),
            ChaosAction::PartitionHosts { a, b } => format!("chaos-partition-{a}-{b}"),
            ChaosAction::HealHosts { a, b } => format!("chaos-heal-{a}-{b}"),
            ChaosAction::LinkLoss { from, to, .. } => format!("chaos-link-{from}-{to}"),
            ChaosAction::DropProb { .. } => "chaos-drop-prob".to_string(),
            ChaosAction::LatencyFactor { .. } => "chaos-latency-factor".to_string(),
            ChaosAction::TakeDown { host } => format!("chaos-down-{host}"),
            ChaosAction::Restore { host } => format!("chaos-restore-{host}"),
        }
    }
}

/// A declarative fault timeline: `(at_ms, action)` events installed as
/// one-shot scheduler tasks. Build with the windowed helpers (each emits
/// a begin/end pair) or [`ChaosSchedule::at`] for raw events, then
/// [`install`](ChaosSchedule::install) onto a network.
#[derive(Clone, Debug, Default)]
pub struct ChaosSchedule {
    events: Vec<(u64, ChaosAction)>,
}

impl ChaosSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        ChaosSchedule::default()
    }

    /// Appends a raw event at absolute virtual time `at_ms`.
    #[must_use]
    pub fn at(mut self, at_ms: u64, action: ChaosAction) -> Self {
        self.events.push((at_ms, action));
        self
    }

    /// `host` serves corrupted responses with probability `prob` during
    /// `[from_ms, until_ms)`.
    #[must_use]
    pub fn byzantine_mirror(self, host: &str, prob: f64, from_ms: u64, until_ms: u64) -> Self {
        self.at(
            from_ms,
            ChaosAction::CorruptServes {
                host: host.to_string(),
                prob,
            },
        )
        .at(
            until_ms,
            ChaosAction::HealServes {
                host: host.to_string(),
            },
        )
    }

    /// Zones `a` and `b` are partitioned during `[from_ms, until_ms)`,
    /// then heal.
    #[must_use]
    pub fn zone_partition(self, a: &str, b: &str, from_ms: u64, until_ms: u64) -> Self {
        self.at(
            from_ms,
            ChaosAction::PartitionZones {
                a: a.to_string(),
                b: b.to_string(),
            },
        )
        .at(
            until_ms,
            ChaosAction::HealZones {
                a: a.to_string(),
                b: b.to_string(),
            },
        )
    }

    /// Hosts `a` and `b` are partitioned during `[from_ms, until_ms)`,
    /// then heal.
    #[must_use]
    pub fn host_partition(self, a: &str, b: &str, from_ms: u64, until_ms: u64) -> Self {
        self.at(
            from_ms,
            ChaosAction::PartitionHosts {
                a: a.to_string(),
                b: b.to_string(),
            },
        )
        .at(
            until_ms,
            ChaosAction::HealHosts {
                a: a.to_string(),
                b: b.to_string(),
            },
        )
    }

    /// The directional `from → to` link drops messages with probability
    /// `prob` during `[from_ms, until_ms)` (asymmetric: the reverse
    /// direction is untouched).
    #[must_use]
    pub fn link_loss(self, from: &str, to: &str, prob: f64, from_ms: u64, until_ms: u64) -> Self {
        self.at(
            from_ms,
            ChaosAction::LinkLoss {
                from: from.to_string(),
                to: to.to_string(),
                prob,
            },
        )
        .at(
            until_ms,
            ChaosAction::LinkLoss {
                from: from.to_string(),
                to: to.to_string(),
                prob: 0.0,
            },
        )
    }

    /// Every message is independently lost with probability `prob`
    /// during `[from_ms, until_ms)`.
    #[must_use]
    pub fn loss_window(self, prob: f64, from_ms: u64, until_ms: u64) -> Self {
        self.at(from_ms, ChaosAction::DropProb { prob })
            .at(until_ms, ChaosAction::DropProb { prob: 0.0 })
    }

    /// Every topology link latency is multiplied by `factor` during
    /// `[from_ms, until_ms)`.
    #[must_use]
    pub fn latency_storm(self, factor: u64, from_ms: u64, until_ms: u64) -> Self {
        self.at(from_ms, ChaosAction::LatencyFactor { factor })
            .at(until_ms, ChaosAction::LatencyFactor { factor: 1 })
    }

    /// `host` is down during `[from_ms, until_ms)`, then restored.
    #[must_use]
    pub fn host_outage(self, host: &str, from_ms: u64, until_ms: u64) -> Self {
        self.at(
            from_ms,
            ChaosAction::TakeDown {
                host: host.to_string(),
            },
        )
        .at(
            until_ms,
            ChaosAction::Restore {
                host: host.to_string(),
            },
        )
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[(u64, ChaosAction)] {
        &self.events
    }

    /// Registers every event as a one-shot task on `net`'s scheduler
    /// (events already in the past fire at the next pump). Events are
    /// registered in chronological order — ties resolve by builder
    /// insertion order — so replay is stable regardless of how the
    /// schedule was assembled. Returns the number of events installed.
    pub fn install(&self, net: &Network) -> usize {
        let mut ordered: Vec<(usize, &(u64, ChaosAction))> = self.events.iter().enumerate().collect();
        ordered.sort_by_key(|(idx, (at, _))| (*at, *idx));
        for (_, (at_ms, action)) in &ordered {
            let action = (*action).clone();
            let label = action.label();
            let fault_net = net.clone();
            net.scheduler().once_at(*at_ms, label, move || {
                fault_net.with_faults(|f| action.apply(f));
                Ok(TaskControl::Done)
            });
        }
        ordered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_emit_begin_and_end_events() {
        let s = ChaosSchedule::new()
            .byzantine_mirror("evil", 0.25, 10, 50)
            .zone_partition("east", "west", 20, 40)
            .latency_storm(8, 30, 60)
            .link_loss("a", "b", 0.5, 5, 15)
            .loss_window(0.3, 0, 100)
            .host_outage("db1", 70, 80);
        assert_eq!(s.events().len(), 12);
    }

    #[test]
    fn install_applies_events_as_time_passes() {
        let net = Network::new();
        let installed = ChaosSchedule::new()
            .byzantine_mirror("evil", 0.25, 100, 300)
            .zone_partition("east", "west", 150, 250)
            .latency_storm(8, 200, 400)
            .install(&net);
        assert_eq!(installed, 6);

        assert_eq!(net.with_faults(|f| f.corrupt_prob("evil")), 0.0);
        net.run_until(100);
        assert_eq!(net.with_faults(|f| f.corrupt_prob("evil")), 0.25);
        net.run_until(175);
        assert!(net.with_faults(|f| f.zones_partitioned("east", "west")));
        net.run_until(200);
        assert_eq!(net.with_faults(|f| f.latency_factor()), 8);
        net.run_until(300);
        assert_eq!(net.with_faults(|f| f.corrupt_prob("evil")), 0.0);
        assert!(!net.with_faults(|f| f.zones_partitioned("east", "west")));
        net.run_until(400);
        assert_eq!(net.with_faults(|f| f.latency_factor()), 1);
    }

    #[test]
    fn install_order_is_chronological_regardless_of_build_order() {
        // Two schedules with the same events appended in different
        // orders must install identical timelines (ties keep insertion
        // order). Observe via the fault plan at each instant.
        let run = |s: &ChaosSchedule| {
            let net = Network::new();
            s.install(&net);
            net.run_until(500);
            net.with_faults(|f| (f.drop_prob(), f.latency_factor()))
        };
        let a = ChaosSchedule::new()
            .loss_window(0.3, 100, 600)
            .latency_storm(4, 200, 700);
        let b = ChaosSchedule::new()
            .latency_storm(4, 200, 700)
            .loss_window(0.3, 100, 600);
        assert_eq!(run(&a), run(&b));
        assert_eq!(run(&a), (0.3, 4));
    }

    #[test]
    fn past_events_fire_at_the_next_pump() {
        let net = Network::new();
        net.clock().advance_ms(1_000);
        ChaosSchedule::new()
            .at(0, ChaosAction::DropProb { prob: 0.5 })
            .install(&net);
        assert_eq!(net.with_faults(|f| f.drop_prob()), 0.0);
        net.run_until(1_001);
        assert_eq!(net.with_faults(|f| f.drop_prob()), 0.5);
    }
}
