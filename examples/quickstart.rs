//! Quickstart — the paper's Figure 1 architecture in one binary.
//!
//! One database hosts an in-database Drivolution server. Two applications
//! use bootloaders (one downloading over the sealed channel, one plain);
//! a third is a legacy application with a statically linked driver,
//! showing the two worlds coexist ("This allows applications that do not
//! use Drivolution to still access the database with a conventional
//! driver like Application 3 in Figure 1").
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use drivolution::core::pack::pack_driver;
use drivolution::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- infrastructure -------------------------------------------------
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
    {
        let mut s = db.admin_session();
        db.exec(
            &mut s,
            "CREATE TABLE items (id INTEGER PRIMARY KEY, name VARCHAR)",
        )?;
        db.exec(&mut s, "INSERT INTO items VALUES (1, 'bolt'), (2, 'nut')")?;
    }
    net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))?;
    println!("database 'orders' up at db1:5432");

    // --- in-database Drivolution server (Figure 1, right side) ----------
    let srv = attach_in_database(
        &net,
        db,
        Addr::new("db1", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )?;
    let image = DriverImage::new("minidb-rdbc", DriverVersion::new(1, 0, 0), 1);
    srv.install_driver(&DriverRecord::new(
        DriverId(1),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        pack_driver(BinaryFormat::Djar, &image),
    ))?;
    println!("drivolution server up at db1:{DRIVOLUTION_PORT}; driver#1 installed with one INSERT");

    let url: DbUrl = "rdbc:minidb://db1:5432/orders".parse()?;
    let props = ConnectProps::user("admin", "admin");

    // --- Application 1: bootloader, sealed transfer ----------------------
    let app1 = Bootloader::new(
        &net,
        Addr::new("app1", 1),
        BootloaderConfig::same_host().trusting(srv.certificate()),
    );
    let mut c1 = app1.connect(&url, &props)?;
    let rows = c1.execute("SELECT count(*) FROM items")?.rows()?;
    println!(
        "app1 (bootloader, sealed channel): driver v{} downloaded, count(*) = {}",
        app1.active_version().expect("driver loaded"),
        rows.rows[0][0]
    );

    // --- Application 2: bootloader on another host -----------------------
    let app2 = Bootloader::new(
        &net,
        Addr::new("app2", 1),
        BootloaderConfig::same_host().trusting(srv.certificate()),
    );
    let mut c2 = app2.connect(&url, &props)?;
    c2.execute("INSERT INTO items VALUES (3, 'washer')")?;
    println!("app2 (bootloader): inserted one row through the downloaded driver");

    // --- Application 3: legacy static driver, no Drivolution -------------
    let legacy = legacy_driver(&net, &Addr::new("app3", 1), 1)?;
    let mut c3 = legacy.connect(&url, &props)?;
    let rows = c3.execute("SELECT count(*) FROM items")?.rows()?;
    println!(
        "app3 (legacy driver {}): count(*) = {} — conventional access still works",
        legacy.name(),
        rows.rows[0][0]
    );

    // --- protocol accounting ---------------------------------------------
    let st = srv.stats();
    println!(
        "server stats: {} requests, {} offers, {} files served ({} bytes of driver code)",
        st.requests, st.offers, st.files, st.file_bytes
    );
    println!(
        "lease log rows in information_schema.leases: {}",
        srv.store().lease_count()?
    );
    Ok(())
}
