//! Heterogeneous DBMS administration — the paper's Figure 3 and Table 5.
//!
//! Two DBA consoles manage four databases, each database distributing
//! its own driver through an in-database Drivolution server. A single
//! bootloader per console replaces four per-database driver installs,
//! and a driver upgrade becomes two server-side steps.
//!
//! Run with: `cargo run --example heterogeneous_admin`

use std::sync::Arc;

use drivolution::core::pack::pack_driver;
use drivolution::fleet::{render_fleet_update, render_table5, FleetSpec};
use drivolution::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = Network::new();
    let props = ConnectProps::user("admin", "admin");

    // --- four heterogeneous databases, each with in-db Drivolution ------
    // Different engines are modelled by different wire-protocol versions
    // and driver versions per database.
    let mut servers = Vec::new();
    for (i, (name, proto)) in [
        ("orders", 1u16),
        ("hr", 2),
        ("gis_assets", 2),
        ("legacy_erp", 1),
    ]
    .iter()
    .enumerate()
    {
        let host = format!("db{}", i + 1);
        let db = Arc::new(MiniDb::with_clock(*name, net.clock().clone()));
        {
            let mut s = db.admin_session();
            db.exec(&mut s, "CREATE TABLE info (k VARCHAR, v VARCHAR)")?;
            db.exec(
                &mut s,
                &format!("INSERT INTO info VALUES ('engine', '{name}-engine')"),
            )?;
        }
        net.bind_arc(
            Addr::new(host.clone(), 5432),
            Arc::new(DbServer::new(db.clone())),
        )?;
        let srv = attach_in_database(
            &net,
            db,
            Addr::new(host.clone(), DRIVOLUTION_PORT),
            ServerConfig::default(),
        )?;
        let image = DriverImage::new(
            format!("{name}-driver"),
            DriverVersion::new(1, 0, 0),
            *proto,
        );
        srv.install_driver(&DriverRecord::new(
            DriverId(1),
            ApiName::rdbc(),
            BinaryFormat::Djar,
            pack_driver(BinaryFormat::Djar, &image),
        ))?;
        println!("{host}: database '{name}' (wire protocol v{proto}) + drivolution server up");
        servers.push((host, name.to_string(), srv));
    }

    // --- two DBA consoles, one bootloader each ---------------------------
    // "a single Drivolution bootloader has to be installed in the
    // management console… The management console can access seamlessly
    // any database without having to worry about driver configurations."
    for dba in ["dba1", "dba2"] {
        let mut config = BootloaderConfig::same_host();
        for (_, _, srv) in &servers {
            config = config.trusting(srv.certificate());
        }
        let console = Bootloader::new(&net, Addr::new(dba, 1), config);
        println!("\n{dba} console connects to all four databases:");
        for (host, name, _) in &servers {
            let url: DbUrl = format!("rdbc:minidb://{host}:5432/{name}").parse()?;
            let mut conn = console.connect(&url, &props)?;
            let rows = conn
                .execute("SELECT v FROM info WHERE k = 'engine'")?
                .rows()?;
            println!(
                "  {name:<12} -> {} (driver v{} auto-provisioned)",
                rows.rows[0][0],
                console.active_version().expect("loaded")
            );
        }
    }

    // --- Table 5 ----------------------------------------------------------
    println!("\n{}", render_table5(2));

    // --- the same comparison at hosting-center scale ----------------------
    let fleet = FleetSpec::hosting_center(500, &["php", "ruby", "perl"], 100, 2);
    println!(
        "Scaling to the paper's Pair-Networks-like fleet (500 web servers, 100 databases):\n{}",
        render_fleet_update(&fleet)
    );
    Ok(())
}
