//! Drivolution as a license server — the paper's §5.4.2.
//!
//! The DB2-style per-user licensing case: the driver is capacity-limited
//! to two seats. Checkout happens at driver delivery; seats return via
//! explicit release, lease expiry, or the dedicated-channel failure
//! detector when a client crashes.
//!
//! Run with: `cargo run --example license_server`

use std::sync::Arc;

use drivolution::core::pack::pack_driver;
use drivolution::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("db2ish", net.clock().clone()));
    net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))?;
    let srv = attach_in_database(
        &net,
        db,
        Addr::new("db1", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )?;
    let image = DriverImage::new("db2ish-driver", DriverVersion::new(1, 0, 0), 1);
    srv.install_driver(&DriverRecord::new(
        DriverId(1),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        pack_driver(BinaryFormat::Djar, &image),
    ))?;
    srv.add_rule(&PermissionRule::any(DriverId(1)).with_lease_ms(600_000))?;
    srv.licenses().set_limit(DriverId(1), 2);
    println!("driver#1 limited to 2 license seats");

    let url: DbUrl = "rdbc:minidb://db1:5432/db2ish".parse()?;
    let props = ConnectProps::user("admin", "admin");
    let boot = |host: &str| {
        Bootloader::new(
            &net,
            Addr::new(host, 1),
            BootloaderConfig::same_host()
                .trusting(srv.certificate())
                .with_notify_channel(),
        )
    };

    // Two clients take the two seats.
    let alice = boot("alice-host");
    let bob = boot("bob-host");
    alice.connect(&url, &props)?;
    bob.connect(&url, &props)?;
    println!(
        "alice and bob hold the seats; holders = {:?}",
        srv.licenses().holders(DriverId(1))
    );

    // A third client is denied.
    let carol = boot("carol-host");
    match carol.connect(&url, &props) {
        Err(e) => println!("carol denied as expected: {e}"),
        Ok(_) => unreachable!("no seat should be available"),
    }

    // Alice gives her license back explicitly (driver unload).
    alice.release_driver()?;
    println!("\nalice released her seat; carol retries…");
    carol.connect(&url, &props)?;
    println!(
        "carol now holds a seat; holders = {:?}",
        srv.licenses().holders(DriverId(1))
    );

    // Bob's machine crashes: his dedicated channel breaks and the
    // failure detector frees the seat.
    println!("\nbob's machine crashes (dedicated channel closes)…");
    bob.drop_notify_channel();
    let freed = srv.detect_failures();
    println!("failure detector freed {freed} seat(s)");
    let dave = boot("dave-host");
    dave.connect(&url, &props)?;
    println!(
        "dave took the freed seat; holders = {:?}",
        srv.licenses().holders(DriverId(1))
    );

    // Lease expiry is the last-resort reclaim: advance a full lease
    // without renewal from carol (her bootloader never polls again).
    println!("\nletting carol's lease expire without renewal…");
    net.clock().advance_ms(600_001);
    let freed = srv.licenses().prune_expired(net.clock().now_ms());
    println!("lease-expiry reclaim freed {freed} seat(s)");
    println!("final holders = {:?}", srv.licenses().holders(DriverId(1)));
    Ok(())
}
