//! Depot distribution end to end: a fleet machine cold-fetches a driver,
//! a second app on the machine revalidates it for free, and a vN→vN+1
//! upgrade travels as a chunked delta served by a mirror replica —
//! with the wire-byte ledger printed at each step.
//!
//! Run with: `cargo run --example depot_upgrade`

use std::sync::Arc;

use drivolution::core::pack::pack_driver_padded;
use drivolution::core::{
    ApiName, BinaryFormat, DriverId, DriverImage, DriverRecord, DriverVersion, ExpirationPolicy,
    PermissionRule, RenewPolicy, DRIVOLUTION_PORT,
};
use drivolution::prelude::*;

const PADDING: usize = 256 * 1024;

fn record(id: i64, version: DriverVersion) -> DriverRecord {
    let image = DriverImage::new("minidb-rdbc", version, 1);
    DriverRecord::new(
        DriverId(id),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        pack_driver_padded(BinaryFormat::Djar, &image, PADDING),
    )
    .with_version(version)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
    net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))?;
    let server_addr = Addr::new("db1", DRIVOLUTION_PORT);
    let srv = attach_in_database(&net, db, server_addr.clone(), ServerConfig::default())?;
    srv.install_driver(&record(1, DriverVersion::new(1, 0, 0)))?;
    println!("driver v1 installed ({} KiB packed)", PADDING / 1024);

    // A read-only depot mirror takes bulk chunk traffic off the primary.
    // Launching self-announces it into the server's mirror directory and
    // registers its own heartbeat task on the network scheduler — pumping
    // `run_due`/`run_until` keeps it out of quarantine; nobody calls
    // heartbeat() by hand.
    let mirror = MirrorDepot::launch(&net, Addr::new("mirror1", 1071), server_addr.clone())?;
    net.scheduler().run_due();

    // One machine-wide depot shared by every app on "app-host". The apps
    // drive their own maintenance in this walkthrough (manual lifecycle)
    // so each step's wire ledger stays attributable.
    let depot = DriverDepot::in_memory();
    let config = BootloaderConfig::same_host()
        .with_lifecycle(LifecyclePolicy::manual())
        .trusting(srv.certificate())
        .trusting(mirror.certificate())
        .with_depot(depot.clone());

    let wire = |mark: u64| {
        let s = net.stats().for_addr(&server_addr);
        let m = net.stats().for_addr(&Addr::new("mirror1", 1071));
        s.bytes_in + s.bytes_out + m.bytes_in + m.bytes_out - mark
    };
    let url: DbUrl = "rdbc:minidb://db1:5432/orders".parse()?;
    let props = ConnectProps::user("admin", "admin");

    // 1. Cold fetch: the full image travels.
    let mark = wire(0);
    let boot1 = Bootloader::new(&net, Addr::new("app-host", 1), config.clone());
    boot1.connect(&url, &props)?.execute("SELECT 1")?;
    println!("app1 cold fetch:        {:>8} bytes on wire", wire(mark));

    // 2. Second app, same depot: zero-transfer revalidation.
    let mark = wire(0);
    let boot2 = Bootloader::new(&net, Addr::new("app-host", 2), config.clone());
    boot2.connect(&url, &props)?.execute("SELECT 1")?;
    println!(
        "app2 warm revalidation: {:>8} bytes on wire ({} revalidations)",
        wire(mark),
        boot2.stats().revalidations
    );

    // 3. The DBA installs v2; the lease expires; the upgrade is a delta.
    srv.install_driver(&record(2, DriverVersion::new(2, 0, 0)))?;
    srv.add_rule(
        &PermissionRule::any(DriverId(2))
            .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
    )?;
    net.clock().advance_ms(4_000_000);
    net.scheduler().run_due(); // the mirror's heartbeat task catches up: still alive
    let mark = wire(0);
    let outcome = boot1.poll();
    println!(
        "app1 delta upgrade:     {:>8} bytes on wire ({outcome:?})",
        wire(mark)
    );
    println!(
        "  chunks from mirror: {}, saved {} bytes vs full re-ship",
        mirror.stats().chunks_served,
        boot1.stats().bytes_saved
    );
    println!(
        "  server ledger: {} revalidations, {} delta offers; network bytes_saved = {}",
        srv.stats().revalidations,
        srv.stats().delta_offers,
        net.stats().for_addr(&server_addr).bytes_saved
    );
    boot1.connect(&url, &props)?.execute("SELECT 1")?;
    println!(
        "app1 runs v{} after hot swap",
        boot1.active_version().unwrap()
    );
    Ok(())
}
