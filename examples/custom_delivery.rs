//! Customized driver delivery — the paper's §5.4.1.
//!
//! The server assembles drivers on demand: a French application gets only
//! the `nls-fr_FR` package, a GIS application gets the GIS extension, and
//! a client that hits the missing-extension trap (`ClassNotFoundException`
//! analog) fetches the package lazily through its bootloader.
//!
//! Run with: `cargo run --example custom_delivery`

use std::sync::Arc;

use drivolution::core::pack::{pack_driver, unpack_driver};
use drivolution::core::Extension;
use drivolution::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("geodb", net.clock().clone()));
    {
        let mut s = db.admin_session();
        db.exec(&mut s, "CREATE TABLE pois (id INTEGER, name VARCHAR)")?;
        db.exec(&mut s, "INSERT INTO pois VALUES (1, 'lighthouse')")?;
    }
    net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))?;

    // Server with customization enabled and a package catalog — the
    // Oracle-NLS / PostGIS / DB2-Kerberos bundles of the paper.
    let srv = attach_in_database(
        &net,
        db,
        Addr::new("db1", DRIVOLUTION_PORT),
        ServerConfig {
            customize: true,
            ..ServerConfig::default()
        },
    )?;
    for ext in [
        Extension::Gis,
        Extension::Nls {
            locale: "fr_FR".into(),
        },
        Extension::Nls {
            locale: "de_DE".into(),
        },
        Extension::Kerberos {
            realm_secret: "realm".into(),
        },
    ] {
        srv.assembler().register(ext);
    }

    // The stored base driver bundles *everything* (the "unnecessary large
    // driver" clients should not have to download).
    let mut fat = DriverImage::new("geodb-driver", DriverVersion::new(1, 0, 0), 2);
    fat.extensions = vec![
        Extension::Gis,
        Extension::Nls {
            locale: "fr_FR".into(),
        },
        Extension::Nls {
            locale: "de_DE".into(),
        },
    ];
    let fat_bytes = pack_driver(BinaryFormat::Djar, &fat);
    println!(
        "base driver bundles {} extension packages ({} bytes packed)",
        fat.extensions.len(),
        fat_bytes.len()
    );
    srv.install_driver(&DriverRecord::new(
        DriverId(1),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        fat_bytes,
    ))?;

    let url: DbUrl = "rdbc:minidb://db1:5432/geodb".parse()?;

    // --- client A: French locale only ------------------------------------
    let fr_app = Bootloader::new(
        &net,
        Addr::new("paris-app", 1),
        BootloaderConfig::same_host()
            .trusting(srv.certificate())
            .with_request_option("locale", "fr_FR"),
    );
    let conn = fr_app.connect(
        &url,
        &ConnectProps::user("admin", "admin").with_locale("fr_FR"),
    )?;
    let ns = fr_app.registry().active().expect("loaded");
    println!(
        "\nparis-app received a customized driver with packages: {:?}",
        ns.image
            .extensions
            .iter()
            .map(Extension::name)
            .collect::<Vec<_>>()
    );
    println!(
        "localized driver message: {}",
        conn.localized_message("connection.open")?
    );

    // --- client B: GIS required, encoded in the request -------------------
    let gis_app = Bootloader::new(
        &net,
        Addr::new("gis-app", 1),
        BootloaderConfig::same_host()
            .trusting(srv.certificate())
            .with_request_option("gis", "true"),
    );
    let mut conn = gis_app.connect(&url, &ConnectProps::user("admin", "admin"))?;
    let rs = conn.geo_query("POINT(46.5 6.6)")?.rows()?;
    println!(
        "\ngis-app ran a geo query through its GIS-enabled driver: {}",
        rs.rows[0][0]
    );

    // --- client C: plain driver + lazy extension fetch --------------------
    let lazy_app = Bootloader::new(
        &net,
        Addr::new("lazy-app", 1),
        BootloaderConfig::same_host()
            .trusting(srv.certificate())
            // Requests only German NLS — the delivered driver has no GIS.
            .with_request_option("locale", "de_DE")
            .with_lazy_extensions(),
    );
    let mut conn = lazy_app.connect(&url, &ConnectProps::user("admin", "admin"))?;
    println!(
        "\nlazy-app loaded the trimmed driver ({} extensions)…",
        lazy_app
            .registry()
            .active()
            .expect("loaded")
            .image
            .extensions
            .len()
    );
    // This triggers the trapped ClassNotFound analog: fetch, reconnect,
    // retry — transparently.
    let rs = conn.geo_query("POINT(0 0)")?.rows()?;
    println!(
        "…geo query succeeded after lazy fetch of the GIS package: {} (fetches: {})",
        rs.rows[0][0],
        lazy_app.stats().extension_fetches
    );

    // --- inspect what actually crossed the wire ---------------------------
    let offered = srv.stats();
    println!(
        "\nserver served {} driver files, {} total bytes",
        offered.files, offered.file_bytes
    );
    // Show a customized package is genuinely smaller than the fat one.
    let trimmed = unpack_driver(
        BinaryFormat::Djar,
        pack_driver(BinaryFormat::Djar, &{
            let mut img = fat.clone();
            img.extensions
                .retain(|e| matches!(e, Extension::Nls { locale } if locale == "fr_FR"));
            img
        }),
    )?;
    println!(
        "feature-exact delivery: fr-only driver carries {} package vs {} in the fat driver",
        trimmed.extensions.len(),
        fat.extensions.len()
    );
    Ok(())
}
