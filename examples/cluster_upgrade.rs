//! Middleware-based database replication — the paper's Figures 5 and 6.
//!
//! Two Sequoia-like controllers replicate four `minidb` backends. In
//! `standalone` mode (Figure 5) one external Drivolution server feeds the
//! whole cluster; in `embedded` mode (Figure 6) each controller embeds a
//! replicated Drivolution server, removing the single point of failure.
//! Both modes demonstrate a live Sequoia-driver upgrade under client
//! traffic with zero failed transactions.
//!
//! Run with: `cargo run --example cluster_upgrade -- [standalone|embedded]`

use std::sync::Arc;
use std::time::Duration;

use drivolution::cluster::{
    cluster_image, Backend, ClusterDriverFactory, Controller, Group, VirtualDb, CLUSTER_V2,
};
use drivolution::core::pack::pack_driver;
use drivolution::core::DriverFlavor;
use drivolution::fleet::workload;
use drivolution::prelude::*;

fn sequoia_record(id: i64, version: DriverVersion) -> DriverRecord {
    DriverRecord::new(
        DriverId(id),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        pack_driver(
            BinaryFormat::Djar,
            &cluster_image("sequoia-driver", version, version.major as u16),
        ),
    )
    .with_version(version)
}

fn build_cluster(net: &Network) -> (Arc<Controller>, Arc<Controller>) {
    let group = Group::new("cluster");
    let mut controllers = Vec::new();
    for id in 1u32..=2 {
        let mut backends = Vec::new();
        for r in 0..2 {
            let host = format!("replica{id}{r}");
            let db = Arc::new(MiniDb::with_clock("vdb", net.clock().clone()));
            net.bind_arc(Addr::new(host.clone(), 5432), Arc::new(DbServer::new(db)))
                .unwrap();
            let driver = legacy_driver(net, &Addr::new(format!("controller{id}"), 1), 2).unwrap();
            backends.push(Backend::with_driver(
                host.clone(),
                driver,
                DbUrl::direct(Addr::new(host, 5432), "vdb"),
                ConnectProps::user("admin", "admin"),
            ));
        }
        let ctrl = Controller::launch(
            net,
            id,
            Addr::new(format!("controller{id}"), 25322),
            VirtualDb::new("vdb", backends),
            CLUSTER_V2,
        )
        .unwrap();
        group.join(&ctrl);
        controllers.push(ctrl);
    }
    (controllers[0].clone(), controllers[1].clone())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "embedded".into());
    let net = Network::new();
    let (c1, c2) = build_cluster(&net);
    println!("cluster up: 2 controllers × 2 backends, virtual database 'vdb'");

    // --- drivolution servers per mode ------------------------------------
    let (servers, locator) = match mode.as_str() {
        "standalone" => {
            // Figure 5: one dedicated distribution service (dual-URL
            // clients), a single point of failure.
            let srv = launch_standalone(
                &net,
                Addr::new("drvsrv", DRIVOLUTION_PORT),
                ServerConfig::default(),
            )?;
            println!("mode=standalone: one drivolution server at drvsrv (Figure 5)");
            (
                vec![srv],
                ServerLocator::Fixed(vec![Addr::new("drvsrv", DRIVOLUTION_PORT)]),
            )
        }
        _ => {
            // Figure 6: embedded, replicated servers — no SPOF.
            let s1 = c1.embed_drivolution(ServerConfig::default())?;
            let s2 = c2.embed_drivolution(ServerConfig::default())?;
            println!("mode=embedded: drivolution servers inside both controllers (Figure 6)");
            (
                vec![s1, s2],
                ServerLocator::Fixed(vec![
                    Addr::new("controller1", DRIVOLUTION_PORT),
                    Addr::new("controller2", DRIVOLUTION_PORT),
                ]),
            )
        }
    };
    // Install the v1 Sequoia driver on the first server; in embedded mode
    // it replicates to the peer instantly.
    servers[0].install_driver(&sequoia_record(1, DriverVersion::new(1, 0, 0)))?;
    servers[0].add_rule(
        &PermissionRule::any(DriverId(1))
            .with_lease_ms(600_000)
            .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
    )?;
    if servers.len() == 2 {
        println!(
            "driver tables replicated: peer server now holds {} driver(s)",
            servers[1].store().records()?.len()
        );
    }

    // --- clients with bootloaders + cluster-driver factory ---------------
    let url: DbUrl = "rdbc:cluster://controller1:25322,controller2:25322/vdb".parse()?;
    let props = ConnectProps::user("app", "pw");
    let mut clients = Vec::new();
    for i in 0..4 {
        let local = Addr::new(format!("web{i}"), 1);
        let mut config = BootloaderConfig::fixed(match &locator {
            ServerLocator::Fixed(v) => v.clone(),
            _ => unreachable!(),
        })
        // Self-driving lifecycle: the upgrade below lands via each
        // client's scheduler-registered poll task, not a manual loop.
        .self_driving(Duration::from_secs(60))
        .with_notify_channel();
        for s in &servers {
            config = config.trusting(s.certificate());
        }
        let b = Bootloader::new(&net, local.clone(), config);
        // Teach the VM to interpret cluster-flavor driver images.
        b.vm().register_factory(
            DriverFlavor::Cluster,
            ClusterDriverFactory::new(net.clone(), local),
        );
        clients.push(b);
    }
    {
        let mut c0 = clients[0].connect(&url, &props)?;
        workload::setup(&mut c0)?;
    }
    println!("4 clients bootstrapped the v1 sequoia driver through drivolution");

    // --- traffic + live upgrade ------------------------------------------
    let mut order_id = 0i64;
    let mut run_round = |clients: &[Arc<Bootloader>]| -> Result<usize, Box<dyn std::error::Error>> {
        let mut done = 0;
        for b in clients {
            let mut conn = b.connect(&url, &props)?;
            order_id += 1;
            workload::run_txn(&mut conn, order_id)?;
            done += 1;
        }
        Ok(done)
    };
    run_round(&clients)?;

    println!("\npublishing sequoia-driver v2 (one INSERT) and pushing notices…");
    servers[0].install_driver(&sequoia_record(2, DriverVersion::new(2, 0, 0)))?;
    servers[0].store().remove_permissions(DriverId(1))?;
    servers[0].add_rule(
        &PermissionRule::any(DriverId(2))
            .with_lease_ms(600_000)
            .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
    )?;
    for s in &servers {
        s.notify_upgrade("vdb");
    }
    // Pump the scheduler one poll interval: every client's upgrade-poll
    // task drains the pushed notice and hot-swaps on its own.
    let now = net.clock().now_ms();
    net.run_until(now + 61_000);
    let upgraded: u64 = clients.iter().map(|b| b.stats().upgrades).sum();
    println!("{upgraded}/4 clients hot-swapped to v2; transactions continue:");
    run_round(&clients)?;

    // --- rolling controller restart under embedded mode -------------------
    if mode != "standalone" {
        println!("\nrolling restart: controller1 down…");
        c1.stop();
        run_round(&clients)?; // failover to controller2
        c1.start()?;
        println!("controller1 back; traffic never stopped");
        run_round(&clients)?;
    } else {
        println!("\nstandalone caveat (paper §5.3.1): the drivolution server is a single");
        println!("point of failure for *new* driver requests — running clients are unaffected.");
        net.with_faults(|f| f.take_down("drvsrv"));
        run_round(&clients)?;
        net.with_faults(|f| f.restore("drvsrv"));
        println!("drivolution server was down during that round; all transactions still committed");
    }

    // --- verify full replication -----------------------------------------
    let mut conn = clients[0].connect(&url, &props)?;
    let n = workload::count_orders(&mut conn)?;
    println!("\ntotal committed orders visible through the cluster: {n}");
    let _ = c2;
    Ok(())
}
