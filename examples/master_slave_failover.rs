//! Master/slave failover by driver swap — the paper's Figure 4.
//!
//! Two pre-configured drivers exist: `DBmaster` (pinned to the master)
//! and `DBslave` (pinned to the slave). "Whatever host name is found in
//! the URL specified by the client application, it is ignored." Failover
//! = mark the master driver expired, serve the slave driver, push a
//! notice; every client reconnects to the slave without any client-side
//! reconfiguration. Failback is the same swap in reverse.
//!
//! Run with: `cargo run --example master_slave_failover`

use std::sync::Arc;
use std::time::Duration;

use drivolution::core::pack::pack_driver;
use drivolution::prelude::*;

fn db_with_tag(net: &Network, host: &str, tag: &str) -> Arc<MiniDb> {
    let db = Arc::new(MiniDb::with_clock("accounts", net.clock().clone()));
    {
        let mut s = db.admin_session();
        db.exec(&mut s, "CREATE TABLE whoami (role VARCHAR)")
            .unwrap();
        db.exec(&mut s, &format!("INSERT INTO whoami VALUES ('{tag}')"))
            .unwrap();
    }
    net.bind_arc(Addr::new(host, 5432), Arc::new(DbServer::new(db.clone())))
        .unwrap();
    db
}

fn preconfigured_record(id: i64, name: &str, target: &str) -> DriverRecord {
    let mut image = DriverImage::new(name, DriverVersion::new(1, 0, 0), 1);
    image.preconfigured_target = Some(format!("{target}:5432"));
    DriverRecord::new(
        DriverId(id),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        pack_driver(BinaryFormat::Djar, &image),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = Network::new();
    let _master = db_with_tag(&net, "dbmaster", "master");
    let _slave = db_with_tag(&net, "dbslave", "slave");

    // A standalone Drivolution server holds both pre-generated drivers.
    let srv = launch_standalone(
        &net,
        Addr::new("drv", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )?;
    srv.install_driver(&preconfigured_record(1, "DBmaster-driver", "dbmaster"))?;
    srv.install_driver(&preconfigured_record(2, "DBslave-driver", "dbslave"))?;
    srv.add_rule(
        &PermissionRule::any(DriverId(1))
            .with_lease_ms(3_600_000)
            .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
    )?;
    println!("drivolution server holds DBmaster-driver (#1) and DBslave-driver (#2)");

    // Clients: the URL points at a virtual host name that is ignored by
    // the pre-configured drivers.
    let url: DbUrl = "rdbc:minidb://accounts-virtual:5432/accounts".parse()?;
    let props = ConnectProps::user("admin", "admin");
    let mut clients = Vec::new();
    for i in 0..5 {
        let b = Bootloader::new(
            &net,
            Addr::new(format!("client{i}"), 1),
            BootloaderConfig::fixed(vec![Addr::new("drv", DRIVOLUTION_PORT)])
                // Self-driving: each bootloader registers an upgrade-poll
                // task; the swaps below happen by pumping the scheduler,
                // with no application code calling poll().
                .self_driving(Duration::from_secs(30))
                .trusting(srv.certificate())
                .with_notify_channel(),
        );
        let mut conn = b.connect(&url, &props)?;
        let role = conn.execute("SELECT role FROM whoami")?.rows()?;
        assert_eq!(role.rows[0][0], Value::str("master"));
        clients.push(b);
    }
    println!("5 clients connected; all report role = 'master' (step 1 of Figure 4)");

    // --- failover: swap the driver at the server (steps 2–3) -------------
    println!("\nmaintenance window: marking DBmaster-driver expired, serving DBslave-driver");
    srv.expire_driver(DriverId(1))?;
    srv.add_rule(
        &PermissionRule::any(DriverId(2))
            .with_lease_ms(3_600_000)
            .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
    )?;
    srv.notify_upgrade("accounts");

    // One scheduler pump later, every client's own upgrade-poll task has
    // drained the pushed notice and hot-swapped the driver.
    let now = net.clock().now_ms();
    net.run_until(now + 31_000);
    let moved: u64 = clients.iter().map(|b| b.stats().upgrades).sum();
    for b in &clients {
        let mut conn = b.connect(&url, &props)?;
        let role = conn.execute("SELECT role FROM whoami")?.rows()?;
        assert_eq!(role.rows[0][0], Value::str("slave"));
    }
    println!("{moved}/5 clients swapped drivers; all now report role = 'slave'");
    println!("zero client-side reconfiguration — the swap happened at the server");

    // --- failback ----------------------------------------------------------
    println!("\nmaster restored: failback by another driver swap");
    srv.expire_driver(DriverId(2))?;
    srv.add_rule(
        &PermissionRule::any(DriverId(1))
            .with_lease_ms(3_600_000)
            .valid_between(None, None)
            .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
    )?;
    srv.notify_upgrade("accounts");
    let now = net.clock().now_ms();
    net.run_until(now + 31_000);
    for b in &clients {
        let mut conn = b.connect(&url, &props)?;
        let role = conn.execute("SELECT role FROM whoami")?.rows()?;
        assert_eq!(role.rows[0][0], Value::str("master"));
    }
    println!("all clients back on the master");
    Ok(())
}
