//! Figure 2: an external Drivolution server fronting a legacy database.
//!
//! The legacy database knows nothing about Drivolution; the external
//! server stores the driver tables *inside it* through a legacy driver,
//! and bootloaders follow the four-step flow of Figure 2.

use std::sync::Arc;

use drivolution::core::pack::pack_driver;
use drivolution::prelude::*;

fn record(id: i64, proto: u16, version: DriverVersion) -> DriverRecord {
    let image = DriverImage::new(format!("legacy-db-driver-{id}"), version, proto);
    DriverRecord::new(
        DriverId(id),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        pack_driver(BinaryFormat::Djar, &image),
    )
    .with_version(version)
}

#[test]
fn external_server_full_flow() {
    let net = Network::new();
    // The legacy database, v1/v2 wire protocol, no Drivolution support.
    let db = Arc::new(MiniDb::with_clock("legacydb", net.clock().clone()));
    {
        let mut s = db.admin_session();
        db.exec(&mut s, "CREATE TABLE data (x INTEGER)").unwrap();
        db.exec(&mut s, "INSERT INTO data VALUES (7)").unwrap();
    }
    net.bind_arc(
        Addr::new("legacy-host", 5432),
        Arc::new(DbServer::new(db.clone())),
    )
    .unwrap();

    // The external Drivolution server on its own machine (step 2–3 of
    // Figure 2 run through its legacy driver).
    let srv = launch_external(
        &net,
        &DbUrl::direct(Addr::new("legacy-host", 5432), "legacydb"),
        &ConnectProps::user("admin", "admin"),
        2,
        Addr::new("drv-host", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )
    .unwrap();
    srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
        .unwrap();
    // The driver rows physically live in the legacy database.
    assert_eq!(db.table_len("information_schema.drivers").unwrap(), 1);

    // Step 1: the bootloader queries the Drivolution server (dual-URL
    // configuration: drivolution at drv-host, database at legacy-host).
    let boot = Bootloader::new(
        &net,
        Addr::new("app", 1),
        BootloaderConfig::fixed(vec![Addr::new("drv-host", DRIVOLUTION_PORT)])
            .trusting(srv.certificate()),
    );
    // Step 4: the installed driver connects to the legacy database.
    let mut conn = boot
        .connect(
            &DbUrl::direct(Addr::new("legacy-host", 5432), "legacydb"),
            &ConnectProps::user("admin", "admin"),
        )
        .unwrap();
    let rs = conn.execute("SELECT x FROM data").unwrap().rows().unwrap();
    assert_eq!(rs.rows[0][0], Value::Integer(7));

    // §4.1.3 benefit: the external server can be restarted without
    // interrupting applications — the bootloader keeps its driver.
    net.with_faults(|f| f.take_down("drv-host"));
    net.clock().advance_ms(7_200_000);
    assert_eq!(boot.poll(), PollOutcome::KeptAfterFailure);
    conn.execute("SELECT x FROM data").unwrap();
    net.with_faults(|f| f.restore("drv-host"));
    assert_eq!(boot.poll(), PollOutcome::Renewed);
}

#[test]
fn external_server_upgrade_updates_single_machine() {
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("legacydb", net.clock().clone()));
    net.bind_arc(Addr::new("legacy-host", 5432), Arc::new(DbServer::new(db)))
        .unwrap();
    let srv = launch_external(
        &net,
        &DbUrl::direct(Addr::new("legacy-host", 5432), "legacydb"),
        &ConnectProps::user("admin", "admin"),
        2,
        Addr::new("drv-host", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )
    .unwrap();
    srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
        .unwrap();

    let boot = Bootloader::new(
        &net,
        Addr::new("app", 1),
        BootloaderConfig::fixed(vec![Addr::new("drv-host", DRIVOLUTION_PORT)])
            .trusting(srv.certificate()),
    );
    let url = DbUrl::direct(Addr::new("legacy-host", 5432), "legacydb");
    boot.connect(&url, &ConnectProps::user("admin", "admin"))
        .unwrap();
    assert_eq!(boot.active_version(), Some(DriverVersion::new(1, 0, 0)));

    // One insert at the external server upgrades every client fleet-wide.
    srv.install_driver(&record(2, 2, DriverVersion::new(2, 0, 0)))
        .unwrap();
    srv.add_rule(
        &PermissionRule::any(DriverId(2))
            .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
    )
    .unwrap();
    net.clock().advance_ms(3_600_000);
    assert!(matches!(boot.poll(), PollOutcome::Upgraded { .. }));
    assert_eq!(boot.active_version(), Some(DriverVersion::new(2, 0, 0)));
}
