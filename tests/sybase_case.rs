//! §5.3.1's Sybase caveat: "some databases must use non-transactional
//! persistent connections to be able to use features such as temporary
//! tables. This implies that connections cannot be replaced before being
//! closed. Therefore, nodes must be temporarily disabled and re-enabled
//! to renew all connections around a consistent checkpoint."
//!
//! minidb's temporary tables are session-scoped, so replacing a
//! connection silently loses them — exactly the hazard. These tests
//! demonstrate the hazard and the disable/enable procedure that avoids
//! it.

use std::sync::Arc;

use drivolution::cluster::{Backend, VirtualDb};
use drivolution::prelude::*;

fn db_on(net: &Network, host: &str) -> Arc<MiniDb> {
    let db = Arc::new(MiniDb::with_clock("vdb", net.clock().clone()));
    {
        let mut s = db.admin_session();
        db.exec(&mut s, "CREATE TABLE t (id INTEGER PRIMARY KEY)")
            .unwrap();
    }
    net.bind_arc(Addr::new(host, 5432), Arc::new(DbServer::new(db.clone())))
        .unwrap();
    db
}

#[test]
fn temp_tables_die_with_their_connection() {
    let net = Network::new();
    let _db = db_on(&net, "syb");
    let d = legacy_driver(&net, &Addr::new("app", 1), 2).unwrap();
    let url = DbUrl::direct(Addr::new("syb", 5432), "vdb");
    let props = ConnectProps::user("admin", "admin");

    let mut c1 = d.connect(&url, &props).unwrap();
    c1.execute("CREATE TEMP TABLE scratch (x INTEGER)").unwrap();
    c1.execute("INSERT INTO scratch VALUES (1)").unwrap();
    c1.execute("SELECT count(*) FROM scratch").unwrap();

    // A replacement connection — what a naive hot driver swap would do —
    // cannot see the session-scoped state.
    let mut c2 = d.connect(&url, &props).unwrap();
    assert!(c2.execute("SELECT count(*) FROM scratch").is_err());
    // The original connection still can: it must not be replaced until
    // the application is done with it.
    c1.execute("SELECT count(*) FROM scratch").unwrap();
}

#[test]
fn backend_driver_swap_around_checkpoint_preserves_data() {
    // The §5.3.1 "good practice": disable one node, swap its driver,
    // re-enable, resync, verify, then do the rest.
    let net = Network::new();
    let dbs = [db_on(&net, "b0"), db_on(&net, "b1")];
    let mk_backend = |i: usize, proto: u16| {
        let driver = legacy_driver(&net, &Addr::new("ctrl", 1), proto).unwrap();
        Backend::with_driver(
            format!("b{i}"),
            driver,
            DbUrl::direct(Addr::new(format!("b{i}"), 5432), "vdb"),
            ConnectProps::user("admin", "admin"),
        )
    };
    let vdb = VirtualDb::new("vdb", vec![mk_backend(0, 1), mk_backend(1, 1)]);
    vdb.execute_write("INSERT INTO t VALUES (1)").unwrap();

    // One node at a time: disable b0, upgrade its driver v1→v2, keep
    // serving writes from b1.
    vdb.disable_backend("b0").unwrap();
    vdb.execute_write("INSERT INTO t VALUES (2)").unwrap();
    let new_driver = legacy_driver(&net, &Addr::new("ctrl", 1), 2).unwrap();
    vdb.with_backend("b0", |b| {
        let url = b.url().clone();
        let props = ConnectProps::user("admin", "admin");
        b.set_factory(Arc::new(move || new_driver.connect(&url, &props)));
    })
    .unwrap();
    // Verify on the disabled node first (the paper's test-one-node-first
    // practice), then re-enable and resync.
    let replayed = vdb.enable_backend("b0").unwrap();
    assert_eq!(replayed, 1);
    assert_eq!(dbs[0].table_len("t").unwrap(), 2);
    assert_eq!(dbs[1].table_len("t").unwrap(), 2);

    // If the new driver turns out broken, the same flow downgrades: the
    // factory swap is symmetric ("it is possible to downgrade the driver
    // by restoring the older version on the Drivolution server").
    vdb.disable_backend("b0").unwrap();
    let old_driver = legacy_driver(&net, &Addr::new("ctrl", 1), 1).unwrap();
    vdb.with_backend("b0", |b| {
        let url = b.url().clone();
        let props = ConnectProps::user("admin", "admin");
        b.set_factory(Arc::new(move || old_driver.connect(&url, &props)));
    })
    .unwrap();
    vdb.enable_backend("b0").unwrap();
    vdb.execute_write("INSERT INTO t VALUES (3)").unwrap();
    assert_eq!(dbs[0].table_len("t").unwrap(), 3);
}

#[test]
fn broken_replacement_driver_keeps_node_disabled() {
    let net = Network::new();
    let _dbs = [db_on(&net, "b0"), db_on(&net, "b1")];
    let mk_backend = |i: usize| {
        let driver = legacy_driver(&net, &Addr::new("ctrl", 1), 1).unwrap();
        Backend::with_driver(
            format!("b{i}"),
            driver,
            DbUrl::direct(Addr::new(format!("b{i}"), 5432), "vdb"),
            ConnectProps::user("admin", "admin"),
        )
    };
    let vdb = VirtualDb::new("vdb", vec![mk_backend(0), mk_backend(1)]);
    vdb.execute_write("INSERT INTO t VALUES (1)").unwrap();
    vdb.disable_backend("b0").unwrap();
    // Install a driver that speaks a protocol the backend rejects — the
    // "new driver does not work" branch of §5.3.1.
    let bad = legacy_driver(&net, &Addr::new("ctrl", 1), 9).unwrap();
    vdb.with_backend("b0", |b| {
        let url = b.url().clone();
        let props = ConnectProps::user("admin", "admin");
        b.set_factory(Arc::new(move || bad.connect(&url, &props)));
    })
    .unwrap();
    assert!(vdb.enable_backend("b0").is_err());
    // The node stays disabled; the cluster keeps running on b1.
    assert_eq!(
        vdb.backend_states(),
        vec![("b0".to_string(), false), ("b1".to_string(), true)]
    );
    vdb.execute_write("INSERT INTO t VALUES (2)").unwrap();
}
