//! The full renewal-policy matrix of Table 4: {RENEW, UPGRADE, REVOKE} ×
//! {AFTER_CLOSE, AFTER_COMMIT, IMMEDIATE}, each exercised against live
//! connections with and without open transactions.

use std::sync::Arc;

use drivolution::bootloader::ManagedConnection;
use drivolution::core::pack::pack_driver;
use drivolution::prelude::*;

const LEASE_MS: u64 = 10_000;

struct Rig {
    net: Network,
    srv: Arc<DrivolutionServer>,
    url: DbUrl,
    boot: Arc<Bootloader>,
}

fn record(id: i64, proto: u16, version: DriverVersion) -> DriverRecord {
    let image = DriverImage::new(format!("drv-{id}"), version, proto);
    DriverRecord::new(
        DriverId(id),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        pack_driver(BinaryFormat::Djar, &image),
    )
    .with_version(version)
}

fn rig(renew: RenewPolicy, expiration: ExpirationPolicy) -> Rig {
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
    {
        let mut s = db.admin_session();
        db.exec(&mut s, "CREATE TABLE t (id INTEGER PRIMARY KEY)")
            .unwrap();
    }
    net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))
        .unwrap();
    let srv = attach_in_database(
        &net,
        db,
        Addr::new("db1", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )
    .unwrap();
    srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
        .unwrap();
    srv.add_rule(
        &PermissionRule::any(DriverId(1))
            .with_lease_ms(LEASE_MS as i64)
            .with_transfer(TransferMethod::Any)
            .with_policies(renew, expiration),
    )
    .unwrap();
    let boot = Bootloader::new(
        &net,
        Addr::new("app", 1),
        BootloaderConfig::same_host().trusting(srv.certificate()),
    );
    Rig {
        net,
        srv,
        url: DbUrl::direct(Addr::new("db1", 5432), "orders"),
        boot,
    }
}

fn props() -> ConnectProps {
    ConnectProps::user("admin", "admin")
}

/// Opens one idle and one in-transaction connection.
fn open_pair(r: &Rig) -> (ManagedConnection, ManagedConnection) {
    let idle = r.boot.connect(&r.url, &props()).unwrap();
    let mut busy = r.boot.connect(&r.url, &props()).unwrap();
    busy.begin().unwrap();
    busy.execute("INSERT INTO t VALUES (1)").unwrap();
    (idle, busy)
}

fn publish_v2(r: &Rig, expiration: ExpirationPolicy) {
    r.srv
        .install_driver(&record(2, 2, DriverVersion::new(2, 0, 0)))
        .unwrap();
    r.srv.store().remove_permissions(DriverId(1)).unwrap();
    r.srv
        .add_rule(
            &PermissionRule::any(DriverId(2))
                .with_lease_ms(LEASE_MS as i64)
                .with_transfer(TransferMethod::Any)
                .with_policies(RenewPolicy::Upgrade, expiration),
        )
        .unwrap();
}

// --- RENEW × everything: connections are never disturbed -----------------

#[test]
fn renew_policy_never_disturbs_connections() {
    for expiration in [
        ExpirationPolicy::AfterClose,
        ExpirationPolicy::AfterCommit,
        ExpirationPolicy::Immediate,
    ] {
        let r = rig(RenewPolicy::Renew, expiration);
        let (mut idle, mut busy) = open_pair(&r);
        r.net.clock().advance_ms(LEASE_MS);
        assert_eq!(r.boot.poll(), PollOutcome::Renewed, "{expiration:?}");
        idle.execute("SELECT 1").unwrap();
        busy.execute("SELECT 1").unwrap();
        busy.commit().unwrap();
        busy.execute("SELECT 1").unwrap();
        assert_eq!(r.boot.active_version(), Some(DriverVersion::new(1, 0, 0)));
    }
}

// --- UPGRADE × each expiration policy -------------------------------------

#[test]
fn upgrade_after_close_lets_connections_drain_naturally() {
    let r = rig(RenewPolicy::Upgrade, ExpirationPolicy::AfterClose);
    let (mut idle, mut busy) = open_pair(&r);
    publish_v2(&r, ExpirationPolicy::AfterClose);
    r.net.clock().advance_ms(LEASE_MS);
    assert!(matches!(r.boot.poll(), PollOutcome::Upgraded { .. }));
    // Both old connections keep working until the app closes them.
    idle.execute("SELECT 1").unwrap();
    busy.commit().unwrap();
    busy.execute("SELECT 1").unwrap();
    assert_eq!(r.boot.registry().len(), 2);
    idle.close().unwrap();
    busy.close().unwrap();
    assert_eq!(r.boot.registry().len(), 1, "old namespace unloaded");
}

#[test]
fn upgrade_after_commit_closes_idle_now_and_busy_at_commit() {
    let r = rig(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit);
    let (mut idle, mut busy) = open_pair(&r);
    publish_v2(&r, ExpirationPolicy::AfterCommit);
    r.net.clock().advance_ms(LEASE_MS);
    assert!(matches!(r.boot.poll(), PollOutcome::Upgraded { .. }));
    assert!(idle.execute("SELECT 1").is_err(), "idle closed immediately");
    busy.execute("SELECT 1").unwrap();
    busy.commit().unwrap();
    assert!(busy.execute("SELECT 1").is_err(), "closed after commit");
    assert_eq!(r.boot.registry().len(), 1);
}

#[test]
fn upgrade_immediate_terminates_all_connections() {
    let r = rig(RenewPolicy::Upgrade, ExpirationPolicy::Immediate);
    let (mut idle, mut busy) = open_pair(&r);
    publish_v2(&r, ExpirationPolicy::Immediate);
    r.net.clock().advance_ms(LEASE_MS);
    assert!(matches!(r.boot.poll(), PollOutcome::Upgraded { .. }));
    assert!(idle.execute("SELECT 1").is_err());
    assert!(busy.execute("SELECT 1").is_err());
    assert_eq!(r.boot.registry().len(), 1);
    // New connections work on v2 right away.
    let mut fresh = r.boot.connect(&r.url, &props()).unwrap();
    fresh.execute("SELECT 1").unwrap();
    assert_eq!(r.boot.active_version(), Some(DriverVersion::new(2, 0, 0)));
}

// --- REVOKE × each expiration policy ---------------------------------------

#[test]
fn revoke_after_close_blocks_new_keeps_existing() {
    let r = rig(RenewPolicy::Revoke, ExpirationPolicy::AfterClose);
    let (mut idle, mut busy) = open_pair(&r);
    r.net.clock().advance_ms(LEASE_MS);
    assert_eq!(r.boot.poll(), PollOutcome::Revoked);
    // "Existing connections can remain active with the revoked driver
    // until they terminate by an explicit closing by the application."
    idle.execute("SELECT 1").unwrap();
    busy.commit().unwrap();
    // "The bootloader blocks new connection requests and it returns
    // errors explaining the absence of a suitable driver."
    let e = r.boot.connect(&r.url, &props()).unwrap_err();
    assert!(e.to_string().contains("revoked"));
    idle.close().unwrap();
    busy.close().unwrap();
    assert_eq!(r.boot.registry().len(), 0);
}

#[test]
fn revoke_after_commit_closes_idle_now_and_busy_at_commit() {
    let r = rig(RenewPolicy::Revoke, ExpirationPolicy::AfterCommit);
    let (mut idle, mut busy) = open_pair(&r);
    r.net.clock().advance_ms(LEASE_MS);
    assert_eq!(r.boot.poll(), PollOutcome::Revoked);
    assert!(idle.execute("SELECT 1").is_err());
    busy.execute("SELECT 1").unwrap();
    busy.commit().unwrap();
    assert!(busy.execute("SELECT 1").is_err());
    assert!(r.boot.connect(&r.url, &props()).is_err());
}

#[test]
fn revoke_immediate_terminates_everything() {
    let r = rig(RenewPolicy::Revoke, ExpirationPolicy::Immediate);
    let (mut idle, mut busy) = open_pair(&r);
    r.net.clock().advance_ms(LEASE_MS);
    assert_eq!(r.boot.poll(), PollOutcome::Revoked);
    assert!(idle.execute("SELECT 1").is_err());
    assert!(busy.execute("SELECT 1").is_err());
    assert_eq!(r.boot.registry().len(), 0);
    assert!(r.boot.connect(&r.url, &props()).is_err());
}

// --- hot-swap drain-window matrix ------------------------------------------
//
// With a coexistence window, the expiration policy stops being "what
// happens at activation" and becomes "what happens to stragglers when
// the drain grace expires". Each policy is exercised against an idle
// session, a well-behaved in-transaction session, and a long-running
// transaction that never reaches a boundary inside the window.

use std::time::Duration;

const DRAIN_GRACE: Duration = Duration::from_secs(10);

fn swap_rig(expiration: ExpirationPolicy) -> Rig {
    let mut r = rig(RenewPolicy::Upgrade, expiration);
    let boot = Bootloader::new(
        &r.net,
        Addr::new("swap-app", 1),
        BootloaderConfig::same_host()
            .trusting(r.srv.certificate())
            .with_hot_swap(SwapConfig::new(DRAIN_GRACE, Duration::from_secs(1))),
    );
    r.boot = boot;
    r
}

/// Opens idle + in-transaction + long-running sessions and swaps to v2.
/// Returns the three connections; on return the coexistence window is
/// open and nothing has been disturbed yet.
fn open_trio_and_swap(
    r: &Rig,
    expiration: ExpirationPolicy,
) -> (ManagedConnection, ManagedConnection, ManagedConnection) {
    let idle = r.boot.connect(&r.url, &props()).unwrap();
    let mut busy = r.boot.connect(&r.url, &props()).unwrap();
    busy.begin().unwrap();
    busy.execute("INSERT INTO t VALUES (1)").unwrap();
    let mut long = r.boot.connect(&r.url, &props()).unwrap();
    long.begin().unwrap();
    long.execute("INSERT INTO t VALUES (2)").unwrap();
    publish_v2(r, expiration);
    r.net.clock().advance_ms(LEASE_MS);
    assert!(matches!(r.boot.poll(), PollOutcome::Upgraded { .. }));
    // The coexistence window is open: both namespaces are loaded and
    // every old session keeps executing.
    assert_eq!(r.boot.registry().len(), 2, "dual-version coexistence");
    (idle, busy, long)
}

fn pump_past_deadline(r: &Rig) {
    let now = r.net.clock().now_ms();
    r.net
        .run_until(now + DRAIN_GRACE.as_millis() as u64 + 3_000);
}

#[test]
fn drain_window_after_close_never_forces_stragglers() {
    let r = swap_rig(ExpirationPolicy::AfterClose);
    let (mut idle, mut busy, mut long) = open_trio_and_swap(&r, ExpirationPolicy::AfterClose);
    // Idle migrates at its next statement; busy right after commit.
    idle.execute("SELECT 1").unwrap();
    busy.execute("SELECT 1").unwrap();
    busy.commit().unwrap();
    busy.execute("SELECT 1").unwrap();
    pump_past_deadline(&r);
    // The long-running transaction outlived the grace — AFTER_CLOSE
    // still never forces it.
    long.execute("SELECT 1").unwrap();
    assert!(long.in_transaction());
    let swap = r.boot.stats().swap;
    assert_eq!(swap.sessions_forced, 0, "{swap:?}");
    assert_eq!(swap.transactions_severed, 0, "{swap:?}");
    assert!(swap.sessions_migrated >= 2, "{swap:?}");
    // Only the application closing the straggler retires the window.
    assert_eq!(r.boot.registry().len(), 2);
    long.commit().unwrap();
    long.close().unwrap();
    pump_past_deadline(&r);
    assert_eq!(r.boot.registry().len(), 1, "old namespace unloaded");
    assert_eq!(r.boot.stats().swap.windows_completed, 1);
}

#[test]
fn drain_window_after_commit_forces_at_boundary_and_never_severs() {
    let r = swap_rig(ExpirationPolicy::AfterCommit);
    let (mut idle, mut busy, mut long) = open_trio_and_swap(&r, ExpirationPolicy::AfterCommit);
    // Inside the window nothing is closed — unlike the no-window
    // AFTER_COMMIT upgrade, the idle session keeps working (it simply
    // migrates).
    idle.execute("SELECT 1").unwrap();
    busy.commit().unwrap();
    busy.execute("SELECT 1").unwrap();
    pump_past_deadline(&r);
    // The straggler was escalated, but AFTER_COMMIT never severs a live
    // transaction: it still executes and commits...
    long.execute("SELECT 1").unwrap();
    long.commit().unwrap();
    // ...and only *then* is it closed.
    assert!(long.execute("SELECT 1").is_err(), "closed after commit");
    pump_past_deadline(&r);
    let swap = r.boot.stats().swap;
    assert_eq!(swap.sessions_forced, 1, "{swap:?}");
    assert_eq!(swap.transactions_severed, 0, "AFTER_COMMIT severed a txn");
    assert!(swap.sessions_migrated >= 2, "{swap:?}");
    assert_eq!(swap.windows_completed, 1, "{swap:?}");
    assert_eq!(r.boot.registry().len(), 1);
}

#[test]
fn drain_window_immediate_severs_stragglers_at_deadline_only() {
    let r = swap_rig(ExpirationPolicy::Immediate);
    let (mut idle, mut busy, mut long) = open_trio_and_swap(&r, ExpirationPolicy::Immediate);
    // Even IMMEDIATE waits out the window: sessions at a boundary
    // migrate instead of dying.
    idle.execute("SELECT 1").unwrap();
    busy.commit().unwrap();
    busy.execute("SELECT 1").unwrap();
    pump_past_deadline(&r);
    // Only the straggler that never reached a boundary is severed.
    assert!(long.execute("SELECT 1").is_err(), "severed at deadline");
    let swap = r.boot.stats().swap;
    assert_eq!(swap.sessions_forced, 1, "{swap:?}");
    assert_eq!(swap.transactions_severed, 1, "{swap:?}");
    assert!(swap.sessions_migrated >= 2, "{swap:?}");
    assert_eq!(swap.windows_completed, 1, "{swap:?}");
    assert_eq!(r.boot.registry().len(), 1);
    // Idle and busy were untouched throughout.
    idle.execute("SELECT 1").unwrap();
    busy.execute("SELECT 1").unwrap();
}

// --- the connection-pool caveat of §3.4.2 ---------------------------------

#[test]
fn pooled_connections_starve_after_close_upgrades() {
    use driverkit::ConnectionPool;

    let r = rig(RenewPolicy::Upgrade, ExpirationPolicy::AfterClose);
    // An application-side pool holds connections open forever: "If the
    // client uses a connection pool, the first option might not be a good
    // choice."
    let ns = {
        let _c = r.boot.connect(&r.url, &props()).unwrap();
        r.boot.registry().active().unwrap()
    };
    let pool = ConnectionPool::new(ns.driver.clone(), r.url.clone(), props(), 2);
    let a = pool.checkout().unwrap();
    let b = pool.checkout().unwrap();
    drop(a);
    drop(b); // both idle in the pool, physically open

    publish_v2(&r, ExpirationPolicy::AfterClose);
    r.net.clock().advance_ms(LEASE_MS);
    assert!(matches!(r.boot.poll(), PollOutcome::Upgraded { .. }));
    // The pool never closes its connections: under AFTER_CLOSE the old
    // driver can never drain.
    assert_eq!(pool.idle_len(), 2);
    let mut c = pool.checkout().unwrap();
    c.execute("SELECT 1").unwrap(); // still served by the v1 driver
                                    // AFTER_COMMIT (or IMMEDIATE) is the right policy for pooled setups:
                                    // rerun with AFTER_COMMIT and observe the pooled connections die.
    let r2 = rig(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit);
    let mut kept = r2.boot.connect(&r2.url, &props()).unwrap();
    publish_v2(&r2, ExpirationPolicy::AfterCommit);
    r2.net.clock().advance_ms(LEASE_MS);
    assert!(matches!(r2.boot.poll(), PollOutcome::Upgraded { .. }));
    assert!(kept.execute("SELECT 1").is_err());
    let _ = r.srv;
}
