//! Staged-rollout regression tests: rolling a fleet back to the prior
//! driver version must move **zero chunk bytes** — every client still
//! holds the prior image in its depot, so the server answers each
//! rollback renewal with a zero-transfer revalidation, never a download
//! or a chunked delta. Stranding a client or re-fetching bytes it
//! already has would defeat the point of halting a bad rollout fast.

use std::time::Duration;

use drivolution::fleet::FleetSim;
use drivolution::prelude::*;
use drivolution::server::{RolloutConfig, RolloutPhase, RolloutPlan};

const MINUTE: u64 = 60_000;
const PADDING: usize = 16 * 1024;

fn v1() -> DriverVersion {
    DriverVersion::new(1, 0, 0)
}

fn v2() -> DriverVersion {
    DriverVersion::new(2, 0, 0)
}

fn plan() -> RolloutPlan {
    RolloutPlan {
        canary: 1,
        wave_pcts: vec![20, 30],
    }
}

fn config() -> RolloutConfig {
    RolloutConfig {
        evaluate_every: Duration::from_secs(30),
        observe: Duration::from_secs(8 * 60),
        min_reports: 1,
        ..RolloutConfig::default()
    }
}

/// `fetches - 1 == revalidations` for every client: one paid transfer
/// per distinct version ever activated (bootstrap plus at most one bad
/// upgrade), and every return to the prior version satisfied from the
/// depot. Any violation means rollback re-transferred bytes.
fn assert_zero_transfer_rollbacks(sim: &FleetSim) {
    for (i, client) in sim.clients().iter().enumerate() {
        let s = client.stats();
        let fetches = s.downloads + s.delta_downloads;
        assert_eq!(
            s.revalidations,
            fetches - 1,
            "client {i}: {} paid transfers but {} revalidations — \
             a rollback re-fetched bytes the depot already held",
            fetches,
            s.revalidations
        );
    }
}

#[test]
fn canary_rollback_to_depot_held_version_is_zero_transfer() {
    let sim = FleetSim::build_rollout(10, 5 * MINUTE, PADDING);
    sim.bootstrap_all();
    sim.publish_staged(2, v2(), PADDING);
    // Regression live from the start: only the canary ever activates
    // the bad driver, and it must come back without a byte moving.
    sim.inject_activation_fault(Some(v2()));
    let ro = sim.start_rollout(DriverId(1), DriverId(2), &plan(), config());

    sim.run_steady_state(MINUTE, 30 * MINUTE);

    assert!(
        matches!(
            ro.status().phase,
            RolloutPhase::RolledBack { failed_wave: 0 }
        ),
        "{:?}",
        ro.status()
    );
    assert_eq!(sim.count_on(v1()), 10, "no stranded clients");

    assert_zero_transfer_rollbacks(&sim);
    let total_revalidations: u64 = sim.clients().iter().map(|c| c.stats().revalidations).sum();
    assert_eq!(
        total_revalidations, 1,
        "exactly the canary rolled back, via the depot"
    );
    assert!(
        sim.net().stats().totals().bytes_saved >= PADDING as u64,
        "the revalidated image's bytes were counted as saved"
    );
}

#[test]
fn mid_wave_halt_rolls_everyone_back_without_refetching() {
    let sim = FleetSim::build_rollout(12, 5 * MINUTE, PADDING);
    sim.bootstrap_all();
    sim.publish_staged(2, v2(), PADDING);
    let ro = sim.start_rollout(DriverId(1), DriverId(2), &plan(), config());

    // Let the rollout get past the canary: pump until at least two
    // clients run the new version, so the regression lands mid-wave
    // with upgraded clients spread across waves.
    let deadline = sim.net().clock().now_ms() + 4 * 60 * MINUTE;
    while sim.count_on(v2()) < 2 {
        let now = sim.net().clock().now_ms();
        assert!(now < deadline, "rollout never reached a second client");
        sim.net().run_until(now + MINUTE);
    }
    let upgraded_before_fault = sim.count_on(v2());
    sim.inject_activation_fault(Some(v2()));

    sim.run_steady_state(MINUTE, 60 * MINUTE);

    let st = ro.status();
    assert!(
        matches!(st.phase, RolloutPhase::RolledBack { .. }),
        "{st:?}"
    );
    assert_eq!(sim.count_on(v1()), 12, "no stranded clients after halt");
    assert_eq!(sim.count_on(v2()), 0);

    assert_zero_transfer_rollbacks(&sim);
    let total_revalidations: u64 = sim.clients().iter().map(|c| c.stats().revalidations).sum();
    assert!(
        total_revalidations >= upgraded_before_fault as u64,
        "every client that activated the new version ({upgraded_before_fault}+) \
         rolled back through its depot, got {total_revalidations}"
    );

    // Once settled, the fleet stays put: further lease maintenance
    // triggers no downloads and no further revalidations.
    let settled: Vec<_> = sim
        .clients()
        .iter()
        .map(|c| {
            let s = c.stats();
            (s.downloads, s.delta_downloads, s.revalidations)
        })
        .collect();
    sim.run_steady_state(MINUTE, 30 * MINUTE);
    for (i, client) in sim.clients().iter().enumerate() {
        let s = client.stats();
        assert_eq!(
            (s.downloads, s.delta_downloads, s.revalidations),
            settled[i],
            "client {i} moved bytes after the rollback settled"
        );
    }
}
