//! End-to-end depot distribution scenarios: cold fetch, zero-transfer
//! revalidation, chunked delta upgrade, mirror offload, cluster mirror
//! replication, and persistent depots across process restarts.
//!
//! The core claim (ISSUE 1 acceptance): a bootloader upgrading a cached
//! driver vN→vN+1 through the simulated network transfers measurably
//! fewer bytes than a cold full-image fetch, verified via [`NetStats`].

use std::sync::Arc;

use drivolution::core::pack::pack_driver_padded;
use drivolution::core::{
    ApiName, BinaryFormat, DriverId, DriverImage, DriverRecord, DriverVersion, ExpirationPolicy,
    PermissionRule, RenewPolicy, DRIVOLUTION_PORT,
};
use drivolution::depot::DriverDepot;
use drivolution::prelude::*;
use drivolution::server::DrivolutionServer;

const DRIVER_PADDING: usize = 256 * 1024;

fn padded_record(id: i64, version: DriverVersion) -> DriverRecord {
    // v1/v2 version strings have equal length, so the packed archives are
    // the same size and fixed-size chunk boundaries line up: only the
    // chunks covering the image entry differ between versions.
    let image = DriverImage::new("depot-driver", version, 1);
    let bytes = pack_driver_padded(BinaryFormat::Djar, &image, DRIVER_PADDING);
    DriverRecord::new(DriverId(id), ApiName::rdbc(), BinaryFormat::Djar, bytes)
        .with_version(version)
}

struct Rig {
    net: Network,
    srv: Arc<DrivolutionServer>,
    url: DbUrl,
    server_addr: Addr,
}

fn rig() -> Rig {
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
    net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))
        .unwrap();
    let server_addr = Addr::new("db1", DRIVOLUTION_PORT);
    let srv = attach_in_database(&net, db, server_addr.clone(), ServerConfig::default()).unwrap();
    srv.install_driver(&padded_record(1, DriverVersion::new(1, 0, 0)))
        .unwrap();
    Rig {
        net,
        srv,
        url: "rdbc:minidb://db1:5432/orders".parse().unwrap(),
        server_addr,
    }
}

fn upgrade_rule() -> PermissionRule {
    PermissionRule::any(DriverId(2))
        .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit)
}

fn connect(rig: &Rig, boot: &Arc<Bootloader>) {
    let mut conn = boot
        .connect(&rig.url, &ConnectProps::user("admin", "admin"))
        .unwrap();
    conn.execute("SELECT 1").unwrap();
}

#[test]
fn delta_upgrade_transfers_measurably_fewer_bytes_than_cold_fetch() {
    let rig = rig();
    let depot = DriverDepot::in_memory();
    let boot = Bootloader::new(
        &rig.net,
        Addr::new("app", 1),
        BootloaderConfig::same_host()
            .trusting(rig.srv.certificate())
            .with_depot(depot.clone()),
    );

    // Phase 1 — cold fetch: the full image travels.
    connect(&rig, &boot);
    let cold_bytes = rig.net.stats().for_addr(&rig.server_addr).bytes_out;
    assert!(
        cold_bytes > DRIVER_PADDING as u64,
        "cold fetch must ship the full image ({cold_bytes} bytes)"
    );
    assert_eq!(boot.stats().downloads, 1);
    assert_eq!(depot.image_count(), 1);

    // Phase 2 — upgrade to v2 via chunked delta.
    rig.srv
        .install_driver(&padded_record(2, DriverVersion::new(2, 0, 0)))
        .unwrap();
    rig.srv.add_rule(&upgrade_rule()).unwrap();
    rig.net.clock().advance_ms(4_000_000); // expire the lease
    let outcome = boot.poll();
    assert!(
        matches!(outcome, PollOutcome::Upgraded { .. }),
        "expected upgrade, got {outcome:?}"
    );
    assert_eq!(boot.active_version(), Some(DriverVersion::new(2, 0, 0)));

    let total_bytes = rig.net.stats().for_addr(&rig.server_addr).bytes_out;
    let upgrade_bytes = total_bytes - cold_bytes;
    assert!(
        upgrade_bytes < cold_bytes / 4,
        "delta upgrade moved {upgrade_bytes} bytes; cold fetch moved {cold_bytes}"
    );

    // The ledger agrees end to end.
    let bs = boot.stats();
    assert_eq!(bs.delta_downloads, 1);
    assert!(bs.bytes_saved > (DRIVER_PADDING as u64) / 2);
    assert_eq!(rig.srv.stats().delta_offers, 1);
    let saved = rig.net.stats().for_addr(&rig.server_addr).bytes_saved;
    assert!(saved > 0, "bytes-saved accounting must be recorded");
    let ds = depot.stats();
    assert_eq!(ds.delta_assemblies, 1);
    assert!(ds.bytes_reused > ds.bytes_fetched);
}

#[test]
fn shared_depot_revalidates_with_zero_payload_transfer() {
    let rig = rig();
    let depot = DriverDepot::in_memory();
    let config = BootloaderConfig::same_host()
        .trusting(rig.srv.certificate())
        .with_depot(depot.clone());

    // First app on this machine downloads the driver cold.
    let boot1 = Bootloader::new(&rig.net, Addr::new("app", 1), config.clone());
    connect(&rig, &boot1);
    let cold_bytes = rig.net.stats().for_addr(&rig.server_addr).bytes_out;

    // Second app shares the machine depot: its bootstrap revalidates.
    let boot2 = Bootloader::new(&rig.net, Addr::new("app", 2), config);
    connect(&rig, &boot2);
    let reval_bytes = rig.net.stats().for_addr(&rig.server_addr).bytes_out - cold_bytes;
    assert!(
        reval_bytes < 2048,
        "revalidation should ship only the offer, moved {reval_bytes} bytes"
    );
    let bs = boot2.stats();
    assert_eq!(bs.revalidations, 1);
    assert_eq!(bs.downloads, 0);
    assert_eq!(rig.srv.stats().revalidations, 1);
    assert_eq!(depot.stats().revalidations, 1);
    // Both apps run the same driver.
    assert_eq!(boot1.active_version(), boot2.active_version());
}

#[test]
fn mirror_takes_chunk_traffic_off_the_primary() {
    let rig = rig();
    let mirror = drivolution::depot::MirrorDepot::launch(
        &rig.net,
        Addr::new("mirror1", 1071),
        rig.server_addr.clone(),
    )
    .unwrap();
    rig.srv.register_mirror(mirror.location());

    let depot = DriverDepot::in_memory();
    let boot = Bootloader::new(
        &rig.net,
        Addr::new("app", 1),
        BootloaderConfig::same_host()
            .trusting(rig.srv.certificate())
            .trusting(mirror.certificate())
            .with_depot(depot.clone()),
    );
    connect(&rig, &boot);

    rig.srv
        .install_driver(&padded_record(2, DriverVersion::new(2, 0, 0)))
        .unwrap();
    rig.srv.add_rule(&upgrade_rule()).unwrap();
    rig.net.clock().advance_ms(4_000_000);
    let before_primary = rig.net.stats().for_addr(&rig.server_addr).requests;
    assert!(matches!(boot.poll(), PollOutcome::Upgraded { .. }));

    // The client fetched its delta chunks from the mirror; the primary
    // only saw the renewal request plus the mirror's own read-through.
    let ms = mirror.stats();
    assert_eq!(ms.chunk_requests, 1);
    assert!(ms.chunks_served > 0);
    let mirror_stats = rig.net.stats().for_addr(&Addr::new("mirror1", 1071));
    assert_eq!(mirror_stats.requests, 1);
    let primary_extra = rig.net.stats().for_addr(&rig.server_addr).requests - before_primary;
    assert!(
        primary_extra <= 2,
        "primary should only see renewal + read-through, saw {primary_extra}"
    );

    // A second client upgrading the same way is served entirely from the
    // mirror's replica — zero extra read-through on the primary.
    let depot2 = DriverDepot::in_memory();
    let boot2 = Bootloader::new(
        &rig.net,
        Addr::new("app", 2),
        BootloaderConfig::same_host()
            .trusting(rig.srv.certificate())
            .trusting(mirror.certificate())
            .with_depot(depot2),
    );
    connect(&rig, &boot2);
    let rt_before = mirror.stats().read_through_chunks;
    // boot2 bootstrapped straight onto v2 (it matches first now), so no
    // further upgrade is needed; verify the mirror kept its replica.
    assert_eq!(mirror.stats().read_through_chunks, rt_before);
}

#[test]
fn cluster_controllers_replicate_depot_mirrors_alongside_the_driver_table() {
    use drivolution::cluster::{Controller, VirtualDb};

    // This scenario exercises only the driver-distribution path, so the
    // controller needs no SQL backends.
    let net = Network::new();
    let vdb = VirtualDb::new("orders", Vec::new());
    let ctrl = Controller::launch(&net, 1, Addr::new("ctrl1", 9000), vdb, 2).unwrap();
    let srv = ctrl.embed_drivolution(ServerConfig::default()).unwrap();
    srv.install_driver(&padded_record(1, DriverVersion::new(1, 0, 0)))
        .unwrap();
    let mirror = ctrl.attach_depot_mirror(1071).unwrap();

    // The mirror was warmed with the already-installed driver.
    assert!(mirror.chunk_count() > 0);

    // A depot-equipped client bootstraps onto v1 through the controller.
    let depot = DriverDepot::in_memory();
    let boot = Bootloader::new(
        &net,
        Addr::new("app", 1),
        BootloaderConfig::fixed(vec![Addr::new("ctrl1", DRIVOLUTION_PORT)])
            // Manual lifecycle: this test drives poll() by hand so the
            // run_due pump below only fires the mirror's heartbeat task.
            .with_lifecycle(LifecyclePolicy::manual())
            .trusting(srv.certificate())
            .trusting(mirror.certificate())
            .with_depot(depot),
    );
    let url: DbUrl = "rdbc:minidb://ctrl1:9000/orders".parse().unwrap();
    let props = ConnectProps::user("admin", "admin");
    boot.bootstrap(&url, &props).unwrap();
    assert_eq!(boot.active_version(), Some(DriverVersion::new(1, 0, 0)));

    // Installing v2 warms the mirror through the admin-event hook…
    let before = mirror.chunk_count();
    srv.install_driver(&padded_record(2, DriverVersion::new(2, 0, 0)))
        .unwrap();
    assert!(mirror.chunk_count() > before);

    // …and the upgrade's delta chunks are served from the warm replica.
    // The mirror registered via the announce protocol and keeps itself
    // alive through its scheduler heartbeat task — pumping run_due after
    // the long lease-expiry jump stands in for the continuous pumping a
    // live deployment would do; no controller code heartbeats by hand.
    srv.add_rule(&upgrade_rule()).unwrap();
    net.clock().advance_ms(4_000_000);
    net.scheduler().run_due();
    assert!(matches!(boot.poll(), PollOutcome::Upgraded { .. }));
    assert_eq!(mirror.stats().chunk_requests, 1);
    // Everything the mirror served came from its warmed replica.
    assert_eq!(mirror.stats().read_through_chunks, 0);

    // A rolling controller restart (§5.3.1) takes the mirror down and
    // brings it back; re-attaching is idempotent.
    ctrl.stop();
    assert!(net
        .request(&Addr::new("app", 1), mirror.addr(), bytes::Bytes::new())
        .is_err());
    ctrl.start().unwrap();
    assert!(Arc::ptr_eq(
        &ctrl.attach_depot_mirror(1071).unwrap(),
        &mirror
    ));
    assert!(net
        .request(
            &Addr::new("app", 1),
            mirror.addr(),
            drivolution::core::DrvMsg::ChunkRequest {
                digests: vec![],
                transfer_method: drivolution::core::TransferMethod::Checksum,
            }
            .encode(),
        )
        .is_ok());
}

#[test]
fn persistent_depot_keeps_saving_bytes_across_process_restarts() {
    let dir = std::env::temp_dir().join(format!("drv-depot-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let rig = rig();
    {
        let depot = DriverDepot::persistent(&dir).unwrap();
        let boot = Bootloader::new(
            &rig.net,
            Addr::new("app", 1),
            BootloaderConfig::same_host()
                .trusting(rig.srv.certificate())
                .with_depot(depot),
        );
        connect(&rig, &boot);
        assert_eq!(boot.stats().downloads, 1);
    }
    let cold_bytes = rig.net.stats().for_addr(&rig.server_addr).bytes_out;

    // "Restart": a fresh bootloader reopens the same depot directory and
    // bootstraps with zero payload transfer.
    {
        let depot = DriverDepot::persistent(&dir).unwrap();
        assert_eq!(depot.image_count(), 1);
        let boot = Bootloader::new(
            &rig.net,
            Addr::new("app", 1),
            BootloaderConfig::same_host()
                .trusting(rig.srv.certificate())
                .with_depot(depot),
        );
        connect(&rig, &boot);
        assert_eq!(boot.stats().downloads, 0);
        assert_eq!(boot.stats().revalidations, 1);
    }
    let reval_bytes = rig.net.stats().for_addr(&rig.server_addr).bytes_out - cold_bytes;
    assert!(reval_bytes < 2048, "revalidation moved {reval_bytes} bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn size_shifting_upgrade_stays_a_small_delta_under_cdc() {
    // v2's version string is longer than v1's, so every byte after the
    // image entry shifts — the edit shape that used to degenerate a
    // fixed-size delta into a near-full transfer.
    let rig = rig();
    let depot = DriverDepot::in_memory();
    let boot = Bootloader::new(
        &rig.net,
        Addr::new("app", 1),
        BootloaderConfig::same_host()
            .trusting(rig.srv.certificate())
            .with_depot(depot.clone()),
    );
    connect(&rig, &boot);
    let cold_bytes = rig.net.stats().for_addr(&rig.server_addr).bytes_out;

    rig.srv
        .install_driver(&padded_record(2, DriverVersion::new(2, 0, 10)))
        .unwrap();
    rig.srv.add_rule(&upgrade_rule()).unwrap();
    rig.net.clock().advance_ms(4_000_000);
    assert!(matches!(boot.poll(), PollOutcome::Upgraded { .. }));
    let upgrade_bytes = rig.net.stats().for_addr(&rig.server_addr).bytes_out - cold_bytes;
    assert!(
        upgrade_bytes < cold_bytes / 10,
        "size-shifting upgrade moved {upgrade_bytes} of {cold_bytes} cold bytes"
    );
    assert_eq!(boot.stats().delta_downloads, 1);
}

#[test]
fn client_with_foreign_chunking_params_still_gets_delta_offers() {
    // The server depot indexes under default CDC params; this client
    // chunks fixed/2048. The server derives the delta manifest under the
    // client's params instead of silently falling back to a full
    // transfer (the old `have.chunk_size == depot_chunk_size` gate).
    use drivolution::core::ChunkingParams;
    let rig = rig();
    rig.srv
        .install_driver(&padded_record(2, DriverVersion::new(2, 0, 0)))
        .unwrap();
    rig.srv.add_rule(&upgrade_rule()).unwrap();
    rig.net.clock().advance_ms(4_000_000);

    let mark = rig.net.stats().for_addr(&rig.server_addr).bytes_out;
    for params in [
        ChunkingParams::fixed(2048),
        ChunkingParams::cdc(512, 2048, 8192),
    ] {
        let depot = DriverDepot::with_params(params);
        let boot = Bootloader::new(
            &rig.net,
            Addr::new(format!("app-{params}"), 1),
            BootloaderConfig::same_host()
                .trusting(rig.srv.certificate())
                .with_depot(depot.clone()),
        );
        // Seed the depot with v1 so the bootstrap advertises a v1 delta
        // base under this client's (non-server) params.
        let v1 = rig.srv.store().record(DriverId(1)).unwrap().binary.clone();
        depot.insert("orders", v1);
        connect(&rig, &boot);
        let bs = boot.stats();
        assert!(
            bs.delta_downloads == 1 || bs.revalidations == 1,
            "foreign params {params} fell back to a full download: {bs:?}"
        );
        assert_eq!(bs.downloads, 0, "foreign params {params} full-transferred");
    }
    let moved = rig.net.stats().for_addr(&rig.server_addr).bytes_out - mark;
    assert!(
        moved < 2 * DRIVER_PADDING as u64 / 4,
        "foreign-params clients moved {moved} bytes"
    );
    assert!(rig.srv.stats().delta_offers >= 2);
}

#[test]
fn mixed_fleet_legacy_gear_client_interops_with_normalized_server() {
    // The server indexes under the normalized default (FastCDC-style
    // dual masks, min-skip); one client still chunks with the previous
    // generation's plain-Gear params (the exact legacy wire dialect its
    // persisted depot was built under), another with the normalized
    // default. Both must upgrade v1→v2 as small verifying deltas: the
    // server derives the legacy client's manifest under its advertised
    // level-0 params, boundary-for-boundary what the legacy chunker
    // produces.
    use drivolution::core::{ChunkingParams, DEFAULT_CDC_AVG, DEFAULT_CDC_MAX, DEFAULT_CDC_MIN};
    let rig = rig();
    let legacy = ChunkingParams::cdc(DEFAULT_CDC_MIN, DEFAULT_CDC_AVG, DEFAULT_CDC_MAX);
    let normalized = ChunkingParams::default();
    assert_ne!(legacy, normalized, "default no longer normalizes");

    let mut fleet = Vec::new();
    for (name, params) in [("legacy", legacy), ("normalized", normalized)] {
        let depot = DriverDepot::with_params(params);
        let boot = Bootloader::new(
            &rig.net,
            Addr::new(format!("app-{name}"), 1),
            BootloaderConfig::same_host()
                .trusting(rig.srv.certificate())
                .with_depot(depot.clone()),
        );
        connect(&rig, &boot);
        assert_eq!(boot.active_version(), Some(DriverVersion::new(1, 0, 0)));
        fleet.push((name, params, depot, boot));
    }

    rig.srv
        .install_driver(&padded_record(2, DriverVersion::new(2, 0, 10)))
        .unwrap();
    rig.srv.add_rule(&upgrade_rule()).unwrap();
    rig.net.clock().advance_ms(4_000_000);

    for (name, params, depot, boot) in &fleet {
        let mark = rig.net.stats().for_addr(&rig.server_addr).bytes_out;
        assert!(
            matches!(boot.poll(), PollOutcome::Upgraded { .. }),
            "{name} client failed to upgrade"
        );
        let moved = rig.net.stats().for_addr(&rig.server_addr).bytes_out - mark;
        assert_eq!(
            boot.stats().delta_downloads,
            1,
            "{name} client did not travel as a delta"
        );
        assert!(
            moved < DRIVER_PADDING as u64 / 4,
            "{name} delta moved {moved} bytes"
        );
        // The depot's assembled v2 verifies against a manifest derived
        // locally under this client's own params — digests and
        // boundaries agree with what the server served.
        let have = depot.have_summary("orders").unwrap();
        assert_eq!(have.params, *params, "{name} depot advertises its params");
        let v2 = rig.srv.store().record(DriverId(2)).unwrap().binary.clone();
        drivolution::core::ChunkManifest::of_with(&v2, params)
            .verify(&depot.lookup(drivolution::core::fnv1a64(&v2)).unwrap())
            .unwrap_or_else(|e| panic!("{name} assembled image fails verification: {e}"));
    }
    assert!(rig.srv.stats().delta_offers >= 2);
}

#[test]
fn depotless_clients_are_unaffected_by_the_depot_rollout() {
    let rig = rig();
    let boot = Bootloader::new(
        &rig.net,
        Addr::new("app", 1),
        BootloaderConfig::same_host().trusting(rig.srv.certificate()),
    );
    connect(&rig, &boot);
    assert_eq!(boot.stats().downloads, 1);
    assert_eq!(boot.stats().revalidations, 0);
    assert_eq!(rig.srv.stats().revalidations, 0);
    assert_eq!(rig.srv.stats().delta_offers, 0);
    // Reconnect after expiry renews as before.
    rig.net.clock().advance_ms(4_000_000);
    assert_eq!(boot.poll(), PollOutcome::Renewed);
}
