//! The scheduler-driven lifecycle end to end: mirrors and bootloaders
//! register tasks at construction and everything — heartbeats, health
//! classification, lease renewal, upgrades — happens by pumping
//! `Network::run_until`, at exact virtual-clock ticks.

use std::sync::Arc;
use std::time::Duration;

use drivolution::core::pack::pack_driver_padded;
use drivolution::core::{
    ApiName, BinaryFormat, DriverId, DriverImage, DriverRecord, DriverVersion, ExpirationPolicy,
    PermissionRule, RenewPolicy, DRIVOLUTION_PORT,
};
use drivolution::depot::DriverDepot;
use drivolution::prelude::*;
use drivolution::server::MirrorHealth;

const DRIVER_PADDING: usize = 64 * 1024;

fn padded_record(id: i64, version: DriverVersion) -> DriverRecord {
    let image = DriverImage::new("sched-driver", version, 1);
    let bytes = pack_driver_padded(BinaryFormat::Djar, &image, DRIVER_PADDING);
    DriverRecord::new(DriverId(id), ApiName::rdbc(), BinaryFormat::Djar, bytes)
        .with_version(version)
}

struct Rig {
    net: Network,
    srv: Arc<DrivolutionServer>,
    mirror: Arc<MirrorDepot>,
    url: DbUrl,
}

fn rig() -> Rig {
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
    net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))
        .unwrap();
    let server_addr = Addr::new("db1", DRIVOLUTION_PORT);
    let srv = attach_in_database(&net, db, server_addr.clone(), ServerConfig::default()).unwrap();
    srv.install_driver(&padded_record(1, DriverVersion::new(1, 0, 0)))
        .unwrap();
    let mirror = MirrorDepot::launch(&net, Addr::new("mirror1", 1071), server_addr).unwrap();
    Rig {
        net,
        srv,
        mirror,
        url: "rdbc:minidb://db1:5432/orders".parse().unwrap(),
    }
}

/// Cancelling a mirror's heartbeat task (its lifecycle driving dies
/// while the replica still serves) must walk the directory entry
/// healthy → overdue → quarantined → evicted at the exact virtual-clock
/// thresholds of the directory config: overdue after two missed 5s
/// beats, quarantined past 15s of silence, evicted past 120s.
#[test]
fn cancelled_heartbeat_task_walks_the_full_health_lifecycle() {
    let rig = rig();
    let location = rig.mirror.location();
    let entry_health = || {
        rig.srv
            .mirror_directory()
            .entry(&location)
            .map(|e| e.health)
    };

    // Let the scheduler beat a few times, then kill the task at a known
    // beat: the last heartbeat lands at exactly t = 25_000.
    rig.net.run_until(25_000);
    let task = rig.mirror.heartbeat_task().unwrap();
    assert_eq!(task.stats().runs, 5);
    task.cancel();
    assert!(task.is_cancelled());
    let silent_since = 25_000;

    // Healthy through two whole intervals of silence…
    rig.net.run_until(silent_since + 10_000);
    assert_eq!(entry_health(), Some(MirrorHealth::Healthy));
    // …overdue one tick later…
    rig.net.run_until(silent_since + 10_001);
    assert_eq!(entry_health(), Some(MirrorHealth::Overdue));
    // …still overdue at the quarantine threshold…
    rig.net.run_until(silent_since + 15_000);
    assert_eq!(entry_health(), Some(MirrorHealth::Overdue));
    // …quarantined one tick past it…
    rig.net.run_until(silent_since + 15_001);
    assert_eq!(entry_health(), Some(MirrorHealth::Quarantined));
    assert!(rig.srv.mirror_directory().candidates(None, &[]).is_empty());
    // …and evicted entirely one tick past the eviction threshold.
    rig.net.run_until(silent_since + 120_000);
    assert_eq!(entry_health(), Some(MirrorHealth::Quarantined));
    rig.net.run_until(silent_since + 120_001);
    assert_eq!(entry_health(), None);
    assert_eq!(rig.srv.mirror_directory().len(), 0);
}

/// A paused lifecycle (controlled restart) is indistinguishable from a
/// crash to the directory — and resuming re-enters through the normal
/// heartbeat path.
#[test]
fn paused_lifecycle_quarantines_then_resume_recovers() {
    let rig = rig();
    let location = rig.mirror.location();
    rig.net.run_until(10_000);
    rig.mirror.pause_lifecycle();
    rig.net.run_until(40_000);
    assert_eq!(
        rig.srv.mirror_directory().entry(&location).unwrap().health,
        MirrorHealth::Quarantined
    );
    rig.mirror.resume_lifecycle();
    rig.net.run_until(50_000);
    assert_eq!(
        rig.srv.mirror_directory().entry(&location).unwrap().health,
        MirrorHealth::Healthy
    );
}

/// Closed sessions must leave the tracker without anybody calling
/// `prune` by hand: the session-maintenance task (registered for every
/// self-driving bootloader, on the same 30s cadence idea as the
/// server's failure detection) sweeps the tracking table on schedule.
#[test]
fn scheduled_maintenance_prunes_closed_sessions_from_the_tracker() {
    let rig = rig();
    let boot = Bootloader::new(
        &rig.net,
        Addr::new("app", 1),
        BootloaderConfig::same_host()
            .trusting(rig.srv.certificate())
            .with_lifecycle(LifecyclePolicy::driven(Duration::from_secs(60))),
    );
    let task = boot.maintenance_task().expect("maintenance registered");
    assert!(task.is_scheduled());

    let props = ConnectProps::user("admin", "admin");
    let keep = boot.connect(&rig.url, &props).unwrap();
    let mut gone_a = boot.connect(&rig.url, &props).unwrap();
    let mut gone_b = boot.connect(&rig.url, &props).unwrap();
    assert_eq!(boot.tracker().tracked_len(), 3);
    gone_a.close().unwrap();
    gone_b.close().unwrap();
    // Closed sessions leave the live set immediately…
    assert_eq!(boot.tracker().total_live(), 1);

    // …and the sweep fires on its own 30s cadence (the same cadence
    // idea as the server's failure detection), keeping the table
    // converged onto the live set with no manual prune() anywhere.
    let now = rig.net.clock().now_ms();
    rig.net.run_until(now + 90_001);
    assert_eq!(boot.tracker().tracked_len(), 1);
    assert_eq!(boot.tracker().total_live(), 1);
    assert_eq!(task.stats().runs, 3, "30s cadence over 90s of virtual time");
    assert_eq!(task.stats().errors, 0);
    drop(keep);
}

/// A self-driving bootloader bootstraps once and then upgrades with no
/// manual poll() anywhere: its lease auto-renewal timer fires at the
/// exact tick the lease enters RenewDue (expiry minus the 10% margin,
/// where the poll state machine renews too) and installs the new
/// version via the mirror tier.
#[test]
fn lease_timer_renews_and_upgrades_without_manual_polls() {
    let rig = rig();
    let boot = Bootloader::new(
        &rig.net,
        Addr::new("app", 1),
        BootloaderConfig::same_host()
            // Auto-renew only (no periodic poll): the upgrade must come
            // from the lease timer alone, at the renew-due tick.
            .with_lifecycle(LifecyclePolicy {
                poll_every: None,
                ..LifecyclePolicy::default()
            })
            .trusting(rig.srv.certificate())
            .trusting(rig.mirror.certificate())
            .with_depot(DriverDepot::in_memory()),
    );
    boot.bootstrap(&rig.url, &ConnectProps::user("admin", "admin"))
        .unwrap();
    assert_eq!(boot.active_version(), Some(DriverVersion::new(1, 0, 0)));
    let renew_at = boot.lease_task().unwrap().next_due_ms().unwrap();
    let granted_at = rig.net.clock().now_ms();
    // The timer arms inside the renewal window: at the renew-due point
    // plus a seed-reproducible spread strictly under the margin, so the
    // renewal always lands inside the lease, never at or past expiry.
    let renew_due = granted_at + 3_600_000 - 360_000;
    let expiry = granted_at + 3_600_000;
    assert!(
        (renew_due..expiry).contains(&renew_at),
        "armed at {renew_at}, outside the renewal window [{renew_due}, {expiry})"
    );

    rig.srv
        .install_driver(&padded_record(2, DriverVersion::new(2, 0, 0)))
        .unwrap();
    rig.srv
        .add_rule(
            &PermissionRule::any(DriverId(2))
                .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
        )
        .unwrap();

    // One tick short of the renew-due point: nothing has happened.
    rig.net.run_until(renew_at - 1);
    assert_eq!(boot.active_version(), Some(DriverVersion::new(1, 0, 0)));
    // Pumping through the renew-due tick renews → upgrades → re-arms.
    rig.net.run_until(renew_at + 1);
    assert_eq!(boot.active_version(), Some(DriverVersion::new(2, 0, 0)));
    assert_eq!(boot.stats().upgrades, 1);
    assert_eq!(
        boot.stats().delta_downloads,
        1,
        "upgrade travelled as a delta"
    );
    let next = boot.lease_task().unwrap().next_due_ms().unwrap();
    assert!(next > renew_at, "timer re-armed against the new lease");
}

/// Renewal failures surface on the task's error counters and retry at
/// the configured backoff instead of spinning or going silent.
#[test]
fn failed_renewals_count_on_the_lease_task_and_retry() {
    let rig = rig();
    let boot = Bootloader::new(
        &rig.net,
        Addr::new("app", 1),
        BootloaderConfig::same_host()
            .with_lifecycle(LifecyclePolicy {
                poll_every: None,
                renew_retry: Duration::from_secs(30),
                ..LifecyclePolicy::default()
            })
            .trusting(rig.srv.certificate()),
    );
    boot.bootstrap(&rig.url, &ConnectProps::user("admin", "admin"))
        .unwrap();
    let renew_at = boot.lease_task().unwrap().next_due_ms().unwrap();
    rig.net.with_faults(|f| f.take_down("db1"));
    rig.net.run_until(renew_at + 1);
    let task = boot.lease_task().unwrap();
    assert_eq!(task.stats().errors, 1);
    assert!(task.last_error().unwrap().contains("renewal failed"));
    // Driver kept (§4.1.3), retry armed one backoff after the failed
    // firing.
    assert_eq!(boot.active_version(), Some(DriverVersion::new(1, 0, 0)));
    let retry_at = task.next_due_ms().unwrap();
    assert_eq!(retry_at, renew_at + 30_000);
    // Two more failed retries, then the server comes back and the very
    // next retry renews.
    rig.net.run_until(retry_at + 30_001);
    assert_eq!(task.stats().errors, 3);
    rig.net.with_faults(|f| f.restore("db1"));
    rig.net.run_until(rig.net.clock().now_ms() + 30_001);
    assert_eq!(task.stats().consecutive_errors, 0);
    assert!(boot.stats().renewals >= 1);
}

/// Same seed ⇒ same schedule, end to end: two identically-built worlds
/// with jittered heartbeat and poll tasks replay the identical sequence
/// of virtual firing times.
#[test]
fn jittered_schedules_replay_identically_under_one_seed() {
    let trace = |seed: u64| -> (Vec<u64>, u64) {
        let net = Network::new();
        net.scheduler().reseed(seed);
        let times = Arc::new(parking_lot_times::Times::default());
        for i in 0..4 {
            let t = times.clone();
            let c = net.clock().clone();
            net.scheduler().every(
                Duration::from_secs(5),
                Duration::from_secs(2),
                format!("jittered-{i}"),
                move || {
                    t.push(c.now_ms());
                    Ok(TaskControl::Continue)
                },
            );
        }
        let fired = net.run_until(120_000);
        (times.snapshot(), fired)
    };
    let (a, fired_a) = trace(7);
    let (b, fired_b) = trace(7);
    assert_eq!(a, b, "same seed must replay the same schedule");
    assert_eq!(fired_a, fired_b);
    let (c, _) = trace(8);
    assert_ne!(a, c, "a different seed must produce a different schedule");
}

/// Tiny helper so the closure capture stays `Send + Sync` without
/// pulling a mutex type into every test line.
mod parking_lot_times {
    #[derive(Default)]
    pub(crate) struct Times(std::sync::Mutex<Vec<u64>>);
    impl Times {
        pub(crate) fn push(&self, t: u64) {
            self.0.lock().unwrap().push(t);
        }
        pub(crate) fn snapshot(&self) -> Vec<u64> {
            self.0.lock().unwrap().clone()
        }
    }
}
