//! Tier-1 gate: the drvlint static-analysis pass must be clean on the
//! committed tree. This is the same check CI runs via
//! `cargo run -p drvlint -- check`, wired into `cargo test` so the
//! gate cannot be skipped locally.

use std::path::Path;

#[test]
fn drvlint_workspace_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = drvlint::run_check(root).expect("drvlint run");
    assert!(
        report.is_clean(),
        "drvlint found {} violation(s):\n{:#?}",
        report.findings.len(),
        report.findings
    );
}
