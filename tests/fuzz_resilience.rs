//! Robustness property tests: no parser, codec, or unpacker in the
//! workspace may panic on arbitrary input — malformed bytes and SQL must
//! come back as errors.

use bytes::Bytes;
use proptest::prelude::*;

use drivolution::core::pack::{unpack_driver, Archive};
use drivolution::core::proto::{DrvMsg, DrvNotice};
use drivolution::core::{BinaryFormat, DriverImage, Signature};
use drivolution::minidb::sql::parse;
use drivolution::minidb::wire::{ClientMsg, ServerMsg};
use drivolution::minidb::MiniDb;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn sql_parser_never_panics(input in ".{0,120}") {
        let _ = parse(&input);
    }

    #[test]
    fn sql_parser_never_panics_on_sqlish_soup(
        input in "(SELECT|INSERT|WHERE|FROM|VALUES|LIKE|NULL|AND|OR|\\(|\\)|,|\\*|=|'x'|5|\\$p| ){0,40}"
    ) {
        let _ = parse(&input);
    }

    #[test]
    fn executing_arbitrary_sqlish_text_never_panics(
        input in "(SELECT|INSERT INTO t|WHERE|FROM t|VALUES|\\(1\\)|a|,|\\*|=|5| ){0,20}"
    ) {
        let db = MiniDb::new("fuzz");
        let mut s = db.admin_session();
        db.exec(&mut s, "CREATE TABLE t (a INTEGER)").unwrap();
        let _ = db.exec(&mut s, &input);
    }

    #[test]
    fn drv_msg_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = DrvMsg::decode(Bytes::from(bytes));
    }

    #[test]
    fn drv_notice_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..100)) {
        let _ = DrvNotice::decode(Bytes::from(bytes));
    }

    #[test]
    fn minidb_wire_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = ClientMsg::decode(Bytes::from(bytes.clone()));
        let _ = ServerMsg::decode(Bytes::from(bytes));
    }

    #[test]
    fn archive_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        for fmt in [BinaryFormat::Djar, BinaryFormat::Dzip] {
            let _ = Archive::decode(fmt, Bytes::from(bytes.clone()));
            let _ = unpack_driver(fmt, Bytes::from(bytes.clone()));
        }
    }

    #[test]
    fn image_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = DriverImage::decode(Bytes::from(bytes));
    }

    #[test]
    fn signature_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..40)) {
        let _ = Signature::decode(Bytes::from(bytes));
    }
}
