//! Robustness property tests: no parser, codec, or unpacker in the
//! workspace may panic on arbitrary input — malformed bytes and SQL must
//! come back as errors.

use bytes::Bytes;
use proptest::prelude::*;

use drivolution::core::chunk::{split_chunks, ChunkManifest, ChunkSet};
use drivolution::core::pack::{pack_driver_padded, unpack_driver, Archive};
use drivolution::core::proto::{DrvMsg, DrvNotice};
use drivolution::core::{BinaryFormat, DriverImage, DriverVersion, Signature};
use drivolution::minidb::sql::parse;
use drivolution::minidb::wire::{ClientMsg, ServerMsg};
use drivolution::minidb::MiniDb;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn sql_parser_never_panics(input in ".{0,120}") {
        let _ = parse(&input);
    }

    #[test]
    fn sql_parser_never_panics_on_sqlish_soup(
        input in "(SELECT|INSERT|WHERE|FROM|VALUES|LIKE|NULL|AND|OR|\\(|\\)|,|\\*|=|'x'|5|\\$p| ){0,40}"
    ) {
        let _ = parse(&input);
    }

    #[test]
    fn executing_arbitrary_sqlish_text_never_panics(
        input in "(SELECT|INSERT INTO t|WHERE|FROM t|VALUES|\\(1\\)|a|,|\\*|=|5| ){0,20}"
    ) {
        let db = MiniDb::new("fuzz");
        let mut s = db.admin_session();
        db.exec(&mut s, "CREATE TABLE t (a INTEGER)").unwrap();
        let _ = db.exec(&mut s, &input);
    }

    #[test]
    fn drv_msg_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = DrvMsg::decode(Bytes::from(bytes));
    }

    #[test]
    fn drv_notice_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..100)) {
        let _ = DrvNotice::decode(Bytes::from(bytes));
    }

    #[test]
    fn minidb_wire_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = ClientMsg::decode(Bytes::from(bytes.clone()));
        let _ = ServerMsg::decode(Bytes::from(bytes));
    }

    #[test]
    fn archive_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        for fmt in [BinaryFormat::Djar, BinaryFormat::Dzip] {
            let _ = Archive::decode(fmt, Bytes::from(bytes.clone()));
            let _ = unpack_driver(fmt, Bytes::from(bytes.clone()));
        }
    }

    #[test]
    fn image_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = DriverImage::decode(Bytes::from(bytes));
    }

    #[test]
    fn signature_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..40)) {
        let _ = Signature::decode(Bytes::from(bytes));
    }

    #[test]
    fn chunk_manifest_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut buf = Bytes::from(bytes);
        let _ = ChunkManifest::decode(&mut buf);
    }

    #[test]
    fn chunk_set_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = ChunkSet::decode(Bytes::from(bytes));
    }

    #[test]
    fn manifest_verification_rejects_container_corruption(
        fmt in prop_oneof![Just(BinaryFormat::Djar), Just(BinaryFormat::Dzip)],
        padding in 0..4096usize,
        pos_seed in any::<u32>(),
        flip in 1..=255u8,
    ) {
        // A manifest taken over a packed djar/dzip container must reject
        // every single-byte corruption of that container.
        let image = DriverImage::new("fuzz", DriverVersion::new(1, 0, 0), 1);
        let packed = pack_driver_padded(fmt, &image, padding);
        let manifest = ChunkManifest::of(&packed, 256);
        prop_assert!(manifest.verify(&packed).is_ok());
        let mut bad = packed.to_vec();
        let pos = pos_seed as usize % bad.len();
        bad[pos] ^= flip;
        prop_assert!(manifest.verify(&bad).is_err(), "flip at {pos} accepted");
    }

    #[test]
    fn chunk_set_rejects_any_single_byte_corruption(
        payload in prop::collection::vec(any::<u8>(), 1..2000),
        pos_seed in any::<u32>(),
        flip in 1..=255u8,
    ) {
        let bytes = Bytes::from(payload);
        let manifest = ChunkManifest::of(&bytes, 256);
        let set = ChunkSet {
            chunks: manifest
                .chunks
                .iter()
                .copied()
                .zip(split_chunks(&bytes, 256))
                .collect(),
        };
        let enc = set.encode();
        prop_assert_eq!(ChunkSet::decode(enc.clone()).unwrap(), set.clone());
        let mut bad = enc.to_vec();
        let pos = pos_seed as usize % bad.len();
        bad[pos] ^= flip;
        // Corruption must surface as an error or a visibly different
        // set — never as silent acceptance of the original content.
        if let Ok(round) = ChunkSet::decode(Bytes::from(bad)) {
            prop_assert_ne!(round, set, "flip at {} accepted silently", pos);
        }
    }
}

/// Every frame tag's decode path must fail *typed* on truncation: each
/// strict prefix of a valid frame either errors with `DrvError::Codec`
/// or — only where the protocol keeps a legacy dialect that is a true
/// prefix (heartbeats without coverage, offers without newer fields) —
/// decodes to some message. Nothing panics, and the typed error carries
/// through for the empty and unknown-tag frames.
#[test]
fn every_frame_tag_truncation_errors_are_typed() {
    use drivolution::core::proto::{DrvErrCode, DrvOffer, DrvRequest, RequestKind};
    use drivolution::core::{DriverId, DrvError, ExpirationPolicy, RenewPolicy, TransferMethod};

    let msgs = vec![
        DrvMsg::Request(DrvRequest::bootstrap(
            "orders",
            "alice",
            "RDBC",
            "linux-x86_64",
        )),
        DrvMsg::Discover(DrvRequest {
            kind: RequestKind::Renewal {
                current: DriverId(7),
            },
            ..DrvRequest::bootstrap("orders", "alice", "RDBC", "linux-x86_64")
        }),
        DrvMsg::Offer(DrvOffer {
            driver_id: DriverId(1),
            driver_version: Some(DriverVersion::new(2, 0, 1)),
            same_driver: false,
            lease_ms: 60_000,
            renew_policy: RenewPolicy::Renew,
            expiration_policy: ExpirationPolicy::AfterCommit,
            format: BinaryFormat::Djar,
            location: "drivers/1".into(),
            size: 4096,
            transfer_method: TransferMethod::Sealed,
            options: vec![("fetch_size".into(), "100".into())],
            signature: None,
            content_digest: Some(0xdead_beef),
            chunked: None,
        }),
        DrvMsg::Error {
            code: DrvErrCode::PermissionDenied,
            message: "no".into(),
        },
        DrvMsg::FileRequest {
            location: "loc-1".into(),
            transfer_method: TransferMethod::Checksum,
        },
        DrvMsg::FileData {
            payload: Bytes::from_static(b"abcdef"),
        },
        DrvMsg::Release {
            database: "orders".into(),
            user: "alice".into(),
            driver: DriverId(1),
        },
        DrvMsg::ReleaseOk,
        DrvMsg::ChunkRequest {
            digests: vec![1, 2, 3],
            transfer_method: TransferMethod::Plain,
        },
        DrvMsg::ChunkData {
            payload: Bytes::from_static(b"chunks"),
        },
        DrvMsg::MirrorAnnounce {
            location: "m1:1071".into(),
            zone: Some("east".into()),
        },
        DrvMsg::MirrorHeartbeat {
            location: "m1:1071".into(),
            chunk_count: 3,
            served_bytes: 1024,
            load: 2,
            coverage: vec![10, 20, 30],
        },
        DrvMsg::MirrorAck { known: true },
        DrvMsg::ActivationReport {
            database: "orders".into(),
            driver: DriverId(2),
            version: None,
            ok: true,
            detail: String::new(),
        },
        DrvMsg::ActivationAck,
        DrvMsg::RenewBatch {
            entries: vec![
                (
                    "app0001".into(),
                    DrvRequest {
                        kind: RequestKind::Renewal {
                            current: DriverId(3),
                        },
                        ..DrvRequest::bootstrap("orders", "alice", "RDBC", "linux-x86_64")
                    },
                ),
                (
                    "app0002".into(),
                    DrvRequest::bootstrap("orders", "bob", "RDBC", "linux-x86_64"),
                ),
            ],
        },
        DrvMsg::OfferBatch {
            replies: vec![
                Ok(DrvOffer {
                    driver_id: DriverId(3),
                    driver_version: Some(DriverVersion::new(3, 1, 0)),
                    same_driver: true,
                    lease_ms: 60_000,
                    renew_policy: RenewPolicy::Renew,
                    expiration_policy: ExpirationPolicy::AfterCommit,
                    format: BinaryFormat::Djar,
                    location: "drivers/3".into(),
                    size: 2048,
                    transfer_method: TransferMethod::Plain,
                    options: vec![],
                    signature: None,
                    content_digest: Some(0xfeed_f00d),
                    chunked: None,
                }),
                Err((DrvErrCode::PermissionDenied, "no seats".into())),
            ],
        },
        DrvMsg::MirrorComplaint {
            location: "mirror-west:1071".into(),
            digest: 0xbad_c0de,
            detail: "chunk payload does not match its digest".into(),
        },
    ];
    for msg in msgs {
        let frame = msg.encode();
        for cut in 0..frame.len() {
            match DrvMsg::decode(frame.slice(0..cut)) {
                Ok(_) => {} // legacy-prefix dialects decode shorter frames
                Err(DrvError::Codec(_)) => {}
                Err(other) => panic!("truncated {msg:?} at {cut}: untyped error {other:?}"),
            }
        }
    }
    // Empty frames and unknown tags are typed codec errors too.
    assert!(matches!(
        DrvMsg::decode(Bytes::new()),
        Err(DrvError::Codec(_))
    ));
    assert!(matches!(
        DrvMsg::decode(Bytes::from_static(&[200u8])),
        Err(DrvError::Codec(_))
    ));
}
