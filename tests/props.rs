//! Property-based tests on the workspace's core invariants.

use bytes::Bytes;
use proptest::prelude::*;

use drivolution::core::image::{AuthKind, Extension};
use drivolution::core::pack::{pack_driver, unpack_driver, Archive};
use drivolution::core::proto::{DrvMsg, DrvOffer, DrvRequest, RequestKind};
use drivolution::core::{
    like, ApiVersion, BinaryFormat, DriverFlavor, DriverId, DriverImage, DriverVersion,
    ExpirationPolicy, Lease, LeaseState, RenewPolicy, SigningKey, TransferMethod,
};
use drivolution::minidb::{like_match, DataType, Value};

// --- generators -----------------------------------------------------------

fn arb_binary_format() -> impl Strategy<Value = BinaryFormat> {
    prop_oneof![Just(BinaryFormat::Djar), Just(BinaryFormat::Dzip)]
}

fn arb_version() -> impl Strategy<Value = DriverVersion> {
    (0..50i32, 0..50i32, 0..50i32).prop_map(|(a, b, c)| DriverVersion::new(a, b, c))
}

fn arb_extension() -> impl Strategy<Value = Extension> {
    prop_oneof![
        Just(Extension::Gis),
        "[a-z]{2}_[A-Z]{2}".prop_map(|locale| Extension::Nls { locale }),
        "[a-z]{1,12}".prop_map(|realm_secret| Extension::Kerberos { realm_secret }),
    ]
}

fn arb_image() -> impl Strategy<Value = DriverImage> {
    (
        "[a-z][a-z0-9-]{0,20}",
        arb_version(),
        1..4u16,
        prop::collection::vec(arb_extension(), 0..4),
        prop::collection::vec(("[a-z]{1,8}", "[a-z0-9]{1,8}"), 0..4),
        prop::option::of("[a-z]{1,10}:[0-9]{1,4}"),
        prop_oneof![Just(DriverFlavor::Direct), Just(DriverFlavor::Cluster)],
    )
        .prop_map(|(name, version, proto, exts, opts, target, flavor)| {
            let mut img = DriverImage::new(name, version, proto);
            img.auth_kinds = vec![AuthKind::Password, AuthKind::Challenge];
            img.extensions = exts;
            img.default_options = opts;
            img.preconfigured_target = target;
            img.flavor = flavor;
            img
        })
}

// --- pack / image ----------------------------------------------------------

proptest! {
    #[test]
    fn driver_images_roundtrip(img in arb_image()) {
        let round = DriverImage::decode(img.encode()).unwrap();
        prop_assert_eq!(round, img);
    }

    #[test]
    fn packed_drivers_roundtrip(img in arb_image(), fmt in arb_binary_format()) {
        let bytes = pack_driver(fmt, &img);
        let round = unpack_driver(fmt, bytes).unwrap();
        prop_assert_eq!(round, img);
    }

    #[test]
    fn archives_detect_any_single_byte_corruption(
        img in arb_image(),
        fmt in arb_binary_format(),
        pos_seed in any::<u32>(),
        flip in 1..=255u8,
    ) {
        let bytes = pack_driver(fmt, &img).to_vec();
        let pos = pos_seed as usize % bytes.len();
        let mut bad = bytes.clone();
        bad[pos] ^= flip;
        // Either the archive layer or the image decoder must reject it;
        // silent acceptance of different bytes is the only failure.
        if let Ok(round) = unpack_driver(fmt, Bytes::from(bad.clone())) {
            // Extremely unlikely, but only acceptable if it decodes to
            // the identical image (e.g. flip in ignored padding — none
            // exists today).
            prop_assert_eq!(round, img);
        }
    }

    #[test]
    fn archive_entries_roundtrip(
        entries in prop::collection::vec(("[a-z/.]{1,16}", prop::collection::vec(any::<u8>(), 0..200)), 0..6),
        fmt in arb_binary_format(),
    ) {
        let mut a = Archive::new(fmt);
        for (i, (name, data)) in entries.iter().enumerate() {
            // Ensure unique names (duplicates replace).
            a.add_entry(format!("{i}-{name}"), Bytes::from(data.clone()));
        }
        let round = Archive::decode(fmt, a.encode()).unwrap();
        prop_assert_eq!(round, a);
    }
}

// --- protocol messages -------------------------------------------------------

fn arb_request() -> impl Strategy<Value = DrvRequest> {
    (
        "[a-z]{1,10}",
        "[a-z]{1,10}",
        prop_oneof![
            Just(RequestKind::Bootstrap),
            (0..100i64).prop_map(|id| RequestKind::Renewal {
                current: DriverId(id)
            }),
            ("[a-z]{1,8}", 0..100i64).prop_map(|(name, id)| RequestKind::Extension {
                base: DriverId(id),
                name
            }),
        ],
        prop::option::of((0..9i32, 0..9i32)),
        prop::collection::vec(("[a-z]{1,6}", "[a-z0-9_]{1,8}"), 0..3),
    )
        .prop_map(|(database, user, kind, apiv, options)| {
            let mut r = DrvRequest::bootstrap(database, user, "RDBC", "linux-x86_64");
            r.kind = kind;
            r.api_version = apiv.map(|(a, b)| ApiVersion::exact(a, b));
            r.options = options;
            r
        })
}

proptest! {
    #[test]
    fn drv_requests_roundtrip(req in arb_request()) {
        let msg = DrvMsg::Request(req);
        prop_assert_eq!(DrvMsg::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn drv_offers_roundtrip(
        id in 0..1000i64,
        same in any::<bool>(),
        lease in 1..10_000_000u64,
        fmt in arb_binary_format(),
        size in 0..1_000_000u64,
        signed in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let offer = DrvOffer {
            driver_id: DriverId(id),
            driver_version: Some(DriverVersion::new(1, 2, 3)),
            same_driver: same,
            lease_ms: lease,
            renew_policy: RenewPolicy::Upgrade,
            expiration_policy: ExpirationPolicy::AfterCommit,
            format: fmt,
            location: format!("stage/{id}"),
            size,
            transfer_method: TransferMethod::Sealed,
            options: vec![("k".into(), "v".into())],
            signature: signed.then(|| SigningKey::from_seed(seed).sign(b"payload")),
            content_digest: signed.then_some(seed),
            chunked: None,
        };
        let msg = DrvMsg::Offer(offer);
        prop_assert_eq!(DrvMsg::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn truncated_frames_never_panic(req in arb_request(), cut_seed in any::<u32>()) {
        let enc = DrvMsg::Request(req).encode();
        let cut = cut_seed as usize % enc.len();
        // Must return an error (or in rare prefix-valid cases a message),
        // never panic.
        let _ = DrvMsg::decode(enc.slice(0..cut));
    }
}

// --- LIKE engines agree -------------------------------------------------------

proptest! {
    #[test]
    fn core_and_minidb_like_engines_agree(
        s in "[ab%_]{0,8}",
        p in "[ab%_]{0,8}",
    ) {
        prop_assert_eq!(like(&s, &p), like_match(&s, &p));
    }

    #[test]
    fn like_reflexive_on_literal_strings(s in "[a-z0-9]{0,12}") {
        prop_assert!(like_match(&s, &s));
        prop_assert!(like_match(&s, "%"));
        let mut with_suffix = s.clone();
        with_suffix.push('%');
        prop_assert!(like_match(&s, &with_suffix));
    }
}

// --- versions -------------------------------------------------------------------

proptest! {
    #[test]
    fn api_version_matching_is_symmetric_and_reflexive(
        a in prop::option::of(0..9i32),
        b in prop::option::of(0..9i32),
        c in prop::option::of(0..9i32),
        d in prop::option::of(0..9i32),
    ) {
        let v1 = ApiVersion { major: a, minor: b };
        let v2 = ApiVersion { major: c, minor: d };
        prop_assert!(v1.matches(&v1));
        prop_assert_eq!(v1.matches(&v2), v2.matches(&v1));
        prop_assert!(ApiVersion::any().matches(&v2));
    }

    #[test]
    fn driver_version_ordering_is_total(a in arb_version(), b in arb_version(), c in arb_version()) {
        // Antisymmetry + transitivity spot checks via sort stability.
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2]);
        let s = a.to_string();
        prop_assert_eq!(s.parse::<DriverVersion>().unwrap(), a);
    }
}

// --- lease state machine -----------------------------------------------------------

proptest! {
    #[test]
    fn lease_state_is_monotone_in_time(
        granted in 0..1_000_000u64,
        len in 1..1_000_000u64,
        probes in prop::collection::vec(0..3_000_000u64, 1..20),
    ) {
        let lease = Lease::grant(
            DriverId(1), granted, len,
            RenewPolicy::Renew, ExpirationPolicy::AfterClose,
        ).unwrap();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut last_rank = 0u8;
        for t in sorted {
            let rank = match lease.state(t) {
                LeaseState::Valid => 0,
                LeaseState::RenewDue => 1,
                LeaseState::Expired => 2,
            };
            prop_assert!(rank >= last_rank, "lease state went backwards at t={t}");
            last_rank = rank;
        }
        // Boundary invariants.
        prop_assert_eq!(lease.state(lease.expires_at_ms()), LeaseState::Expired);
        prop_assert_eq!(lease.remaining_ms(lease.expires_at_ms()), 0);
    }

    #[test]
    fn renewed_leases_restart_the_window(
        granted in 0..1_000u64,
        len in 10..100_000u64,
        renew_at in 0..200_000u64,
    ) {
        let lease = Lease::grant(
            DriverId(1), granted, len,
            RenewPolicy::Renew, ExpirationPolicy::AfterClose,
        ).unwrap();
        let renewed = lease.renewed(renew_at);
        prop_assert_eq!(renewed.expires_at_ms(), renew_at + len);
        prop_assert_eq!(renewed.state(renew_at), LeaseState::Valid);
    }
}

// --- minidb value / SQL roundtrips ------------------------------------------------

proptest! {
    #[test]
    fn values_conform_to_their_types(n in any::<i64>(), s in "[a-z]{0,10}", b in prop::collection::vec(any::<u8>(), 0..32)) {
        prop_assert!(Value::BigInt(n).conforms_to(DataType::BigInt));
        prop_assert!(Value::Varchar(s).conforms_to(DataType::Varchar));
        prop_assert!(Value::Blob(b.into()).conforms_to(DataType::Blob));
        prop_assert!(Value::Null.conforms_to(DataType::Integer));
    }

    #[test]
    fn integer_literals_roundtrip_through_sql(n in 0..1_000_000i64) {
        use drivolution::minidb::MiniDb;
        let db = MiniDb::new("p");
        let mut s = db.admin_session();
        let rs = db.exec(&mut s, &format!("SELECT {n} + 0")).unwrap().rows().unwrap();
        prop_assert_eq!(rs.rows[0][0].as_i64(), Some(n));
    }

    #[test]
    fn string_literals_roundtrip_through_sql(text in "[a-zA-Z0-9 ']{0,20}") {
        use drivolution::minidb::MiniDb;
        let db = MiniDb::new("p");
        let mut s = db.admin_session();
        let escaped = text.replace('\'', "''");
        let rs = db.exec(&mut s, &format!("SELECT '{escaped}'")).unwrap().rows().unwrap();
        prop_assert_eq!(rs.rows[0][0].as_str(), Some(text.as_str()));
    }
}
