//! Regression tests for the determinism invariants drvlint enforces
//! statically: a default [`Network`] runs on pure virtual time, and an
//! end-to-end fleet scenario replays byte-identical wire traffic under
//! one seed.

use std::time::Duration;

use drivolution::core::DriverVersion;
use drivolution::fleet::FleetSim;
use drivolution::netsim::{Addr, AddrStats, ChaosSchedule, Clock, Network};

const MINUTE: u64 = 60_000;

/// A default `Network` must be pure virtual time: no wall-clock source
/// is reachable from it, so its time only moves when the scheduler is
/// cranked — never with the OS clock.
#[test]
fn default_network_is_pure_virtual_time() {
    let net = Network::new();
    assert!(net.clock().is_simulated(), "default Network clock");
    assert!(Clock::default().is_simulated(), "default Clock");
    assert_eq!(net.clock().now_ms(), 0);
    // Real time passing must not leak in: only `run_until` moves time.
    std::thread::sleep(Duration::from_millis(25));
    assert_eq!(net.clock().now_ms(), 0, "wall clock leaked into the sim");
    net.run_until(500);
    assert_eq!(net.clock().now_ms(), 500);
}

/// One end-to-end CDN scenario (zoned mirrors, heartbeats with
/// coverage, candidate ranking, chunked transfer) replayed under the
/// same seed must produce *identical* per-address traffic — the wire
/// order of every broadcast, ranking decision, and stats update is
/// pinned. This is the dynamic counterpart of drvlint's `map-iter`
/// rule: one hash-ordered iteration reaching a frame or a counter
/// breaks it.
#[test]
fn same_seed_replays_identical_fleet_traffic() {
    let run = |seed: u64| -> Vec<(Addr, AddrStats)> {
        let zones = ["east", "west"];
        let sim = FleetSim::build_cdn(4, 10 * MINUTE, &zones, 32 * 1024, 1, 25);
        sim.net().scheduler().reseed(seed);
        sim.bootstrap_all();
        sim.publish_upgrade(false);
        sim.run_until_upgraded(MINUTE, 60 * MINUTE);
        sim.net().stats().snapshot()
    };
    let a = run(41);
    let b = run(41);
    assert_eq!(a, b, "same seed must replay identical traffic");
    assert!(
        a.iter().any(|(_, s)| s.requests > 0),
        "scenario produced no traffic; the replay assertion is vacuous"
    );
}

/// A chaos run doubles the nondeterminism surface: corruption draws,
/// per-link loss draws, and fault flips all pull from seeded state. Two
/// same-seed runs of a fleet upgrade under a byzantine mirror, a healing
/// zone partition, a loss window, and a latency storm must reproduce
/// *every* counter in the full `NetStats` snapshot — including the typed
/// failure ledger (dropped / partitioned / corrupted).
#[test]
fn same_seed_chaos_schedule_reproduces_every_counter() {
    let run = |seed: u64| -> Vec<(Addr, AddrStats)> {
        let zones = ["east", "west"];
        let sim = FleetSim::build_cdn(6, 10 * MINUTE, &zones, 32 * 1024, 1, 25);
        sim.net().scheduler().reseed(seed);
        sim.net().reseed(seed);
        sim.bootstrap_all();
        let t0 = sim.net().clock().now_ms();
        sim.install_chaos(
            &ChaosSchedule::new()
                .byzantine_mirror("mirror-west", 0.4, t0, t0 + 120 * MINUTE)
                .zone_partition("east", "west", t0 + 2 * MINUTE, t0 + 6 * MINUTE)
                .loss_window(0.1, t0 + 4 * MINUTE, t0 + 12 * MINUTE)
                .latency_storm(4, t0 + 5 * MINUTE, t0 + 9 * MINUTE),
        );
        // Padded v2 so the offer carries a chunked plan — the mirrors
        // (including the byzantine one) only serve on the delta path.
        sim.publish(2, DriverVersion::new(2, 0, 0), 32 * 1024, false);
        sim.run_until_upgraded(MINUTE, 90 * MINUTE);
        sim.net().stats().snapshot()
    };
    let a = run(23);
    let b = run(23);
    assert_eq!(a, b, "same seed must reproduce every chaos counter");
    let totals = |snap: &[(Addr, AddrStats)]| {
        snap.iter().fold((0u64, 0u64, 0u64), |acc, (_, s)| {
            (
                acc.0 + s.dropped,
                acc.1 + s.partitioned,
                acc.2 + s.corrupted,
            )
        })
    };
    let (dropped, partitioned, corrupted) = totals(&a);
    assert!(dropped > 0, "loss window never dropped a message");
    assert!(partitioned > 0, "zone partition never blocked a message");
    assert!(corrupted > 0, "byzantine mirror never corrupted a serve");
}

/// The same replay guarantee with the opt-in auto-pump enabled and the
/// batched fleet shape (renewal aggregators, sharded license table,
/// zone-shared image cache): tasks now also fire from inside request
/// dispatch, so this pins that the reentrancy guard defers them to the
/// outermost pump in a reproducible order — and that adopting a peer's
/// assembled image never changes what crosses the wire.
#[test]
fn same_seed_replays_identical_batched_traffic_under_auto_pump() {
    let run = |seed: u64| -> Vec<(Addr, AddrStats)> {
        let sim = FleetSim::build_rollout_batched(12, 10 * MINUTE, 32 * 1024);
        sim.net().set_auto_pump(true);
        sim.net().scheduler().reseed(seed);
        sim.bootstrap_all();
        sim.publish_upgrade(false);
        sim.run_until_upgraded(MINUTE, 60 * MINUTE);
        sim.net().stats().snapshot()
    };
    let a = run(17);
    let b = run(17);
    assert_eq!(
        a, b,
        "same seed must replay identical traffic with auto-pump on"
    );
    assert!(
        a.iter().any(|(_, s)| s.requests > 0),
        "scenario produced no traffic; the replay assertion is vacuous"
    );
}
