//! Mirror failover end to end: clients walking a ranked candidate list
//! drain from dead or partitioned mirrors to the next candidate, the
//! directory quarantines silent mirrors, and `mirror_fallbacks` counts
//! only genuine last-resort trips to the primary.

use std::sync::Arc;

use drivolution::core::pack::pack_driver_padded;
use drivolution::core::{
    ApiName, BinaryFormat, DriverId, DriverImage, DriverRecord, DriverVersion, ExpirationPolicy,
    PermissionRule, RenewPolicy, DRIVOLUTION_PORT,
};
use drivolution::depot::DriverDepot;
use drivolution::prelude::*;
use drivolution::server::MirrorHealth;

const DRIVER_PADDING: usize = 256 * 1024;

fn padded_record(id: i64, version: DriverVersion) -> DriverRecord {
    let image = DriverImage::new("failover-driver", version, 1);
    let bytes = pack_driver_padded(BinaryFormat::Djar, &image, DRIVER_PADDING);
    DriverRecord::new(DriverId(id), ApiName::rdbc(), BinaryFormat::Djar, bytes)
        .with_version(version)
}

struct Rig {
    net: Network,
    srv: Arc<DrivolutionServer>,
    mirrors: Vec<Arc<MirrorDepot>>,
    url: DbUrl,
}

/// One primary plus two announce-registered mirrors: `mirror1` shares
/// the client's zone (`east`), `mirror2` sits in `west`, so the
/// client-side walk deterministically leads with `mirror1`.
fn rig() -> Rig {
    let net = Network::new();
    net.with_topology(|t| {
        t.place("db1", "east");
        t.place("app", "east");
        t.place("mirror1", "east");
        t.place("mirror2", "west");
    });
    let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
    net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))
        .unwrap();
    let server_addr = Addr::new("db1", DRIVOLUTION_PORT);
    let srv = attach_in_database(&net, db, server_addr.clone(), ServerConfig::default()).unwrap();
    srv.install_driver(&padded_record(1, DriverVersion::new(1, 0, 0)))
        .unwrap();
    let mirrors = ["mirror1", "mirror2"]
        .iter()
        .map(|host| MirrorDepot::launch(&net, Addr::new(*host, 1071), server_addr.clone()).unwrap())
        .collect();
    Rig {
        net,
        srv,
        mirrors,
        url: "rdbc:minidb://db1:5432/orders".parse().unwrap(),
    }
}

fn boot(rig: &Rig, host: &str) -> Arc<Bootloader> {
    let mut config = BootloaderConfig::same_host()
        .trusting(rig.srv.certificate())
        .with_depot(DriverDepot::in_memory());
    for m in &rig.mirrors {
        config = config.trusting(m.certificate());
    }
    Bootloader::new(&rig.net, Addr::new(host, 1), config)
}

fn publish_v2(rig: &Rig) {
    rig.srv
        .install_driver(&padded_record(2, DriverVersion::new(2, 0, 0)))
        .unwrap();
    rig.srv
        .add_rule(
            &PermissionRule::any(DriverId(2))
                .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
        )
        .unwrap();
}

/// Expires leases while keeping every live mirror heartbeating, so the
/// directory's view stays current across the jump.
fn expire_leases(rig: &Rig) {
    rig.net.clock().advance_ms(4_000_000);
    for m in &rig.mirrors {
        let _ = m.heartbeat();
    }
}

#[test]
fn clients_drain_from_a_dead_mirror_to_the_next_candidate() {
    let rig = rig();
    let b = boot(&rig, "app");
    b.bootstrap(&rig.url, &ConnectProps::user("admin", "admin"))
        .unwrap();
    publish_v2(&rig);
    expire_leases(&rig);

    // Take the client's own-zone mirror down *after* the heartbeat, so
    // its directory entry is still healthy when the plan is built: the
    // client-side walk, not the directory, must do the draining.
    let first = rig.mirrors[0].location();
    rig.net.with_faults(|f| f.take_down("mirror1"));

    assert!(matches!(b.poll(), PollOutcome::Upgraded { .. }));
    let st = b.stats();
    assert_eq!(st.delta_downloads, 1);
    assert_eq!(
        st.mirror_fallbacks, 0,
        "draining to the next mirror is not a primary fallback"
    );
    assert_eq!(st.mirror_chunk_fetches, 1);
    // The surviving mirror (and only it) served the chunks.
    let served: Vec<u64> = rig
        .mirrors
        .iter()
        .map(|m| m.stats().chunks_served)
        .collect();
    assert_eq!(served.iter().filter(|&&n| n > 0).count(), 1);
    // The dead mirror recorded failed attempts up to its retry budget.
    let fetch = b.mirror_fetch_stats();
    let dead = fetch.iter().find(|(loc, _)| *loc == first).unwrap();
    assert_eq!(dead.1.successes, 0);
    assert!(dead.1.failures >= 1);
    // No chunk traffic reached the primary beyond the mirror's own
    // read-through.
    assert!(rig.srv.stats().chunk_requests <= 1);
}

#[test]
fn partitioned_mirrors_force_a_counted_primary_fallback() {
    let rig = rig();
    let b = boot(&rig, "app");
    b.bootstrap(&rig.url, &ConnectProps::user("admin", "admin"))
        .unwrap();
    publish_v2(&rig);
    expire_leases(&rig);

    // Partition the client from *both* mirrors: the walk exhausts every
    // candidate and only then falls back to the primary — which is the
    // one case mirror_fallbacks must count.
    rig.net.with_faults(|f| {
        f.partition("app", "mirror1");
        f.partition("app", "mirror2");
    });
    assert!(matches!(b.poll(), PollOutcome::Upgraded { .. }));
    let st = b.stats();
    assert_eq!(st.delta_downloads, 1);
    assert_eq!(st.mirror_fallbacks, 1);
    assert_eq!(st.mirror_chunk_fetches, 0);
    assert!(
        rig.srv.stats().chunk_requests >= 1,
        "primary must have served the delta"
    );
    // Healing the partition restores mirror service for the next
    // upgrade without touching the fallback counter.
    rig.net.with_faults(|f| f.heal_all());
    rig.srv
        .install_driver(&padded_record(3, DriverVersion::new(3, 0, 0)))
        .unwrap();
    rig.srv.store().remove_permissions(DriverId(2)).unwrap();
    rig.srv
        .add_rule(
            &PermissionRule::any(DriverId(3))
                .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
        )
        .unwrap();
    expire_leases(&rig);
    assert!(matches!(b.poll(), PollOutcome::Upgraded { .. }));
    let st = b.stats();
    assert_eq!(st.mirror_fallbacks, 1, "healed mirrors stop the counter");
    assert_eq!(st.mirror_chunk_fetches, 1);
}

#[test]
fn silent_mirrors_are_quarantined_out_of_plans_and_recover_on_heartbeat() {
    let rig = rig();
    let b = boot(&rig, "app");
    b.bootstrap(&rig.url, &ConnectProps::user("admin", "admin"))
        .unwrap();
    publish_v2(&rig);

    // Both mirrors stay live across most of the lease window, then
    // mirror1 goes silent for the final stretch — long enough to
    // quarantine, short enough not to evict. The directory drops it
    // from plans and the client never wastes attempts on it.
    rig.net.clock().advance_ms(3_600_000);
    for m in &rig.mirrors {
        m.heartbeat().unwrap();
    }
    rig.net.clock().advance_ms(20_000);
    rig.mirrors[1].heartbeat().unwrap();
    assert_eq!(
        rig.srv
            .mirror_directory()
            .entry(&rig.mirrors[0].location())
            .unwrap()
            .health,
        MirrorHealth::Quarantined
    );
    let candidates = rig.srv.mirror_directory().candidates(None, &[]);
    assert_eq!(candidates.len(), 1);
    assert_eq!(candidates[0].location, rig.mirrors[1].location());

    assert!(matches!(b.poll(), PollOutcome::Upgraded { .. }));
    let st = b.stats();
    assert_eq!(st.mirror_fallbacks, 0);
    let fetch = b.mirror_fetch_stats();
    assert!(
        !fetch
            .iter()
            .any(|(loc, _)| *loc == rig.mirrors[0].location()),
        "quarantined mirror must not be attempted"
    );

    // A fresh heartbeat lifts the quarantine.
    rig.mirrors[0].heartbeat().unwrap();
    assert_eq!(
        rig.srv
            .mirror_directory()
            .entry(&rig.mirrors[0].location())
            .unwrap()
            .health,
        MirrorHealth::Healthy
    );
    assert_eq!(rig.srv.mirror_directory().candidates(None, &[]).len(), 2);
}
