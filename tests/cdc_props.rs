//! Property tests for content-defined chunking: delta cost under random
//! size-shifting edits stays bounded by the edit, not the image — the
//! exact robustness fixed-size chunking lacks.

use proptest::prelude::*;

use drivolution::core::chunk::{
    cut_points, cut_points_cdc_norm, delta_cost, ChunkManifest, ChunkingParams,
};
use drivolution::core::entropy_blob as image;

/// Bytes a client holding `v1` must fetch for `v2` under `params`.
fn delta_bytes(v1: &[u8], v2: &[u8], params: &ChunkingParams) -> u64 {
    delta_cost(v1, v2, params).bytes
}

const IMG_LEN: usize = 128 * 1024;
const CDC_MAX: u64 = 16 * 1024; // ChunkingParams::default() max bound

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cdc_delta_stays_local_under_random_insertions(
        seed in any::<u64>(),
        pos_seed in any::<u32>(),
        ins_len in 1usize..400,
    ) {
        let v1 = image(IMG_LEN, seed);
        let at = pos_seed as usize % v1.len();
        let mut v2 = v1.clone();
        v2.splice(at..at, image(ins_len, seed ^ 0x5555));

        let cdc = delta_bytes(&v1, &v2, &ChunkingParams::default());
        // Bounded by a handful of max-size chunks around the edit plus
        // the inserted bytes — never proportional to the image.
        prop_assert!(
            cdc <= 4 * CDC_MAX + ins_len as u64,
            "insert {ins_len}B at {at}: cdc delta {cdc}B"
        );

        // Comparative: an edit in the first quarter forces the fixed
        // chunker to re-ship at least the back three quarters, which the
        // CDC bound above can never reach.
        if at < IMG_LEN / 4 {
            let fixed = delta_bytes(&v1, &v2, &ChunkingParams::fixed(4096));
            prop_assert!(
                cdc < fixed / 2,
                "insert at {at}: cdc {cdc}B not well under fixed {fixed}B"
            );
        }
    }

    #[test]
    fn cdc_delta_stays_local_under_random_deletions(
        seed in any::<u64>(),
        pos_seed in any::<u32>(),
        del_len in 1usize..400,
    ) {
        let v1 = image(IMG_LEN, seed);
        let at = pos_seed as usize % (v1.len() - 400);
        let mut v2 = v1.clone();
        v2.drain(at..at + del_len);

        let cdc = delta_bytes(&v1, &v2, &ChunkingParams::default());
        prop_assert!(
            cdc <= 4 * CDC_MAX,
            "delete {del_len}B at {at}: cdc delta {cdc}B"
        );

        if at < IMG_LEN / 4 {
            let fixed = delta_bytes(&v1, &v2, &ChunkingParams::fixed(4096));
            prop_assert!(
                cdc < fixed / 2,
                "delete at {at}: cdc {cdc}B not well under fixed {fixed}B"
            );
        }
    }

    #[test]
    fn normalized_cuts_respect_bounds_and_cover_for_arbitrary_params(
        seed in any::<u64>(),
        min in 64u32..2048,
        avg_factor in 1u32..6,
        max_factor in 1u32..6,
        norm in 0u32..5,
    ) {
        // Arbitrary ordered (min, avg, max) at every normalization
        // level: cuts must cover the input exactly, no chunk may
        // exceed max, and only the final chunk may undercut min.
        let (avg, max) = (min * avg_factor, min * avg_factor * max_factor);
        let img = image(96 * 1024, seed);
        let cuts = cut_points_cdc_norm(&img, min, avg, max, norm as u8);
        prop_assert_eq!(*cuts.last().unwrap(), img.len());
        let mut start = 0usize;
        for (i, &end) in cuts.iter().enumerate() {
            let len = end - start;
            prop_assert!(end > start, "chunk {i} empty");
            prop_assert!(len <= max as usize, "chunk {i} over max: {len}");
            if end != img.len() {
                prop_assert!(len >= min as usize, "chunk {i} under min: {len}");
            }
            start = end;
        }
    }

    #[test]
    fn normalized_cuts_are_position_independent_after_insertion(
        seed in any::<u64>(),
        pos_seed in any::<u32>(),
        ins_len in 1usize..400,
        norm in 0u32..4,
    ) {
        // Position independence: once re-synchronized past an edit,
        // every later boundary is a pure function of content, so v2's
        // tail cuts are exactly v1's tail cuts shifted by the inserted
        // length — at every normalization level.
        const MAX: usize = 16 * 1024;
        let v1 = image(IMG_LEN, seed);
        let at = pos_seed as usize % v1.len();
        let mut v2 = v1.clone();
        v2.splice(at..at, image(ins_len, seed ^ 0x7777));

        let params = ChunkingParams::cdc_normalized(1024, 4096, MAX as u32, norm as u8);
        let cuts1 = cut_points(&v1, &params);
        let cuts2 = cut_points(&v2, &params);
        // Resync is complete a few max-chunks past the edit on
        // high-entropy data; compare the tails beyond that window.
        let window = at + 6 * MAX + ins_len;
        let tail1: Vec<usize> = cuts1
            .iter()
            .filter(|&&c| c + ins_len > window)
            .map(|&c| c + ins_len)
            .collect();
        let tail2: Vec<usize> = cuts2.iter().filter(|&&c| c > window).copied().collect();
        prop_assert_eq!(
            tail1,
            tail2,
            "tail cuts disagree after insert {} at {} (norm {})",
            ins_len,
            at,
            norm
        );
    }

    #[test]
    fn params_codec_roundtrips_including_legacy_frames(
        min in 64u32..2048,
        avg_factor in 1u32..6,
        max_factor in 1u32..6,
        norm in 0u32..9,
        fixed_size in 256u32..65536,
    ) {
        use bytes::{BufMut, BytesMut};
        let (avg, max) = (min * avg_factor, min * avg_factor * max_factor);
        // Every structurally valid params value survives the wire.
        for p in [
            ChunkingParams::fixed(fixed_size),
            ChunkingParams::cdc(min, avg, max),
            ChunkingParams::cdc_normalized(min, avg, max, norm as u8),
        ] {
            let mut b = BytesMut::new();
            p.encode_into(&mut b);
            prop_assert_eq!(ChunkingParams::decode(&mut b.freeze()).unwrap(), p);
        }
        // A legacy plain-Gear frame (0-marker, three bounds) decodes as
        // level 0, and a legacy bare fixed size decodes as Fixed.
        let mut b = BytesMut::new();
        b.put_u32_le(0);
        b.put_u32_le(min);
        b.put_u32_le(avg);
        b.put_u32_le(max);
        prop_assert_eq!(
            ChunkingParams::decode(&mut b.freeze()).unwrap(),
            ChunkingParams::cdc(min, avg, max)
        );
        let mut b = BytesMut::new();
        b.put_u32_le(fixed_size);
        prop_assert_eq!(
            ChunkingParams::decode(&mut b.freeze()).unwrap(),
            ChunkingParams::fixed(fixed_size)
        );
    }

    #[test]
    fn cdc_manifests_verify_and_reassemble_after_edits(
        seed in any::<u64>(),
        pos_seed in any::<u32>(),
        ins_len in 0usize..200,
    ) {
        // End-to-end invariant: whatever the edit, the edited image's
        // CDC manifest verifies against its own bytes and assembles from
        // its own chunk split.
        let v1 = image(16 * 1024, seed);
        let at = pos_seed as usize % v1.len();
        let mut v2 = v1.clone();
        v2.splice(at..at, image(ins_len, seed ^ 0xAAAA));
        let v2 = bytes::Bytes::from(v2);

        let params = ChunkingParams::cdc(256, 1024, 4096);
        let m = ChunkManifest::of_with(&v2, &params);
        prop_assert!(m.verify(&v2).is_ok());
        let map: std::collections::HashMap<u64, bytes::Bytes> = m
            .chunks
            .iter()
            .copied()
            .zip(drivolution::core::chunk::split_with(&v2, &params))
            .collect();
        let rebuilt = drivolution::core::chunk::assemble(&m, &map).unwrap();
        prop_assert_eq!(rebuilt, v2);
    }
}
