//! Property tests for content-defined chunking: delta cost under random
//! size-shifting edits stays bounded by the edit, not the image — the
//! exact robustness fixed-size chunking lacks.

use proptest::prelude::*;

use drivolution::core::chunk::{delta_cost, ChunkManifest, ChunkingParams};
use drivolution::core::entropy_blob as image;

/// Bytes a client holding `v1` must fetch for `v2` under `params`.
fn delta_bytes(v1: &[u8], v2: &[u8], params: &ChunkingParams) -> u64 {
    delta_cost(v1, v2, params).bytes
}

const IMG_LEN: usize = 128 * 1024;
const CDC_MAX: u64 = 16 * 1024; // ChunkingParams::default() max bound

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cdc_delta_stays_local_under_random_insertions(
        seed in any::<u64>(),
        pos_seed in any::<u32>(),
        ins_len in 1usize..400,
    ) {
        let v1 = image(IMG_LEN, seed);
        let at = pos_seed as usize % v1.len();
        let mut v2 = v1.clone();
        v2.splice(at..at, image(ins_len, seed ^ 0x5555));

        let cdc = delta_bytes(&v1, &v2, &ChunkingParams::default());
        // Bounded by a handful of max-size chunks around the edit plus
        // the inserted bytes — never proportional to the image.
        prop_assert!(
            cdc <= 4 * CDC_MAX + ins_len as u64,
            "insert {ins_len}B at {at}: cdc delta {cdc}B"
        );

        // Comparative: an edit in the first quarter forces the fixed
        // chunker to re-ship at least the back three quarters, which the
        // CDC bound above can never reach.
        if at < IMG_LEN / 4 {
            let fixed = delta_bytes(&v1, &v2, &ChunkingParams::fixed(4096));
            prop_assert!(
                cdc < fixed / 2,
                "insert at {at}: cdc {cdc}B not well under fixed {fixed}B"
            );
        }
    }

    #[test]
    fn cdc_delta_stays_local_under_random_deletions(
        seed in any::<u64>(),
        pos_seed in any::<u32>(),
        del_len in 1usize..400,
    ) {
        let v1 = image(IMG_LEN, seed);
        let at = pos_seed as usize % (v1.len() - 400);
        let mut v2 = v1.clone();
        v2.drain(at..at + del_len);

        let cdc = delta_bytes(&v1, &v2, &ChunkingParams::default());
        prop_assert!(
            cdc <= 4 * CDC_MAX,
            "delete {del_len}B at {at}: cdc delta {cdc}B"
        );

        if at < IMG_LEN / 4 {
            let fixed = delta_bytes(&v1, &v2, &ChunkingParams::fixed(4096));
            prop_assert!(
                cdc < fixed / 2,
                "delete at {at}: cdc {cdc}B not well under fixed {fixed}B"
            );
        }
    }

    #[test]
    fn cdc_manifests_verify_and_reassemble_after_edits(
        seed in any::<u64>(),
        pos_seed in any::<u32>(),
        ins_len in 0usize..200,
    ) {
        // End-to-end invariant: whatever the edit, the edited image's
        // CDC manifest verifies against its own bytes and assembles from
        // its own chunk split.
        let v1 = image(16 * 1024, seed);
        let at = pos_seed as usize % v1.len();
        let mut v2 = v1.clone();
        v2.splice(at..at, image(ins_len, seed ^ 0xAAAA));
        let v2 = bytes::Bytes::from(v2);

        let params = ChunkingParams::cdc(256, 1024, 4096);
        let m = ChunkManifest::of_with(&v2, &params);
        prop_assert!(m.verify(&v2).is_ok());
        let map: std::collections::HashMap<u64, bytes::Bytes> = m
            .chunks
            .iter()
            .copied()
            .zip(drivolution::core::chunk::split_with(&v2, &params))
            .collect();
        let rebuilt = drivolution::core::chunk::assemble(&m, &map).unwrap();
        prop_assert_eq!(rebuilt, v2);
    }
}
