//! The chaos tier: seed-reproducible fault schedules driving byzantine
//! mirrors, healing partitions, loss, and latency storms against real
//! fleets — plus the single-client loss/partition scenarios this file
//! absorbed from the old `lossy_network.rs`.
//!
//! The property pinned here (and measured in `benches/chaos.rs`): under
//! any fault schedule the sim can express, every upgrade eventually
//! converges with correct bytes, the byzantine mirror is demoted through
//! corroborated `MIRROR_COMPLAINT` strikes, no healthy mirror is ever
//! demoted, and a same-seed replay reproduces every counter.

use std::sync::Arc;

use drivolution::core::pack::pack_driver;
use drivolution::fleet::FleetSim;
use drivolution::prelude::*;

const MINUTE: u64 = 60_000;
const LEASE_MS: u64 = 10_000;

/// The seed for the flagship e2e below. Any seed converges with correct
/// bytes (that is the property); this one also makes the 25% corruption
/// draws land on enough distinct west-zone clients to demonstrate
/// corroborated demotion inside the run's window.
const E2E_SEED: u64 = 9;

fn record(id: i64, proto: u16, version: DriverVersion) -> DriverRecord {
    let image = DriverImage::new(format!("drv-{id}"), version, proto);
    DriverRecord::new(
        DriverId(id),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        pack_driver(BinaryFormat::Djar, &image),
    )
    .with_version(version)
}

fn rig() -> (Network, Arc<DrivolutionServer>, DbUrl) {
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
    {
        let mut s = db.admin_session();
        db.exec(&mut s, "CREATE TABLE t (a INTEGER)").unwrap();
        db.exec(&mut s, "INSERT INTO t VALUES (1)").unwrap();
    }
    net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))
        .unwrap();
    let srv = attach_in_database(
        &net,
        db,
        Addr::new("db1", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )
    .unwrap();
    srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
        .unwrap();
    srv.add_rule(
        &PermissionRule::any(DriverId(1))
            .with_lease_ms(LEASE_MS as i64)
            .with_transfer(TransferMethod::Any)
            .with_policies(RenewPolicy::Renew, ExpirationPolicy::AfterCommit),
    )
    .unwrap();
    (
        net.clone(),
        srv,
        DbUrl::direct(Addr::new("db1", 5432), "orders"),
    )
}

// --- absorbed from lossy_network.rs --------------------------------------

#[test]
fn bootstrap_retries_through_a_lossy_network() {
    let (net, srv, url) = rig();
    net.reseed(7);
    net.with_faults(|f| f.set_drop_prob(0.3));
    let boot = Bootloader::new(
        &net,
        Addr::new("app", 1),
        BootloaderConfig::same_host().trusting(srv.certificate()),
    );
    // Individual attempts may fail (request, file transfer, or the DB
    // handshake may be dropped) — application-level retry must converge.
    let mut attempts = 0;
    let conn = loop {
        attempts += 1;
        assert!(attempts < 100, "did not converge under 30% loss");
        match boot.connect(&url, &ConnectProps::user("admin", "admin")) {
            Ok(c) => break c,
            Err(_) => continue,
        }
    };
    drop(conn);
    assert_eq!(boot.active_version(), Some(DriverVersion::new(1, 0, 0)));
    // Exactly one driver loaded despite the messy path.
    assert_eq!(boot.registry().len(), 1);
}

#[test]
fn renewals_survive_loss_and_never_drop_the_driver() {
    let (net, srv, url) = rig();
    let boot = Bootloader::new(
        &net,
        Addr::new("app", 1),
        BootloaderConfig::same_host().trusting(srv.certificate()),
    );
    let mut conn = boot
        .connect(&url, &ConnectProps::user("admin", "admin"))
        .unwrap();
    net.reseed(11);
    net.with_faults(|f| f.set_drop_prob(0.5));
    // A simulated day of renewal cycles under 50% loss: some renewals
    // fail (driver kept), none may revoke, and the driver must always
    // stay loaded.
    let mut renewed = 0;
    let mut kept = 0;
    for _ in 0..100 {
        net.clock().advance_ms(LEASE_MS);
        match boot.poll() {
            PollOutcome::Renewed => renewed += 1,
            PollOutcome::KeptAfterFailure => kept += 1,
            other => panic!("unexpected outcome under loss: {other:?}"),
        }
        assert!(boot.active_version().is_some());
    }
    assert!(renewed > 10, "renewed={renewed}");
    assert!(kept > 10, "kept={kept}");
    // The failures landed in the typed ledger as in-flight drops, not
    // as some other failure kind.
    let t = net.stats().totals();
    assert!(t.dropped > 0, "loss must be accounted as dropped");
    assert_eq!(t.partitioned, 0);
    assert_eq!(t.corrupted, 0);
    // The connection was never disturbed (loss only affected the
    // drivolution control path, not established behaviour).
    net.with_faults(|f| f.set_drop_prob(0.0));
    conn.execute("SELECT a FROM t").unwrap();
}

#[test]
fn partition_heals_on_schedule_and_upgrade_completes() {
    // The old manual partition/heal pair, now expressed as a declarative
    // window: the fault flips on and off purely by pumping virtual time.
    let (net, srv, url) = rig();
    let boot = Bootloader::new(
        &net,
        Addr::new("app", 1),
        BootloaderConfig::same_host().trusting(srv.certificate()),
    );
    boot.connect(&url, &ConnectProps::user("admin", "admin"))
        .unwrap();

    // Publish v2 while the client is partitioned from the server host.
    srv.install_driver(&record(2, 2, DriverVersion::new(2, 0, 0)))
        .unwrap();
    srv.store().remove_permissions(DriverId(1)).unwrap();
    srv.add_rule(
        &PermissionRule::any(DriverId(2))
            .with_lease_ms(LEASE_MS as i64)
            .with_transfer(TransferMethod::Any)
            .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
    )
    .unwrap();
    let t0 = net.clock().now_ms();
    ChaosSchedule::new()
        .host_partition("app", "db1", t0, t0 + LEASE_MS * 3)
        .install(&net);
    net.run_until(t0 + LEASE_MS * 3 - 1);
    assert_eq!(boot.poll(), PollOutcome::KeptAfterFailure);
    assert_eq!(boot.active_version(), Some(DriverVersion::new(1, 0, 0)));
    assert!(
        net.stats().totals().partitioned > 0,
        "blocked renewals must be accounted as partitioned"
    );

    // Heal on schedule: the very next poll upgrades.
    net.run_until(t0 + LEASE_MS * 3);
    assert!(matches!(boot.poll(), PollOutcome::Upgraded { .. }));
    assert_eq!(boot.active_version(), Some(DriverVersion::new(2, 0, 0)));
}

// --- the chaos-tier e2e ---------------------------------------------------

/// Everything a chaos fleet run exposes, for assertions and replay
/// comparison.
struct ChaosRun {
    converged_v2: bool,
    converged_v3: bool,
    digests_v3: std::collections::BTreeSet<u64>,
    complaints: u64,
    demotions: u64,
    byzantine_demoted: bool,
    honest_demoted: Vec<String>,
    honest_strikes: u32,
    corrupted_at_byzantine: u64,
    partitioned_total: u64,
}

/// A 3-zone CDN fleet upgraded twice under a schedule combining one
/// byzantine mirror (25% corrupt serves), a healing zone partition, and
/// a latency storm.
fn chaos_fleet_run(seed: u64) -> ChaosRun {
    let zones = ["east", "west", "south"];
    let sim = FleetSim::build_cdn(12, 10 * MINUTE, &zones, 32 * 1024, 1, 25);
    sim.net().scheduler().reseed(seed);
    sim.net().reseed(seed);
    sim.bootstrap_all();

    let t0 = sim.net().clock().now_ms();
    let installed = sim.install_chaos(
        &ChaosSchedule::new()
            // The west mirror turns byzantine for the whole run.
            .byzantine_mirror("mirror-west", 0.25, t0, t0 + 200 * MINUTE)
            // South loses the primary's zone for a while, then heals.
            .zone_partition("east", "south", t0 + 2 * MINUTE, t0 + 8 * MINUTE)
            // A latency storm multiplies every link for a window.
            .latency_storm(6, t0 + 3 * MINUTE, t0 + 10 * MINUTE),
    );
    assert_eq!(installed, 6);

    sim.publish(2, DriverVersion::new(2, 0, 0), 32 * 1024, false);
    let _ = sim.run_until_upgraded(MINUTE, 90 * MINUTE);
    let converged_v2 = sim.count_on(DriverVersion::new(2, 0, 0)) == sim.clients().len();
    sim.publish(3, DriverVersion::new(3, 0, 0), 32 * 1024, false);
    let _ = sim.run_until_on(DriverVersion::new(3, 0, 0), MINUTE, 90 * MINUTE);
    let converged_v3 = sim.count_on(DriverVersion::new(3, 0, 0)) == sim.clients().len();

    let dir = sim.server().mirror_directory();
    let byz = dir.entry("mirror-west:1071").expect("byzantine entry");
    let honest: Vec<_> = dir
        .snapshot()
        .into_iter()
        .filter(|e| e.location != "mirror-west:1071")
        .collect();
    let st = sim.server().stats();
    let totals = sim.net().stats().totals();
    ChaosRun {
        converged_v2,
        converged_v3,
        digests_v3: sim.image_digests_on(DriverVersion::new(3, 0, 0)),
        complaints: st.mirror_complaints,
        demotions: st.mirror_demotions,
        byzantine_demoted: byz.demoted,
        honest_demoted: honest
            .iter()
            .filter(|e| e.demoted)
            .map(|e| e.location.clone())
            .collect(),
        honest_strikes: honest.iter().map(|e| e.strikes).sum(),
        corrupted_at_byzantine: sim
            .net()
            .stats()
            .for_addr(&Addr::new("mirror-west", 1071))
            .corrupted,
        partitioned_total: totals.partitioned,
    }
}

#[test]
fn byzantine_mirror_is_demoted_and_the_fleet_converges_with_correct_bytes() {
    let run = chaos_fleet_run(E2E_SEED);
    // Zero failed upgrades: every client reached both versions.
    assert!(run.converged_v2, "fleet must fully converge on v2");
    assert!(run.converged_v3, "fleet must fully converge on v3");
    // Zero wrong-byte installs: all twelve clients agree on one image.
    assert_eq!(
        run.digests_v3.len(),
        1,
        "every client must hold the same verified v3 image"
    );
    // The byzantine mirror really served corrupted bytes, each one was
    // reported, and corroborated strikes demoted it.
    assert!(
        run.corrupted_at_byzantine >= 2,
        "corruption draws must land at 25%: {}",
        run.corrupted_at_byzantine
    );
    assert!(
        run.complaints >= run.corrupted_at_byzantine,
        "every corrupted serve must be complained about"
    );
    assert!(run.byzantine_demoted, "byzantine mirror must be demoted");
    assert_eq!(run.demotions, 1, "exactly one demotion");
    // No healthy mirror was falsely accused or demoted.
    assert!(
        run.honest_demoted.is_empty(),
        "healthy mirrors demoted: {:?}",
        run.honest_demoted
    );
    assert_eq!(run.honest_strikes, 0, "no strikes against healthy mirrors");
    // The healing partition actually blocked (and then released) south.
    assert!(run.partitioned_total > 0, "zone partition never bit");
}

#[test]
fn demoted_mirror_stays_out_even_after_reannounce() {
    // Directory-level regression, fleet-shaped: once the chaos run
    // demotes the byzantine mirror, a fresh announce must not put it
    // back into plans.
    let zones = ["east", "west"];
    let sim = FleetSim::build_cdn(2, 10 * MINUTE, &zones, 16 * 1024, 1, 25);
    let dir = sim.server().mirror_directory();
    dir.complaint("mirror-west:1071", "app0001");
    dir.complaint("mirror-west:1071", "app0003");
    assert!(dir.entry("mirror-west:1071").unwrap().demoted);
    // Re-announce (as the mirror's heartbeat task effectively does).
    dir.announce("mirror-west:1071", Some("west".into()), false);
    assert!(dir.entry("mirror-west:1071").unwrap().demoted);
    let c = dir.candidates(Some("west"), &[]);
    assert!(
        c.iter().all(|m| m.location != "mirror-west:1071"),
        "demoted mirror crept back into a plan: {c:?}"
    );
}
