//! Figures 5 and 6 end to end: bootloader-equipped clients obtain the
//! *Sequoia* driver through Drivolution and talk to the replicated
//! cluster — including the embedded, replicated server configuration
//! that removes the single point of failure.

use std::sync::Arc;

use drivolution::cluster::{
    cluster_image, Backend, ClusterDriverFactory, Controller, Group, VirtualDb, CLUSTER_V2,
};
use drivolution::core::pack::pack_driver;
use drivolution::core::DriverFlavor;
use drivolution::prelude::*;

fn sequoia_record(id: i64, version: DriverVersion) -> DriverRecord {
    DriverRecord::new(
        DriverId(id),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        pack_driver(
            BinaryFormat::Djar,
            &cluster_image("sequoia-driver", version, version.major as u16),
        ),
    )
    .with_version(version)
}

fn build_cluster(net: &Network) -> (Arc<Controller>, Arc<Controller>, Vec<Arc<MiniDb>>) {
    let group = Group::new("g");
    let mut dbs = Vec::new();
    let mut ctrls = Vec::new();
    for id in 1u32..=2 {
        let mut backends = Vec::new();
        for r in 0..2 {
            let host = format!("replica{id}{r}");
            let db = Arc::new(MiniDb::with_clock("vdb", net.clock().clone()));
            {
                let mut s = db.admin_session();
                db.exec(&mut s, "CREATE TABLE t (id INTEGER PRIMARY KEY)")
                    .unwrap();
            }
            net.bind_arc(
                Addr::new(host.clone(), 5432),
                Arc::new(DbServer::new(db.clone())),
            )
            .unwrap();
            let driver = legacy_driver(net, &Addr::new(format!("controller{id}"), 1), 2).unwrap();
            backends.push(Backend::with_driver(
                host.clone(),
                driver,
                DbUrl::direct(Addr::new(host, 5432), "vdb"),
                ConnectProps::user("admin", "admin"),
            ));
            dbs.push(db);
        }
        let ctrl = Controller::launch(
            net,
            id,
            Addr::new(format!("controller{id}"), 25322),
            VirtualDb::new("vdb", backends),
            CLUSTER_V2,
        )
        .unwrap();
        group.join(&ctrl);
        ctrls.push(ctrl);
    }
    (ctrls[0].clone(), ctrls[1].clone(), dbs)
}

fn cluster_client(
    net: &Network,
    host: &str,
    servers: &[Addr],
    certs: &[&drivolution::core::Certificate],
) -> Arc<Bootloader> {
    let local = Addr::new(host, 1);
    let mut config = BootloaderConfig::fixed(servers.to_vec()).with_notify_channel();
    for c in certs {
        config = config.trusting(c);
    }
    let b = Bootloader::new(net, local.clone(), config);
    b.vm().register_factory(
        DriverFlavor::Cluster,
        ClusterDriverFactory::new(net.clone(), local),
    );
    b
}

#[test]
fn figure_5_standalone_distribution_service() {
    let net = Network::new();
    let (_c1, _c2, dbs) = build_cluster(&net);
    let srv = launch_standalone(
        &net,
        Addr::new("drvsrv", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )
    .unwrap();
    srv.install_driver(&sequoia_record(1, DriverVersion::new(1, 0, 0)))
        .unwrap();

    let url: DbUrl = "rdbc:cluster://controller1:25322,controller2:25322/vdb"
        .parse()
        .unwrap();
    let b = cluster_client(
        &net,
        "web0",
        &[Addr::new("drvsrv", DRIVOLUTION_PORT)],
        &[srv.certificate()],
    );
    let mut conn = b.connect(&url, &ConnectProps::user("app", "pw")).unwrap();
    conn.execute("INSERT INTO t VALUES (1)").unwrap();
    for db in &dbs {
        assert_eq!(db.table_len("t").unwrap(), 1);
    }

    // The standalone server is a single point of failure for *new*
    // requests only: with it down, existing clients keep working…
    net.with_faults(|f| f.take_down("drvsrv"));
    conn.execute("INSERT INTO t VALUES (2)").unwrap();
    net.clock().advance_ms(7_200_000);
    assert_eq!(b.poll(), PollOutcome::KeptAfterFailure);
    conn.execute("INSERT INTO t VALUES (3)").unwrap();
    // …but a fresh machine cannot bootstrap.
    let fresh = cluster_client(
        &net,
        "web-new",
        &[Addr::new("drvsrv", DRIVOLUTION_PORT)],
        &[srv.certificate()],
    );
    assert!(fresh
        .connect(&url, &ConnectProps::user("app", "pw"))
        .is_err());
}

#[test]
fn figure_6_embedded_replicated_servers_have_no_spof() {
    let net = Network::new();
    let (c1, c2, dbs) = build_cluster(&net);
    let s1 = c1.embed_drivolution(ServerConfig::default()).unwrap();
    let s2 = c2.embed_drivolution(ServerConfig::default()).unwrap();
    s1.install_driver(&sequoia_record(1, DriverVersion::new(1, 0, 0)))
        .unwrap();
    // Replicated instantly to the peer.
    assert_eq!(s2.store().records().unwrap().len(), 1);

    let servers = [
        Addr::new("controller1", DRIVOLUTION_PORT),
        Addr::new("controller2", DRIVOLUTION_PORT),
    ];
    let url: DbUrl = "rdbc:cluster://controller1:25322,controller2:25322/vdb"
        .parse()
        .unwrap();
    let b = cluster_client(
        &net,
        "web0",
        &servers,
        &[s1.certificate(), s2.certificate()],
    );
    let mut conn = b.connect(&url, &ConnectProps::user("app", "pw")).unwrap();
    conn.execute("INSERT INTO t VALUES (1)").unwrap();

    // Kill controller 1 entirely (client port + embedded server): a
    // fresh machine still bootstraps from controller 2, and traffic
    // flows.
    c1.stop();
    let fresh = cluster_client(
        &net,
        "web1",
        &servers,
        &[s1.certificate(), s2.certificate()],
    );
    let mut conn2 = fresh
        .connect(&url, &ConnectProps::user("app", "pw"))
        .unwrap();
    conn2.execute("INSERT INTO t VALUES (2)").unwrap();
    assert_eq!(dbs[2].table_len("t").unwrap(), 2);

    // Rolling upgrade completes: restart c1, upgrade the sequoia driver
    // cluster-wide with one insert + notices from either server.
    c1.start().unwrap();
    s2.install_driver(&sequoia_record(2, DriverVersion::new(2, 0, 0)))
        .unwrap();
    s2.store().remove_permissions(DriverId(1)).unwrap();
    s2.add_rule(
        &PermissionRule::any(DriverId(2))
            .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
    )
    .unwrap();
    // Replication reached controller 1's server too.
    assert_eq!(s1.store().records().unwrap().len(), 2);
    s1.notify_upgrade("vdb");
    s2.notify_upgrade("vdb");
    assert!(matches!(b.poll(), PollOutcome::Upgraded { .. }));
    assert!(matches!(fresh.poll(), PollOutcome::Upgraded { .. }));
    assert_eq!(b.active_version(), Some(DriverVersion::new(2, 0, 0)));

    // The upgraded driver still serves traffic.
    let mut conn3 = b.connect(&url, &ConnectProps::user("app", "pw")).unwrap();
    conn3.execute("INSERT INTO t VALUES (3)").unwrap();
}
