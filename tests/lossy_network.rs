//! Behaviour under message loss and partitions: the lease mechanism must
//! degrade gracefully — applications keep their drivers, retries
//! eventually succeed, and no client is left half-upgraded.

use std::sync::Arc;

use drivolution::core::pack::pack_driver;
use drivolution::prelude::*;

const LEASE_MS: u64 = 10_000;

fn record(id: i64, proto: u16, version: DriverVersion) -> DriverRecord {
    let image = DriverImage::new(format!("drv-{id}"), version, proto);
    DriverRecord::new(
        DriverId(id),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        pack_driver(BinaryFormat::Djar, &image),
    )
    .with_version(version)
}

fn rig() -> (Network, Arc<DrivolutionServer>, DbUrl) {
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
    {
        let mut s = db.admin_session();
        db.exec(&mut s, "CREATE TABLE t (a INTEGER)").unwrap();
        db.exec(&mut s, "INSERT INTO t VALUES (1)").unwrap();
    }
    net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))
        .unwrap();
    let srv = attach_in_database(
        &net,
        db,
        Addr::new("db1", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )
    .unwrap();
    srv.install_driver(&record(1, 1, DriverVersion::new(1, 0, 0)))
        .unwrap();
    srv.add_rule(
        &PermissionRule::any(DriverId(1))
            .with_lease_ms(LEASE_MS as i64)
            .with_transfer(TransferMethod::Any)
            .with_policies(RenewPolicy::Renew, ExpirationPolicy::AfterCommit),
    )
    .unwrap();
    (
        net.clone(),
        srv,
        DbUrl::direct(Addr::new("db1", 5432), "orders"),
    )
}

#[test]
fn bootstrap_retries_through_a_lossy_network() {
    let (net, srv, url) = rig();
    net.reseed(7);
    net.with_faults(|f| f.set_drop_prob(0.3));
    let boot = Bootloader::new(
        &net,
        Addr::new("app", 1),
        BootloaderConfig::same_host().trusting(srv.certificate()),
    );
    // Individual attempts may fail (request, file transfer, or the DB
    // handshake may be dropped) — application-level retry must converge.
    let mut attempts = 0;
    let conn = loop {
        attempts += 1;
        assert!(attempts < 100, "did not converge under 30% loss");
        match boot.connect(&url, &ConnectProps::user("admin", "admin")) {
            Ok(c) => break c,
            Err(_) => continue,
        }
    };
    drop(conn);
    assert_eq!(boot.active_version(), Some(DriverVersion::new(1, 0, 0)));
    // Exactly one driver loaded despite the messy path.
    assert_eq!(boot.registry().len(), 1);
}

#[test]
fn renewals_survive_loss_and_never_drop_the_driver() {
    let (net, srv, url) = rig();
    let boot = Bootloader::new(
        &net,
        Addr::new("app", 1),
        BootloaderConfig::same_host().trusting(srv.certificate()),
    );
    let mut conn = boot
        .connect(&url, &ConnectProps::user("admin", "admin"))
        .unwrap();
    net.reseed(11);
    net.with_faults(|f| f.set_drop_prob(0.5));
    // A simulated day of renewal cycles under 50% loss: some renewals
    // fail (driver kept), none may revoke, and the driver must always
    // stay loaded.
    let mut renewed = 0;
    let mut kept = 0;
    for _ in 0..100 {
        net.clock().advance_ms(LEASE_MS);
        match boot.poll() {
            PollOutcome::Renewed => renewed += 1,
            PollOutcome::KeptAfterFailure => kept += 1,
            other => panic!("unexpected outcome under loss: {other:?}"),
        }
        assert!(boot.active_version().is_some());
    }
    assert!(renewed > 10, "renewed={renewed}");
    assert!(kept > 10, "kept={kept}");
    // The connection was never disturbed (loss only affected the
    // drivolution control path, not established behaviour).
    net.with_faults(|f| f.set_drop_prob(0.0));
    conn.execute("SELECT a FROM t").unwrap();
}

#[test]
fn partition_heals_and_upgrade_completes() {
    let (net, srv, url) = rig();
    let boot = Bootloader::new(
        &net,
        Addr::new("app", 1),
        BootloaderConfig::same_host().trusting(srv.certificate()),
    );
    boot.connect(&url, &ConnectProps::user("admin", "admin"))
        .unwrap();

    // Publish v2 while the client is partitioned from the server host.
    srv.install_driver(&record(2, 2, DriverVersion::new(2, 0, 0)))
        .unwrap();
    srv.store().remove_permissions(DriverId(1)).unwrap();
    srv.add_rule(
        &PermissionRule::any(DriverId(2))
            .with_lease_ms(LEASE_MS as i64)
            .with_transfer(TransferMethod::Any)
            .with_policies(RenewPolicy::Upgrade, ExpirationPolicy::AfterCommit),
    )
    .unwrap();
    net.with_faults(|f| f.partition("app", "db1"));
    net.clock().advance_ms(LEASE_MS * 3);
    assert_eq!(boot.poll(), PollOutcome::KeptAfterFailure);
    assert_eq!(boot.active_version(), Some(DriverVersion::new(1, 0, 0)));

    // Heal: the very next poll upgrades.
    net.with_faults(|f| f.heal("app", "db1"));
    assert!(matches!(boot.poll(), PollOutcome::Upgraded { .. }));
    assert_eq!(boot.active_version(), Some(DriverVersion::new(2, 0, 0)));
}
