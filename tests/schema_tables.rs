//! Tables 1 and 2 as real SQL tables, plus the paper's verbatim
//! matchmaking statements (Sample code 1–2) running against them.

use std::sync::Arc;

use drivolution::minidb::{MiniDb, Params, Value};
use drivolution::netsim::Clock;
use drivolution::server::{DriverStore, EmbeddedExec};

fn store_db() -> (Arc<MiniDb>, DriverStore) {
    let db = Arc::new(MiniDb::with_clock("proddb", Clock::simulated()));
    let store = DriverStore::new(Box::new(EmbeddedExec::new(db.clone())));
    store.install_schema().unwrap();
    (db, store)
}

#[test]
fn table_1_schema_matches_the_paper() {
    let (db, _store) = store_db();
    let mut s = db.admin_session();
    let rs = db
        .exec(
            &mut s,
            "SELECT column_name, data_type, is_nullable, is_primary_key \
             FROM information_schema.columns \
             WHERE table_name = 'information_schema.drivers'",
        )
        .unwrap()
        .rows()
        .unwrap();
    let cols: Vec<(String, String, bool, bool)> = rs
        .rows
        .iter()
        .map(|r| {
            (
                r[0].as_str().unwrap().to_string(),
                r[1].as_str().unwrap().to_string(),
                r[2].as_bool().unwrap(),
                r[3].as_bool().unwrap(),
            )
        })
        .collect();
    // Paper Table 1, in order.
    let expect = [
        ("driver_id", "INTEGER", false, true),
        ("api_name", "VARCHAR", false, false),
        ("api_version_major", "INTEGER", true, false),
        ("api_version_minor", "INTEGER", true, false),
        ("platform", "VARCHAR", true, false),
        ("driver_version_major", "INTEGER", true, false),
        ("driver_version_minor", "INTEGER", true, false),
        ("driver_version_micro", "INTEGER", true, false),
        ("binary_code", "BLOB", false, false),
        ("binary_format", "VARCHAR", false, false),
    ];
    assert_eq!(cols.len(), expect.len());
    for ((name, ty, nullable, pk), (en, et, enl, epk)) in cols.iter().zip(expect) {
        assert_eq!(name, en);
        assert_eq!(ty, et);
        assert_eq!(*nullable, enl, "{name} nullability");
        assert_eq!(*pk, epk, "{name} pk");
    }
}

#[test]
fn table_2_schema_matches_the_paper() {
    let (db, _store) = store_db();
    let mut s = db.admin_session();
    let rs = db
        .exec(
            &mut s,
            "SELECT column_name FROM information_schema.columns \
             WHERE table_name = 'information_schema.driver_permission'",
        )
        .unwrap()
        .rows()
        .unwrap();
    let names: Vec<&str> = rs.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(
        names,
        vec![
            "user",
            "client_ip",
            "database",
            "driver_id",
            "driver_options",
            "start_date",
            "end_date",
            "lease_time_in_ms",
            "renew_policy",
            "expiration_policy",
            "transfer_method",
        ]
    );
}

#[test]
fn drivers_install_with_plain_inserts_and_sample_code_1_finds_them() {
    let (db, _store) = store_db();
    let mut s = db.admin_session();
    // "New drivers can be installed using simple INSERT statements" —
    // straight SQL, blob literal and all.
    db.exec(
        &mut s,
        "INSERT INTO information_schema.drivers VALUES \
         (1, 'RDBC', NULL, NULL, NULL, 1, 0, 0, X'00010203', 'djar'), \
         (2, 'RDBC', 1, 0, 'windows-i586', 2, 0, 0, X'0a0b', 'dzip')",
    )
    .unwrap();

    // Sample code 1, shaped as in the paper (single api_version column
    // split into major/minor in our schema).
    let mut p = Params::new();
    p.insert("client_api_name".into(), Value::str("RDBC"));
    p.insert("client_platform".into(), Value::str("linux-x86_64"));
    let rs = db
        .execute(
            &mut s,
            "SELECT binary_format, binary_code \
             FROM information_schema.drivers \
             WHERE api_name LIKE $client_api_name \
             AND (platform IS NULL OR platform LIKE $client_platform)",
            &p,
        )
        .unwrap()
        .rows()
        .unwrap();
    // Only driver 1 (NULL platform) matches a linux client.
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::str("djar"));
    assert_eq!(rs.rows[0][1], Value::Blob(vec![0, 1, 2, 3].into()));
}

#[test]
fn sample_code_2_date_window_uses_now() {
    let clock = Clock::simulated();
    let db = Arc::new(MiniDb::with_clock("proddb", clock.clone()));
    let store = DriverStore::new(Box::new(EmbeddedExec::new(db.clone())));
    store.install_schema().unwrap();
    let mut s = db.admin_session();
    db.exec(
        &mut s,
        "INSERT INTO information_schema.drivers VALUES \
         (1, 'RDBC', NULL, NULL, NULL, NULL, NULL, NULL, X'00', 'djar')",
    )
    .unwrap();
    db.exec(
        &mut s,
        "INSERT INTO information_schema.driver_permission VALUES \
         ('app%', NULL, 'orders', 1, NULL, 1000, 2000, 3600000, 1, 1, -1)",
    )
    .unwrap();

    let query = "SELECT driver_id FROM information_schema.driver_permission \
         WHERE (database IS NULL OR $user_database LIKE database) \
         AND (user IS NULL OR $client_user LIKE user) \
         AND (client_ip IS NULL OR $client_client_ip LIKE client_ip) \
         AND (start_date IS NULL OR end_date IS NULL \
              OR now() BETWEEN start_date AND end_date)";
    let mut p = Params::new();
    p.insert("user_database".into(), Value::str("orders"));
    p.insert("client_user".into(), Value::str("app7"));
    p.insert("client_client_ip".into(), Value::str("10.0.0.1"));

    // Outside the window: no rows.
    let rs = db.execute(&mut s, query, &p).unwrap().rows().unwrap();
    assert!(rs.rows.is_empty());
    // Inside: one row.
    clock.advance_ms(1500);
    let rs = db.execute(&mut s, query, &p).unwrap().rows().unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Integer(1)]]);
    // Wrong user pattern: no rows.
    p.insert("client_user".into(), Value::str("dba1"));
    let rs = db.execute(&mut s, query, &p).unwrap().rows().unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn driver_permission_references_drivers() {
    let (db, _store) = store_db();
    let mut s = db.admin_session();
    // Permission for a nonexistent driver violates the REFERENCES
    // constraint of Table 2.
    let r = db.exec(
        &mut s,
        "INSERT INTO information_schema.driver_permission VALUES \
         (NULL, NULL, NULL, 99, NULL, NULL, NULL, NULL, 0, 0, -1)",
    );
    assert!(r.is_err());
    // Deleting a referenced driver is restricted.
    db.exec(
        &mut s,
        "INSERT INTO information_schema.drivers VALUES \
         (1, 'RDBC', NULL, NULL, NULL, NULL, NULL, NULL, X'00', 'djar')",
    )
    .unwrap();
    db.exec(
        &mut s,
        "INSERT INTO information_schema.driver_permission VALUES \
         (NULL, NULL, NULL, 1, NULL, NULL, NULL, NULL, 0, 0, -1)",
    )
    .unwrap();
    assert!(db
        .exec(
            &mut s,
            "DELETE FROM information_schema.drivers WHERE driver_id = 1"
        )
        .is_err());
    // "Obsolete drivers can be disabled by … setting the end_date to the
    // current_date."
    db.exec(
        &mut s,
        "UPDATE information_schema.driver_permission SET start_date = 0, end_date = now() \
         WHERE driver_id = 1",
    )
    .unwrap();
}

#[test]
fn leases_table_logs_grants() {
    let (db, store) = store_db();
    let who = drivolution::core::ClientIdentity::new("app", "10.0.0.9", "orders");
    store
        .add_driver(&drivolution::core::DriverRecord::new(
            drivolution::core::DriverId(1),
            drivolution::core::ApiName::rdbc(),
            drivolution::core::BinaryFormat::Djar,
            bytes::Bytes::from_static(&[0]),
        ))
        .unwrap();
    store
        .log_lease(&who, drivolution::core::DriverId(1), 42, 3_600_000)
        .unwrap();
    let mut s = db.admin_session();
    let rs = db
        .exec(
            &mut s,
            "SELECT user, client_ip, database, driver_id, granted_at, lease_time_in_ms \
             FROM information_schema.leases",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![vec![
            Value::str("app"),
            Value::str("10.0.0.9"),
            Value::str("orders"),
            Value::Integer(1),
            Value::Timestamp(42),
            Value::BigInt(3_600_000),
        ]]
    );
}
