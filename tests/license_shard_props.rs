//! Property tests pinning the license-table sharding invariant: a
//! [`LicenseManager`] with any shard count is observationally
//! equivalent to the single-table reference (`with_shards(1)`) for any
//! op sequence — same grants, same denials, same seat counts, same
//! holder sets. Sharding is a locking strategy, never a semantics
//! change (see the sub-quota discussion in the `license` module docs).
//!
//! Mid-sequence, the only tolerated divergence is *pruning debt*:
//! acquire's fast path opportunistically prunes just the requesting
//! shard, so expired-but-unpruned seats sit in different shards at
//! different times depending on the layout. Debt is invisible to
//! everything a client observes — acquire outcomes and `available`
//! are compared exactly at every step — but it does skew raw removal
//! counts, so release outcomes are compared after a synchronized
//! `prune_expired` and maintenance passes are checked by the holder
//! sets they leave behind, not by how much debt each happened to
//! collect.

use proptest::prelude::*;

use drivolution::core::DriverId;
use drivolution::server::LicenseManager;

/// Shard counts under test: the reference, a small split, the default.
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

#[derive(Clone, Debug)]
enum Op {
    /// Cap `driver` at `seats` concurrent holders.
    SetLimit { driver: u8, seats: usize },
    /// `(user, host)` checks out / renews a seat on `driver`.
    Acquire {
        driver: u8,
        user: u8,
        host: u8,
        lease_ms: u64,
    },
    /// Explicit seat give-back.
    Release { driver: u8, user: u8, host: u8 },
    /// Dedicated-channel failure detector: free every seat of `host`.
    ReleaseHost { host: u8 },
    /// Scheduled maintenance pass at the current clock.
    Prune,
    /// Let time pass (leases expire without any table mutation).
    Advance { dt_ms: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..3u8, 0..12usize).prop_map(|(driver, seats)| Op::SetLimit { driver, seats }),
        (0..3u8, 0..4u8, 0..10u8, 1..500u64).prop_map(|(driver, user, host, lease_ms)| {
            Op::Acquire {
                driver,
                user,
                host,
                lease_ms,
            }
        }),
        (0..3u8, 0..4u8, 0..10u8).prop_map(|(driver, user, host)| Op::Release {
            driver,
            user,
            host
        }),
        (0..10u8).prop_map(|host| Op::ReleaseHost { host }),
        Just(Op::Prune),
        (0..400u64).prop_map(|dt_ms| Op::Advance { dt_ms }),
    ]
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(arb_op(), 0..60)
}

fn user(u: u8) -> String {
    format!("user-{u}")
}

fn host(h: u8) -> String {
    format!("host-{h}")
}

proptest! {
    #[test]
    fn sharded_tables_are_observationally_equivalent(ops in arb_ops()) {
        let tables: Vec<LicenseManager> =
            SHARD_COUNTS.iter().map(|&n| LicenseManager::with_shards(n)).collect();
        let mut now_ms = 0u64;

        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::SetLimit { driver, seats } => {
                    for t in &tables {
                        t.set_limit(DriverId(*driver as i64), *seats);
                    }
                }
                Op::Acquire { driver, user: u, host: h, lease_ms } => {
                    let outcomes: Vec<bool> = tables
                        .iter()
                        .map(|t| {
                            t.acquire(DriverId(*driver as i64), &user(*u), &host(*h), *lease_ms, now_ms)
                                .is_ok()
                        })
                        .collect();
                    prop_assert!(
                        outcomes.windows(2).all(|w| w[0] == w[1]),
                        "step {step}: acquire {op:?} granted {outcomes:?} across shard counts {SHARD_COUNTS:?}"
                    );
                }
                Op::Release { driver, user: u, host: h } => {
                    // Synchronize pruning debt first: whether a *live*
                    // seat exists to give back must not depend on which
                    // shards earlier acquires happened to sweep.
                    let outcomes: Vec<bool> = tables
                        .iter()
                        .map(|t| {
                            t.prune_expired(now_ms);
                            t.release(DriverId(*driver as i64), &user(*u), &host(*h))
                        })
                        .collect();
                    prop_assert!(
                        outcomes.windows(2).all(|w| w[0] == w[1]),
                        "step {step}: release {op:?} returned {outcomes:?} across shard counts {SHARD_COUNTS:?}"
                    );
                }
                Op::ReleaseHost { host: h } => {
                    let freed: Vec<usize> = tables
                        .iter()
                        .map(|t| {
                            t.prune_expired(now_ms);
                            t.release_host(&host(*h))
                        })
                        .collect();
                    prop_assert!(
                        freed.windows(2).all(|w| w[0] == w[1]),
                        "step {step}: release_host({h}) freed {freed:?} across shard counts {SHARD_COUNTS:?}"
                    );
                }
                Op::Prune => {
                    // Freed counts are pruning debt (layout-dependent);
                    // the state a maintenance pass leaves behind is not.
                    for t in &tables {
                        t.prune_expired(now_ms);
                    }
                    for d in 0..3u8 {
                        let holders: Vec<Vec<(String, String)>> = tables
                            .iter()
                            .map(|t| t.holders(DriverId(d as i64)))
                            .collect();
                        prop_assert!(
                            holders.windows(2).all(|w| w[0] == w[1]),
                            "step {step}: post-prune holders({d}) diverged across shard counts {SHARD_COUNTS:?}: {holders:?}"
                        );
                    }
                }
                Op::Advance { dt_ms } => now_ms += dt_ms,
            }

            // `available` is a protocol-visible read (seat counts in
            // offers): it must agree at every step, pruning debt and
            // all, because it counts unexpired holders only.
            for d in 0..3u8 {
                let avail: Vec<Option<usize>> = tables
                    .iter()
                    .map(|t| t.available(DriverId(d as i64), now_ms))
                    .collect();
                prop_assert!(
                    avail.windows(2).all(|w| w[0] == w[1]),
                    "step {step}: available({d}) at t={now_ms} was {avail:?} across shard counts {SHARD_COUNTS:?}"
                );
            }
        }

        // After a synchronized maintenance pass the tables must hold
        // bit-identical seat sets — pruning debt was the only slack.
        for t in &tables {
            t.prune_expired(now_ms);
        }
        for d in 0..3u8 {
            let holders: Vec<Vec<(String, String)>> = tables
                .iter()
                .map(|t| t.holders(DriverId(d as i64)))
                .collect();
            prop_assert!(
                holders.windows(2).all(|w| w[0] == w[1]),
                "post-prune holders({d}) diverged across shard counts {SHARD_COUNTS:?}: {holders:?}"
            );
        }
    }
}
