//! The §2 lifecycle and its failure modes: conventional drivers fail at
//! steps 4 (load), 5 (protocol check), and 6 (authenticate); the
//! Drivolution lifecycle avoids each mismatch by construction because the
//! database hands out the matching driver itself.

use std::sync::Arc;

use driverkit::{DkError, DriverVm};
use drivolution::core::pack::pack_driver;
use drivolution::core::{AuthKind, Extension};
use drivolution::minidb::AuthMethod;
use drivolution::prelude::*;

fn db_rig(protos: &[u16]) -> (Network, Arc<MiniDb>, DbUrl) {
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
    db.with_auth(|a| a.create_user("app", "pw").unwrap());
    net.bind_arc(
        Addr::new("db1", 5432),
        Arc::new(drivolution::minidb::wire::DbServer::with_versions(
            db.clone(),
            protos,
        )),
    )
    .unwrap();
    (net, db, DbUrl::direct(Addr::new("db1", 5432), "orders"))
}

#[test]
fn step_4_failure_wrong_binary_or_api() {
    // "The main sources of incompatibility are mismatches between the
    // binary format of the driver and the hardware platform or
    // incompatible compilation/linking options."
    let (net, _db, _url) = db_rig(&[1]);
    let vm = DriverVm::new(net.clone(), Addr::new("app", 1));

    // Garbage bytes: fails at load.
    let e = vm
        .load(
            BinaryFormat::Djar,
            bytes::Bytes::from_static(b"not a driver"),
        )
        .unwrap_err();
    assert!(matches!(e, DkError::Drv(DrvError::BadPackage(_))));

    // Wrong container format for the bytes: fails at load.
    let image = DriverImage::new("d", DriverVersion::new(1, 0, 0), 1);
    let djar = pack_driver(BinaryFormat::Djar, &image);
    let e = vm.load(BinaryFormat::Dzip, djar).unwrap_err();
    assert!(matches!(e, DkError::Drv(DrvError::BadPackage(_))));

    // Wrong API (an ODBC driver in an RDBC application): fails at load.
    let mut odbc = DriverImage::new("odbc-d", DriverVersion::new(1, 0, 0), 1);
    odbc.api_name = ApiName::new("ODBC");
    let e = vm
        .load(BinaryFormat::Djar, pack_driver(BinaryFormat::Djar, &odbc))
        .unwrap_err();
    assert!(matches!(e, DkError::Unsupported(_)));
}

#[test]
fn step_5_failure_protocol_mismatch_at_connect() {
    // Server upgraded to speak only v2/v3; a statically linked v1 driver
    // fails exactly at connect time.
    let (net, _db, url) = db_rig(&[2, 3]);
    let old_driver = legacy_driver(&net, &Addr::new("app", 1), 1).unwrap();
    let e = old_driver
        .connect(&url, &ConnectProps::user("app", "pw"))
        .unwrap_err();
    assert!(e.to_string().contains("protocol version 1"));
}

#[test]
fn step_6_failure_auth_method_mismatch() {
    // Database requires token (Kerberos-like) auth; a password-only
    // driver passes steps 4–5 and dies at step 6.
    let (net, db, url) = db_rig(&[1, 2, 3]);
    db.with_auth(|a| a.set_accepted_methods(&[AuthMethod::Token]));
    let d = legacy_driver(&net, &Addr::new("app", 1), 1).unwrap();
    let e = d
        .connect(&url, &ConnectProps::user("app", "pw"))
        .unwrap_err();
    assert!(matches!(
        e,
        DkError::Db(drivolution::minidb::DbError::Auth(_))
    ));
}

#[test]
fn drivolution_sidesteps_all_three_mismatches() {
    // Same hostile environment: v2/v3-only server requiring token auth.
    let (net, db, url) = db_rig(&[2, 3]);
    db.with_auth(|a| a.set_accepted_methods(&[AuthMethod::Token]));
    let realm = db.with_auth(|a| a.realm_secret().to_string());

    let srv = attach_in_database(
        &net,
        db,
        Addr::new("db1", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )
    .unwrap();
    // The DBA publishes the *matching* driver: v3 protocol, token auth,
    // Kerberos package with the right realm secret.
    let mut image = DriverImage::new("matching-driver", DriverVersion::new(3, 0, 0), 3);
    image.auth_kinds = vec![AuthKind::Token];
    image.extensions.push(Extension::Kerberos {
        realm_secret: realm,
    });
    srv.install_driver(&DriverRecord::new(
        DriverId(1),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        pack_driver(BinaryFormat::Djar, &image),
    ))
    .unwrap();

    // The client knows nothing about protocols, auth methods, or realm
    // secrets — the bootloader fetches a driver that just works.
    let boot = Bootloader::new(
        &net,
        Addr::new("app", 1),
        BootloaderConfig::same_host().trusting(srv.certificate()),
    );
    let mut conn = boot
        .connect(&url, &ConnectProps::user("app", "pw"))
        .unwrap();
    conn.execute("SELECT 1").unwrap();
    // "Clients are guaranteed to get the correct driver version to access
    // the desired database."
    assert_eq!(boot.active_version(), Some(DriverVersion::new(3, 0, 0)));
}

#[test]
fn drivolution_lifecycle_step_counts() {
    use drivolution::fleet::ops;
    // §2: seven steps to first query, nine executed (ten numbered) per
    // update. §3.2: four steps once, then one step per update.
    assert_eq!(ops::sota_initial_install().step_count(), 7);
    assert_eq!(ops::sota_driver_update().step_count(), 9);
    assert_eq!(ops::PAPER_SOTA_UPDATE_STEPS, 10);
    assert_eq!(ops::drv_initial_install().step_count(), 4);
    assert_eq!(ops::drv_driver_update().step_count(), 1);
}
