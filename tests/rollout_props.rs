//! Property tests for staged-rollout wave partitioning: whatever the
//! fleet and whatever the wave schedule, every client lands in exactly
//! one wave — no host skipped (stranded on the old version forever) and
//! no host double-counted (polluting two waves' health gates).

use std::collections::HashSet;

use proptest::prelude::*;

use drivolution::server::{partition, RolloutPlan};

fn arb_hosts() -> impl Strategy<Value = Vec<String>> {
    // Duplicates on purpose: a fleet census can list a host twice
    // (reconnects, multiple leases) and partitioning must dedupe.
    prop::collection::vec("h[0-9]{1,3}", 0..120)
}

fn arb_plan() -> impl Strategy<Value = RolloutPlan> {
    (0..5usize, prop::collection::vec(0..150u32, 0..6))
        .prop_map(|(canary, wave_pcts)| RolloutPlan { canary, wave_pcts })
}

proptest! {
    #[test]
    fn every_host_lands_in_exactly_one_wave(hosts in arb_hosts(), plan in arb_plan()) {
        let unique: HashSet<&String> = hosts.iter().collect();
        let waves = partition(&hosts, &plan);

        let mut seen: HashSet<&String> = HashSet::new();
        for wave in &waves {
            prop_assert!(!wave.is_empty(), "empty waves must be dropped");
            for host in wave {
                prop_assert!(
                    seen.insert(host),
                    "host {host} appears in more than one wave"
                );
            }
        }
        prop_assert_eq!(
            seen.len(),
            unique.len(),
            "partition covered {} of {} unique hosts",
            seen.len(),
            unique.len()
        );
        for host in &unique {
            prop_assert!(seen.contains(*host), "host {host} was stranded out of every wave");
        }
    }

    #[test]
    fn canary_wave_respects_the_plan(hosts in arb_hosts(), plan in arb_plan()) {
        let unique = hosts.iter().collect::<HashSet<_>>().len();
        let waves = partition(&hosts, &plan);
        if unique == 0 {
            prop_assert!(waves.is_empty());
        } else {
            // The first wave is the canary: at least one host, never
            // more than the plan asks for (clamped to the fleet).
            prop_assert!(!waves.is_empty());
            let canary = waves[0].len();
            prop_assert!(canary >= 1);
            prop_assert!(canary <= plan.canary.clamp(1, unique));
        }
    }

    #[test]
    fn waves_preserve_the_sorted_host_order(hosts in arb_hosts(), plan in arb_plan()) {
        // Waves slice a sorted census: concatenating them reproduces it
        // exactly, so wave membership is deterministic for a given
        // fleet and schedule.
        let waves = partition(&hosts, &plan);
        let flat: Vec<String> = waves.into_iter().flatten().collect();
        let mut expected: Vec<String> = hosts.clone();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(flat, expected);
    }
}
