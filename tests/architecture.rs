//! Figure 1 — the architecture overview as assertions: in-database and
//! standalone Drivolution servers, bootloader clients downloading
//! different drivers, and a legacy application coexisting.

use std::sync::Arc;

use drivolution::core::pack::pack_driver;
use drivolution::prelude::*;

fn record(id: i64, name: &str, proto: u16) -> DriverRecord {
    let image = DriverImage::new(name, DriverVersion::new(proto as i32, 0, 0), proto);
    DriverRecord::new(
        DriverId(id),
        ApiName::rdbc(),
        BinaryFormat::Djar,
        pack_driver(BinaryFormat::Djar, &image),
    )
}

#[test]
fn figure_1_all_three_application_kinds_coexist() {
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
    {
        let mut s = db.admin_session();
        db.exec(&mut s, "CREATE TABLE t (a INTEGER)").unwrap();
        db.exec(&mut s, "INSERT INTO t VALUES (1)").unwrap();
    }
    net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))
        .unwrap();

    // In-database Drivolution server (driver 2 for app 1).
    let indb = attach_in_database(
        &net,
        db,
        Addr::new("db1", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )
    .unwrap();
    indb.install_driver(&record(2, "driver-two", 2)).unwrap();

    // Standalone Drivolution server (driver 3 for app 2) on another host.
    let standalone = launch_standalone(
        &net,
        Addr::new("drvsrv", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )
    .unwrap();
    standalone
        .install_driver(&record(3, "driver-three", 3))
        .unwrap();

    let url: DbUrl = "rdbc:minidb://db1:5432/orders".parse().unwrap();
    let props = ConnectProps::user("admin", "admin");

    // Application 1: bootloader → in-database server → driver 2.
    let app1 = Bootloader::new(
        &net,
        Addr::new("app1", 1),
        BootloaderConfig::same_host().trusting(indb.certificate()),
    );
    let mut c1 = app1.connect(&url, &props).unwrap();
    c1.execute("SELECT a FROM t").unwrap();
    assert_eq!(app1.registry().active().unwrap().image.name, "driver-two");

    // Application 2: bootloader → standalone server → driver 3.
    let app2 = Bootloader::new(
        &net,
        Addr::new("app2", 1),
        BootloaderConfig::fixed(vec![Addr::new("drvsrv", DRIVOLUTION_PORT)])
            .trusting(standalone.certificate()),
    );
    let mut c2 = app2.connect(&url, &props).unwrap();
    c2.execute("SELECT a FROM t").unwrap();
    assert_eq!(app2.registry().active().unwrap().image.name, "driver-three");

    // Application 3: a conventional statically linked driver, no
    // Drivolution anywhere in its path.
    let legacy = legacy_driver(&net, &Addr::new("app3", 1), 1).unwrap();
    let mut c3 = legacy.connect(&url, &props).unwrap();
    c3.execute("SELECT a FROM t").unwrap();

    // The Drivolution traffic went where Figure 1 says it goes.
    assert_eq!(indb.stats().files, 1);
    assert_eq!(standalone.stats().files, 1);
    // All three applications share the same database protocol endpoint.
    assert!(net.stats().for_addr(&Addr::new("db1", 5432)).requests >= 6);
}

#[test]
fn discover_broadcast_reaches_all_servers_like_dhcp() {
    // §3.1: DRIVOLUTION_DISCOVER broadcast; all servers with a matching
    // driver answer; databases can join/leave without reconfiguration.
    let net = Network::new();
    let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
    net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db)))
        .unwrap();
    let s1 = launch_standalone(
        &net,
        Addr::new("drv1", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )
    .unwrap();
    let s2 = launch_standalone(
        &net,
        Addr::new("drv2", DRIVOLUTION_PORT),
        ServerConfig::default(),
    )
    .unwrap();
    s1.install_driver(&record(1, "from-s1", 1)).unwrap();
    s2.install_driver(&record(1, "from-s2", 1)).unwrap();

    let boot = Bootloader::new(
        &net,
        Addr::new("app", 1),
        BootloaderConfig::discover()
            .trusting(s1.certificate())
            .trusting(s2.certificate()),
    );
    let url: DbUrl = "rdbc:minidb://db1:5432/orders".parse().unwrap();
    boot.connect(&url, &ConnectProps::user("admin", "admin"))
        .unwrap();
    // One of the answering servers served the file.
    assert_eq!(s1.stats().files + s2.stats().files, 1);

    // Take the serving server away: a fresh discovery still succeeds via
    // the other one ("databases can be added or removed from a database
    // cluster in a decoupled manner").
    net.with_faults(|f| f.take_down("drv1"));
    let boot2 = Bootloader::new(
        &net,
        Addr::new("app2", 1),
        BootloaderConfig::discover()
            .trusting(s1.certificate())
            .trusting(s2.certificate()),
    );
    boot2
        .connect(&url, &ConnectProps::user("admin", "admin"))
        .unwrap();
    assert_eq!(boot2.registry().active().unwrap().image.name, "from-s2");
}
