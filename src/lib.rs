//! # drivolution — reproduction of "Drivolution: Rethinking the Database
//! Driver Lifecycle" (Cecchet & Candea, Middleware 2009)
//!
//! Drivolution stores database drivers *in the database*, distributes
//! them to clients on demand through a DHCP-like lease protocol, and
//! hot-swaps driver versions transparently to applications. This
//! workspace reproduces the whole system in Rust, from the SQL engine up:
//!
//! | Layer | Crate |
//! |---|---|
//! | network + virtual clock | [`netsim`] |
//! | SQL database substrate | [`minidb`] |
//! | Drivolution core (protocol, leases, policies, chunking) | [`core`] |
//! | content-addressed distribution (cache, deltas, mirrors) | [`depot`] |
//! | RDBC API + driver VM | [`driverkit`] |
//! | client bootloader | [`bootloader`] |
//! | driver distribution server | [`server`] |
//! | Sequoia-like replication middleware | [`cluster`] |
//! | operational fleet simulation | [`fleet`] |
//!
//! See `DESIGN.md` for the per-experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results. Runnable scenarios live in `examples/`.
//!
//! # Examples
//!
//! End-to-end quickstart (Figure 1's in-database configuration):
//!
//! ```
//! use std::sync::Arc;
//! use drivolution::prelude::*;
//!
//! // A database on the simulated network…
//! let net = Network::new();
//! let db = Arc::new(MiniDb::with_clock("orders", net.clock().clone()));
//! net.bind_arc(Addr::new("db1", 5432), Arc::new(DbServer::new(db.clone())))?;
//!
//! // …with an in-database Drivolution server holding one driver…
//! let srv = attach_in_database(&net, db, Addr::new("db1", DRIVOLUTION_PORT),
//!                              ServerConfig::default())?;
//! let image = DriverImage::new("minidb-rdbc", DriverVersion::new(1, 0, 0), 1);
//! srv.install_driver(&DriverRecord::new(
//!     DriverId(1), ApiName::rdbc(), BinaryFormat::Djar,
//!     drivolution::core::pack::pack_driver(BinaryFormat::Djar, &image),
//! ))?;
//!
//! // …and a client that has only a bootloader installed.
//! let boot = Bootloader::new(&net, Addr::new("app", 1),
//!     BootloaderConfig::same_host().trusting(srv.certificate()));
//! let mut conn = boot.connect(
//!     &"rdbc:minidb://db1:5432/orders".parse()?,
//!     &ConnectProps::user("admin", "admin"),
//! )?;
//! conn.execute("SELECT 1")?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use cluster;
pub use driverkit;
pub use drivolution_bootloader as bootloader;
pub use drivolution_core as core;
pub use drivolution_depot as depot;
pub use drivolution_server as server;
pub use fleet;
pub use minidb;
pub use netsim;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use driverkit::{
        legacy_driver, ConnectProps, Connection, DbUrl, DkError, Driver, DriverVm,
    };
    pub use drivolution_bootloader::{
        Bootloader, BootloaderConfig, LifecyclePolicy, PollOutcome, ServerLocator, SwapConfig,
        SwapStats,
    };
    pub use drivolution_core::{
        ApiName, ApiVersion, BinaryFormat, DriverId, DriverImage, DriverRecord, DriverVersion,
        DrvError, ExpirationPolicy, PermissionRule, RenewPolicy, TransferMethod, DRIVOLUTION_PORT,
    };
    pub use drivolution_depot::{DriverDepot, MirrorDepot, MirrorTiming};
    pub use drivolution_server::{
        attach_in_database, launch_external, launch_standalone, DrivolutionServer, RolloutConfig,
        RolloutOrchestrator, RolloutPhase, RolloutPlan, ServerConfig,
    };
    pub use minidb::{wire::DbServer, MiniDb, Value};
    pub use netsim::{
        Addr, ChaosAction, ChaosSchedule, Clock, FailureKind, Network, Scheduler, TaskControl,
        TaskHandle,
    };
}
